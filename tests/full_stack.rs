//! End-to-end integration: the acoustic chain drives the mechanical
//! drive, which starves the filesystem, OS, and database above it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_blockdev::HddDisk;
use deepnote_core::prelude::*;
use deepnote_fs::{Filesystem, FsState};
use deepnote_iobench::{run_job, JobSpec};
use deepnote_kv::{bench, Db};
use deepnote_os::{OsState, ServerOs};

fn scenario2() -> Testbed {
    Testbed::paper_default(Scenario::PlasticTower)
}

#[test]
fn attack_propagates_from_speaker_to_fio() {
    let testbed = scenario2();
    let clock = Clock::new();
    let mut disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();

    // Healthy.
    let healthy = run_job(
        &JobSpec::seq_write("w").with_runtime(SimDuration::from_secs(3)),
        &mut disk,
        &clock,
    );
    assert!((healthy.throughput_mb_s - 22.7).abs() < 0.3);

    // Attack at the best parameters: blackout.
    testbed.mount_attack(&vibration, AttackParams::paper_best());
    let attacked = run_job(
        &JobSpec::seq_write("w").with_runtime(SimDuration::from_secs(3)),
        &mut disk,
        &clock,
    );
    assert_eq!(attacked.throughput_mb_s, 0.0);
    assert_eq!(attacked.latency_cell(), "-");

    // Stop: full recovery.
    testbed.stop_attack(&vibration);
    let recovered = run_job(
        &JobSpec::seq_write("w").with_runtime(SimDuration::from_secs(3)),
        &mut disk,
        &clock,
    );
    assert!((recovered.throughput_mb_s - 22.7).abs() < 0.3);
}

#[test]
fn attack_aborts_filesystem_through_the_whole_stack() {
    let testbed = scenario2();
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut fs = Filesystem::format(disk, clock.clone()).unwrap();
    fs.create_file("/data").unwrap();
    fs.write_file("/data", 0, b"precious").unwrap();
    fs.commit().unwrap();

    testbed.mount_attack(&vibration, AttackParams::paper_best());
    fs.write_file("/data", 0, b"doomed??").unwrap(); // buffered
    let err = fs.commit().unwrap_err();
    assert!(err.is_fatal(), "{err}");
    assert!(matches!(fs.state(), FsState::Aborted { errno: -5 }));

    // The device itself recorded real failed mechanical operations.
    testbed.stop_attack(&vibration);
    assert!(fs.device_mut().write_errors() > 0);
}

#[test]
fn os_and_db_both_die_under_sustained_attack_and_survive_without() {
    let testbed = scenario2();

    // Without attack: both live through 120 virtual seconds.
    {
        let clock = Clock::new();
        let mut os =
            ServerOs::install(HddDisk::barracuda_500gb(clock.clone()), clock.clone()).unwrap();
        for _ in 0..120 {
            os.write_log("tick").unwrap();
            clock.advance(SimDuration::from_secs(1));
            os.tick();
        }
        assert!(os.running());
    }

    // With attack: the server dies.
    {
        let clock = Clock::new();
        let disk = HddDisk::barracuda_500gb(clock.clone());
        let vibration = disk.vibration();
        let mut os = ServerOs::install(disk, clock.clone()).unwrap();
        testbed.mount_attack(&vibration, AttackParams::paper_best());
        let mut crashed = false;
        for _ in 0..200 {
            let _ = os.write_log("tick");
            clock.advance(SimDuration::from_secs(1));
            if matches!(os.tick(), OsState::Crashed { .. }) {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "server must crash under sustained attack");
        assert!(os.klog().count_containing("journal has aborted") > 0);
    }

    // The database dies with the paper's signature.
    {
        let clock = Clock::new();
        let disk = HddDisk::barracuda_500gb(clock.clone());
        let vibration = disk.vibration();
        let mut db = Db::create(disk, clock).unwrap();
        let spec = bench::BenchSpec {
            num_keys: 2_000,
            duration: SimDuration::from_secs(200),
            ..Default::default()
        };
        bench::fill_seq(&mut db, &spec).unwrap();
        testbed.mount_attack(&vibration, AttackParams::paper_best());
        let report = bench::read_while_writing(&mut db, &spec);
        assert!(report.crashed_at_s.is_some(), "{report:?}");
        assert!(db.crashed());
    }
}

#[test]
fn partial_attack_degrades_without_killing() {
    // 15 cm: the Table-1 "writes crawl, reads fine" regime, through the
    // whole database stack.
    let testbed = scenario2();
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut db = Db::create(disk, clock).unwrap();
    let spec = bench::BenchSpec {
        num_keys: 5_000,
        duration: SimDuration::from_secs(5),
        ..Default::default()
    };
    bench::fill_seq(&mut db, &spec).unwrap();

    let baseline = bench::read_while_writing(&mut db, &spec);
    testbed.mount_attack(
        &vibration,
        AttackParams::paper_best().at_distance(Distance::from_cm(15.0)),
    );
    let degraded = bench::read_while_writing(&mut db, &spec);
    assert!(degraded.crashed_at_s.is_none(), "{degraded:?}");
    assert!(
        degraded.throughput_mb_s < 0.7 * baseline.throughput_mb_s,
        "degraded {} vs baseline {}",
        degraded.throughput_mb_s,
        baseline.throughput_mb_s
    );
    assert!(degraded.throughput_mb_s > 0.0);
}

#[test]
fn scenario1_weaker_than_scenario2_at_the_band_edge() {
    // The tower amplifies: at a frequency near the band edge Scenario 2
    // should hit harder than Scenario 1 (Fig. 2 separation).
    let f = Frequency::from_hz(1_450.0);
    let d = Distance::from_cm(1.0);
    let v1 = Testbed::paper_default(Scenario::PlasticDirect).vibration_at(f, d);
    let v2 = Testbed::paper_default(Scenario::PlasticTower).vibration_at(f, d);
    assert!(v2.displacement_nm() > v1.displacement_nm());
}
