//! The chaos layer, end to end: seeded fault injection against the full
//! cluster, with the defense stack (end-to-end checksums, scrubbing,
//! read repair, resilient clients) duelling the bare quorum path.
//!
//! Three claims, each proved by running the same faults twice:
//!
//! 1. **Integrity** — under silent corruption, a checksummed cluster
//!    with scrub + read repair serves *zero* wrong answers and drains
//!    its repair queue, while the no-integrity baseline provably serves
//!    corrupt reads (the oracle catches it).
//! 2. **Resilience** — under transient fault bursts, the retrying,
//!    hedging client completes strictly more operations than the
//!    one-shot baseline.
//! 3. **Determinism** — a chaos campaign is a pure function of its
//!    seed: same config, byte-identical report, JSON, and fault traces.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_cluster::prelude::*;
use deepnote_cluster::timeline::{AttackLoad, Phase};
use deepnote_sim::SimDuration;

/// A quiet 60 s timeline: no acoustic attack, so engine crashes and
/// blank-drive swaps cannot confound the integrity accounting — every
/// wrong byte is the chaos profile's doing.
fn quiet_timeline() -> AttackTimeline {
    AttackTimeline::new(vec![Phase {
        label: "steady".into(),
        duration: SimDuration::from_secs(60),
        load: AttackLoad::Off,
    }])
}

/// Replicas that silently hold corrupt records from the start: the
/// end-to-end failure mode layer-local checksums cannot see.
fn preload_corruption() -> ChaosProfile {
    let mut chaos = ChaosProfile::off();
    chaos.label = "preload-corruption".into();
    chaos.preload_flip = 0.05;
    chaos
}

fn corruption_duel_config(hardened: bool) -> CampaignConfig {
    let mut c = CampaignConfig::paper_duel(PlacementPolicy::Separated, SimDuration::from_secs(10));
    c.label = if hardened { "hardened" } else { "naive" }.to_string();
    c.timeline = quiet_timeline();
    c.workload.num_keys = 600;
    c.chaos = preload_corruption();
    c.verify_responses = true;
    if hardened {
        c.cluster.integrity = IntegrityConfig::full();
    }
    c
}

#[test]
fn checksummed_cluster_serves_zero_corrupt_responses_and_drains_repairs() {
    let report = run_campaign(&corruption_duel_config(true)).expect("campaign");
    let ig = &report.integrity;
    assert!(
        ig.oracle_checked > 1_000,
        "oracle barely exercised: {} reads checked",
        ig.oracle_checked
    );
    assert_eq!(
        ig.oracle_wrong, 0,
        "checksummed cluster served corrupt data: {ig:?}"
    );
    // The corruption was really there and really found…
    let write_flips: u64 = report
        .node_counters
        .iter()
        .map(|c| c.corrupted_writes)
        .sum();
    assert!(write_flips > 0, "preload flip injected nothing");
    assert!(
        ig.corrupt_acks + report.scrub.corrupt_found > 0,
        "no corruption detected despite {write_flips} flipped records"
    );
    // …and really fixed: repairs ran and the queue is empty at the end.
    assert!(
        ig.read_repairs + report.scrub.repairs_enqueued > 0,
        "nothing was repaired"
    );
    assert_eq!(
        report.pending_repairs, 0,
        "repair queue did not drain: {} jobs left",
        report.pending_repairs
    );
    assert!(report.scrub.keys_scanned > 0, "scrubber never ran");
}

#[test]
fn naive_cluster_provably_serves_corrupt_reads_under_the_same_faults() {
    let report = run_campaign(&corruption_duel_config(false)).expect("campaign");
    let ig = &report.integrity;
    assert!(ig.oracle_checked > 1_000, "oracle barely exercised");
    assert!(
        ig.oracle_wrong > 0,
        "without end-to-end checksums some corrupt reads must slip through \
         ({} checked)",
        ig.oracle_checked
    );
    assert_eq!(ig.corrupt_acks, 0, "no checksums, so nothing is detected");
}

fn transient_duel_config(resilient: bool) -> CampaignConfig {
    let mut c = CampaignConfig::paper_duel(PlacementPolicy::Separated, SimDuration::from_secs(20));
    c.label = if resilient { "resilient" } else { "one-shot" }.to_string();
    // The default 50/50 mix over the full keyspace: transient delays
    // ride WAL syncs, so write traffic is what drags busy windows over
    // the quorum deadline (a read-only population would barely touch
    // the device).
    c.chaos = ChaosProfile::transient();
    if resilient {
        c.client = Some(ClientPolicy::standard());
    }
    c
}

fn total_ok(r: &deepnote_cluster::report::CampaignReport) -> u64 {
    r.metrics
        .phases
        .iter()
        .map(|p| p.reads.ok + p.writes.ok)
        .sum()
}

fn total_attempted(r: &deepnote_cluster::report::CampaignReport) -> u64 {
    r.metrics
        .phases
        .iter()
        .map(|p| p.reads.attempted + p.writes.attempted)
        .sum()
}

#[test]
fn resilient_client_beats_the_one_shot_path_under_transient_bursts() {
    let resilient = run_campaign(&transient_duel_config(true)).expect("campaign");
    let naive = run_campaign(&transient_duel_config(false)).expect("campaign");
    let naive_ratio = total_ok(&naive) as f64 / total_attempted(&naive) as f64;
    let resilient_ratio = total_ok(&resilient) as f64 / total_attempted(&resilient) as f64;
    assert!(
        naive_ratio < 1.0,
        "transient profile injected no failures; the duel proves nothing"
    );
    assert!(
        resilient_ratio > naive_ratio,
        "retries should recover transient failures: resilient {resilient_ratio} vs naive {naive_ratio}"
    );
    let stats = resilient
        .resilience
        .expect("resilient run has client stats");
    assert!(stats.retries > 0, "no retries were ever issued");
    assert!(
        stats.recovered_by_retry > 0,
        "retries never rescued an operation"
    );
}

#[test]
fn chaos_campaigns_are_byte_identical_per_seed() {
    let config = {
        let (mut hardened, _) = CampaignConfig::chaos_pair(
            PlacementPolicy::Separated,
            SimDuration::from_secs(20),
            &ChaosProfile::full(),
        );
        hardened.workload.num_keys = 400;
        hardened
    };
    let a = run_campaign(&config).expect("campaign");
    let b = run_campaign(&config).expect("campaign");
    assert_eq!(a.render(), b.render(), "human report diverged");
    assert_eq!(a.to_json(), b.to_json(), "JSON artifact diverged");
    assert_eq!(a.fault_traces, b.fault_traces, "fault traces diverged");
    assert_eq!(a.events, b.events, "control-plane events diverged");
    assert!(
        a.total_injected_faults() > 0,
        "the full profile should inject device faults"
    );
}
