//! The headline reproduction assertions: every table and figure of the
//! paper, checked for shape (and, where the model is calibrated, for
//! near-exact values).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_acoustics::{Distance, SweepPlan};
use deepnote_core::experiments::{crash, frequency, range};
use deepnote_kv::bench::BenchSpec;
use deepnote_sim::SimDuration;
use deepnote_structures::Scenario;

#[test]
fn table1_values() {
    let rows = range::table1(5);

    // Paper: No Attack 18.0 / 22.7 MB/s at 0.2 ms.
    assert!((rows[0].read_mb_s - 18.0).abs() < 0.2, "{:?}", rows[0]);
    assert!((rows[0].write_mb_s - 22.7).abs() < 0.2, "{:?}", rows[0]);
    assert!((rows[0].read_latency_ms.unwrap() - 0.23).abs() < 0.05);

    // Paper: 1 cm and 5 cm rows are 0 / 0 with "-" latency.
    for i in [1, 2] {
        assert_eq!(rows[i].read_mb_s, 0.0);
        assert_eq!(rows[i].write_mb_s, 0.0);
        assert!(rows[i].read_latency_ms.is_none());
        assert!(rows[i].write_latency_ms.is_none());
    }

    // Paper: 10 cm = 12.6 read / 0.3 write. Calibrated: match within 15%.
    assert!((rows[3].read_mb_s - 12.6).abs() < 2.0, "{:?}", rows[3]);
    assert!((rows[3].write_mb_s - 0.3).abs() < 0.3, "{:?}", rows[3]);

    // Paper: 15 cm = 17.6 read / 2.9 write; we accept read ≥ 16 and
    // write in the severely-degraded class (0.3–3).
    assert!(rows[4].read_mb_s > 16.0, "{:?}", rows[4]);
    assert!((0.2..3.5).contains(&rows[4].write_mb_s), "{:?}", rows[4]);

    // Paper: 20–25 cm recovered (read ≥ 17.6, write ≥ 21).
    for i in [5, 6] {
        assert!(rows[i].read_mb_s > 17.0, "{:?}", rows[i]);
        assert!(rows[i].write_mb_s > 21.0, "{:?}", rows[i]);
    }

    // Monotonicity: farther is never worse.
    for pair in rows[1..].windows(2) {
        assert!(pair[1].read_mb_s >= pair[0].read_mb_s - 0.5);
        assert!(pair[1].write_mb_s >= pair[0].write_mb_s - 0.5);
    }
}

#[test]
fn table2_values() {
    let spec = BenchSpec {
        num_keys: 20_000,
        duration: SimDuration::from_secs(10),
        ..BenchSpec::default()
    };
    let rows = range::table2(&spec);

    // Paper: No Attack 8.7 MB/s and 1.1 ×100k ops/s. Calibrated within 10%.
    assert!((rows[0].throughput_mb_s - 8.7).abs() < 0.9, "{:?}", rows[0]);
    assert!((rows[0].io_rate_x100k - 1.1).abs() < 0.15, "{:?}", rows[0]);

    // Paper: zero at 1 and 5 cm (the store crashes mid-run).
    for i in [1, 2] {
        assert!(rows[i].throughput_mb_s < 0.1, "{:?}", rows[i]);
        assert!(rows[i].crashed_at_s.is_some());
    }

    // Paper: 15 cm degraded but serving (3.7 / 0.9).
    assert!(rows[4].throughput_mb_s > 0.5, "{:?}", rows[4]);
    assert!(rows[4].throughput_mb_s < 0.8 * rows[0].throughput_mb_s);

    // Paper: 20–25 cm ≈ baseline (8.6 / 1.1).
    for i in [5, 6] {
        assert!(
            rows[i].throughput_mb_s > 0.93 * rows[0].throughput_mb_s,
            "{:?}",
            rows[i]
        );
    }
}

#[test]
fn table3_values() {
    let rows = crash::table3();
    let times: Vec<f64> = rows.iter().map(|r| r.time_to_crash_s.unwrap()).collect();

    // Paper: 80.0 / 81.0 / 81.3 seconds, mean 80.8. Ours must land in
    // the same window with the same mean class.
    for (row, t) in rows.iter().zip(&times) {
        assert!((75.0..90.0).contains(t), "{}: {t}", row.application);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    assert!((78.0..85.0).contains(&mean), "mean = {mean}");

    // Error signatures.
    assert!(rows[0].error.contains("JBD error -5"), "{}", rows[0].error);
    assert!(rows[1].error.contains("-5"), "{}", rows[1].error);
    assert!(
        rows[2].error.contains("sync_without_flush"),
        "{}",
        rows[2].error
    );
}

#[test]
fn figure2_bands() {
    let sweeps = frequency::figure2(Distance::from_cm(1.0), &SweepPlan::paper_sweep());
    assert_eq!(sweeps.len(), 3);

    for sweep in &sweeps {
        // Paper: "throughput losses occur in all three scenarios at the
        // frequency range between 300 Hz to 1.7 kHz".
        let (lo, hi) = sweep.write_dead_band(1.0).expect("dead band exists");
        assert!(
            (100.0..=450.0).contains(&lo),
            "{}: band starts {lo}",
            sweep.scenario
        );
        assert!(hi <= 1_800.0, "{}: band ends {hi}", sweep.scenario);

        // Paper: "major throughput degradation during write operations
        // compared to read": write band at least as wide as read band.
        let (rlo, rhi) = sweep.read_dead_band(1.0).expect("read band exists");
        assert!(rhi - rlo <= hi - lo + 1.0, "{}", sweep.scenario);

        // No effect at the top of the sweep.
        assert!(sweep.write.nearest_y(16_900.0).unwrap() > 22.0);
        assert!(sweep.read.nearest_y(16_900.0).unwrap() > 17.5);
    }

    // Scenario 3 (metal): write band ends by ~1.3 kHz, read by ~1.1 kHz
    // (paper: 1.3 kHz and 800 Hz).
    let s3 = &sweeps[2];
    let (_, w_hi) = s3.write_dead_band(1.0).unwrap();
    let (_, r_hi) = s3.read_dead_band(1.0).unwrap();
    assert!(
        (1_000.0..1_500.0).contains(&w_hi),
        "S3 write band ends {w_hi}"
    );
    assert!(
        r_hi < w_hi,
        "S3 read band ({r_hi}) must end below write band ({w_hi})"
    );
}

#[test]
fn scenario_ordering_as_in_figure2() {
    // At mid-band with the tower, Scenario 2 dips at least as hard as
    // Scenario 1 (the rack amplifies).
    let sweeps = frequency::figure2(Distance::from_cm(1.0), &SweepPlan::paper_sweep());
    let s1_band = sweeps[0].write_dead_band(1.0).unwrap();
    let s2_band = sweeps[1].write_dead_band(1.0).unwrap();
    assert!(
        s2_band.1 - s2_band.0 >= s1_band.1 - s1_band.0,
        "S2 {s2_band:?} vs S1 {s1_band:?}"
    );
    let _ = Scenario::ALL;
}
