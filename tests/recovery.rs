//! Crash-consistency across the stack: after an attack kills the
//! software, remounting/reopening on the same device recovers a
//! consistent state (journal replay, WAL replay), and committed data
//! survives.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_blockdev::{BlockDevice, HddDisk, MemDisk};
use deepnote_core::prelude::*;
use deepnote_fs::{Filesystem, FsState};
use deepnote_kv::{Db, DbConfig};

/// Steals the device out of a filesystem without unmounting — a crash.
fn crash_fs(mut fs: Filesystem<HddDisk>) -> HddDisk {
    let clock = fs.clock().clone();
    let mut out = HddDisk::barracuda_500gb(clock);
    std::mem::swap(&mut out, fs.device_mut());
    out
}

#[test]
fn committed_data_survives_an_attack_crash() {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut fs = Filesystem::format(disk, clock.clone()).unwrap();

    fs.create("/srv").unwrap();
    fs.create_file("/srv/durable").unwrap();
    fs.write_file("/srv/durable", 0, b"committed before attack")
        .unwrap();
    fs.commit().unwrap();

    // Attack; buffered write is lost with the abort.
    testbed.mount_attack(&vibration, AttackParams::paper_best());
    fs.write_file("/srv/durable", 0, b"dirty, never committed!!")
        .unwrap();
    assert!(fs.commit().is_err());
    assert!(matches!(fs.state(), FsState::Aborted { .. }));
    testbed.stop_attack(&vibration);

    // "Replace the drive controller": remount the same device.
    let dev = crash_fs(fs);
    let (mut fs2, _) = Filesystem::mount(dev, clock).unwrap();
    let content = fs2.read_file("/srv/durable", 0, 64).unwrap();
    assert_eq!(content, b"committed before attack");
    assert_eq!(fs2.fsck().unwrap(), Vec::<String>::new());
}

#[test]
fn database_reopens_consistently_after_attack_crash() {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut db = Db::create(disk, clock.clone()).unwrap();

    for i in 0..500u32 {
        db.put(
            format!("key{i:05}").as_bytes(),
            format!("value{i}").as_bytes(),
        )
        .unwrap();
    }
    db.sync_wal().unwrap();

    // Attack until the store dies.
    testbed.mount_attack(&vibration, AttackParams::paper_best());
    let mut died = false;
    for i in 0..100_000u32 {
        if db.put(format!("attacked{i}").as_bytes(), b"x").is_err() {
            died = true;
            break;
        }
    }
    assert!(died, "store must die under the attack");
    testbed.stop_attack(&vibration);

    // Reopen on the same device: all synced keys are intact.
    let dev = {
        let clock2 = clock.clone();
        let fs = db.filesystem_mut();
        let mut out = HddDisk::barracuda_500gb(clock2);
        std::mem::swap(&mut out, fs.device_mut());
        out
    };
    let mut db2 = Db::open_with(dev, clock, DbConfig::default()).unwrap();
    for i in (0..500u32).step_by(37) {
        let got = db2.get(format!("key{i:05}").as_bytes()).unwrap();
        assert_eq!(got, Some(format!("value{i}").into_bytes()), "key{i}");
    }
}

#[test]
fn repeated_attack_recover_cycles_are_stable() {
    // Pulse the attack on and off: the drive and filesystem survive the
    // pulses as long as no commit lands inside a blackout window longer
    // than the journal patience.
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut fs = Filesystem::format(disk, clock.clone()).unwrap();
    fs.create_file("/pulse").unwrap();

    let mut offset = 0u64;
    for pulse in 0..5 {
        // 2 s of attack (shorter than the 75 s patience)...
        testbed.mount_attack(&vibration, AttackParams::paper_best());
        clock.advance(SimDuration::from_secs(2));
        testbed.stop_attack(&vibration);
        // ... then healthy I/O and an explicit fsync.
        let data = format!("pulse {pulse}\n").into_bytes();
        fs.write_file("/pulse", offset, &data).unwrap();
        offset += data.len() as u64;
        fs.commit().unwrap();
    }
    assert_eq!(fs.state(), FsState::Active);
    let all = fs.read_file("/pulse", 0, 1024).unwrap();
    let text = String::from_utf8(all).unwrap();
    for pulse in 0..5 {
        assert!(text.contains(&format!("pulse {pulse}")), "{text}");
    }
}

#[test]
fn memdisk_and_hdd_agree_on_fs_semantics() {
    // The reference device and the mechanical device produce identical
    // filesystem contents for the same operation sequence (timing
    // differs; bytes must not).
    let run = |dev: Box<dyn BlockDevice>| -> Vec<u8> {
        struct BoxedDev(Box<dyn BlockDevice>);
        impl BlockDevice for BoxedDev {
            fn num_blocks(&self) -> u64 {
                self.0.num_blocks()
            }
            fn read_blocks(
                &mut self,
                lba: u64,
                buf: &mut [u8],
            ) -> Result<(), deepnote_blockdev::IoError> {
                self.0.read_blocks(lba, buf)
            }
            fn write_blocks(
                &mut self,
                lba: u64,
                buf: &[u8],
            ) -> Result<(), deepnote_blockdev::IoError> {
                self.0.write_blocks(lba, buf)
            }
            fn flush(&mut self) -> Result<(), deepnote_blockdev::IoError> {
                self.0.flush()
            }
        }
        let clock = Clock::new();
        let mut fs = Filesystem::format(BoxedDev(dev), clock).unwrap();
        fs.create("/a").unwrap();
        fs.create_file("/a/f").unwrap();
        fs.write_file("/a/f", 0, b"same bytes on any device")
            .unwrap();
        fs.write_file("/a/f", 10, b"OVERWRITE").unwrap();
        fs.commit().unwrap();
        fs.read_file("/a/f", 0, 64).unwrap()
    };
    let clock = Clock::new();
    let mem = run(Box::new(MemDisk::new(1 << 17)));
    let hdd = run(Box::new(HddDisk::barracuda_500gb(clock)));
    assert_eq!(mem, hdd);
}
