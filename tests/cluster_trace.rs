//! Telemetry, end to end: the cross-layer trace and the SLO burn-rate
//! monitor against the full attack campaign.
//!
//! Three claims:
//!
//! 1. **Determinism** — a traced campaign is a pure function of its
//!    seed: same config, byte-identical Chrome trace JSON.
//! 2. **Zero perturbation** — enabling tracing changes nothing the
//!    campaign reports; text and JSON outputs are byte-identical with
//!    telemetry on and off.
//! 3. **Coverage and timing** — one run's trace carries events from at
//!    least four distinct layers, and burn-rate alerts fire during the
//!    attack phase while staying silent through the baseline.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_cluster::prelude::*;
use deepnote_cluster::timeline::{AttackLoad, Phase};
use deepnote_sim::{SimDuration, SimTime};
use deepnote_telemetry::{export_chrome_trace, schema};

/// A short co-located campaign: tiny keyspace, brisk phases, still long
/// enough for the 650 Hz tone to kill the near rack and raise alerts.
fn traced_config() -> CampaignConfig {
    let mut c = CampaignConfig::paper_duel(PlacementPolicy::CoLocated, SimDuration::from_secs(30));
    c.workload.num_keys = 240;
    c.workload.clients = 4;
    c.timeline = AttackTimeline::new(vec![
        Phase {
            label: "baseline".into(),
            duration: SimDuration::from_secs(20),
            load: AttackLoad::Off,
        },
        Phase {
            label: "attack".into(),
            duration: SimDuration::from_secs(30),
            load: AttackLoad::Tone { hz: 650.0 },
        },
        Phase {
            label: "recovery".into(),
            duration: SimDuration::from_secs(30),
            load: AttackLoad::Off,
        },
    ]);
    c.telemetry.trace = true;
    c.telemetry.metrics_interval = Some(SimDuration::from_millis(500));
    c
}

#[test]
fn traces_are_byte_identical_per_seed() {
    let a = run_campaign(&traced_config()).expect("campaign");
    let b = run_campaign(&traced_config()).expect("campaign");
    let trace_a = export_chrome_trace(&[("run", a.trace.as_ref().unwrap())]);
    let trace_b = export_chrome_trace(&[("run", b.trace.as_ref().unwrap())]);
    assert_eq!(trace_a, trace_b, "same seed must produce identical traces");
    assert_eq!(a.trace, b.trace);
}

#[test]
fn one_trace_covers_at_least_four_layers() {
    let report = run_campaign(&traced_config()).expect("campaign");
    let json = export_chrome_trace(&[("colocated", report.trace.as_ref().unwrap())]);
    let summary = schema::validate_trace(&json).expect("exporter output must validate");
    assert!(summary.spans > 0, "no spans recorded");
    assert!(summary.instants > 0, "no instants recorded");
    for layer in ["acoustics", "hdd", "blockdev", "cluster"] {
        assert!(
            summary.layers.iter().any(|l| l == layer),
            "layer {layer} missing from trace (got {:?})",
            summary.layers
        );
    }
}

#[test]
fn telemetry_does_not_perturb_the_campaign() {
    let mut trace_only = traced_config();
    trace_only.telemetry.metrics_interval = None;
    let mut quiet = traced_config();
    quiet.telemetry = TelemetryConfig::default();
    let traced = run_campaign(&trace_only).expect("campaign");
    let bare = run_campaign(&quiet).expect("campaign");
    assert!(traced.trace.is_some() && bare.trace.is_none());
    // The trace is excluded from both outputs, so enabling it changes
    // neither byte of them.
    assert_eq!(traced.render(), bare.render());
    assert_eq!(traced.to_json(), bare.to_json());
    // Metrics scraping is read-only too: it adds series to the report
    // but every campaign result matches the bare run exactly.
    let scraped = run_campaign(&traced_config()).expect("campaign");
    assert!(!scraped.series.is_empty() && bare.series.is_empty());
    assert_eq!(scraped.events, bare.events);
    assert_eq!(scraped.alerts, bare.alerts);
    for (a, b) in scraped.metrics.phases.iter().zip(&bare.metrics.phases) {
        assert_eq!(a.reads.attempted, b.reads.attempted, "{}", a.label);
        assert_eq!(a.reads.ok, b.reads.ok, "{}", a.label);
        assert_eq!(a.writes.attempted, b.writes.attempted, "{}", a.label);
        assert_eq!(a.writes.ok, b.writes.ok, "{}", a.label);
    }
}

#[test]
fn alerts_fire_during_attack_and_stay_silent_before_it() {
    let report = run_campaign(&traced_config()).expect("campaign");
    let attack_start = SimTime::ZERO + SimDuration::from_secs(20);
    let raised: Vec<_> = report.alerts.iter().filter(|a| a.raised).collect();
    assert!(!raised.is_empty(), "attack must raise a burn-rate alert");
    for a in &report.alerts {
        assert!(
            a.at >= attack_start,
            "alert at {:?} during the quiet baseline",
            a.at
        );
    }
    let ew = &report.early_warning;
    assert!(ew.first_node_down.is_some(), "no node marked down");
    assert!(ew.first_alert_s.is_some(), "no alert timestamp");
}

#[test]
fn report_json_passes_the_schema_validator() {
    let report = run_campaign(&traced_config()).expect("campaign");
    let body = format!("[{}]\n", report.to_json());
    let summary = schema::validate_report(&body).expect("report JSON must validate");
    assert_eq!(summary.runs, 1);
    assert!(summary.raised > 0, "no raised alerts in the report");
    assert!(summary.series > 0, "no metric series in the report");
}
