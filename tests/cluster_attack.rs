//! Service-level availability under acoustic attack: the same Scenario-2
//! (plastic tower) 650 Hz campaign against both replica placements.
//!
//! The headline claim of `deepnote-cluster`: replicas separated across
//! acoustic fault domains keep serving quorum traffic through the
//! attack; replicas co-located in the blast radius lose whole shards
//! until the drives come back.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_cluster::prelude::*;
use deepnote_sim::SimDuration;

/// The paper-shaped duel, trimmed so the suite stays quick: 60 s of
/// 650 Hz, 600 keys, the default six-client closed loop.
fn duel_config(placement: PlacementPolicy) -> CampaignConfig {
    let mut c = CampaignConfig::paper_duel(placement, SimDuration::from_secs(60));
    c.workload.num_keys = 600;
    c
}

#[test]
fn separated_replicas_serve_quorum_traffic_through_the_attack() {
    let report = run_campaign(&duel_config(PlacementPolicy::Separated)).expect("campaign");
    let baseline = report.metrics.phase("baseline").unwrap();
    let attack = report.metrics.phase("attack").unwrap();
    let recovery = report.metrics.phase("recovery").unwrap();
    assert!(
        baseline.success_ratio() > 0.99,
        "baseline {}",
        baseline.success_ratio()
    );
    assert!(
        attack.success_ratio() > 0.95,
        "separated placement should ride out the attack: {}",
        attack.success_ratio()
    );
    assert!(
        recovery.success_ratio() > 0.95,
        "recovery {}",
        recovery.success_ratio()
    );
    // No shard ever dropped below write quorum...
    assert_eq!(
        report.worst_unavailable_shards(),
        0,
        "events: {:#?}",
        report.events
    );
    // ...even though the near rack really died and was failed over, with
    // the re-replication traffic paid for in bytes.
    assert!(report.total_crashes() >= 1, "near rack never crashed");
    assert!(report.failovers >= 1, "no failover happened");
    assert!(report.repair.keys_copied > 0 && report.repair.bytes_copied > 0);
}

#[test]
fn colocated_replicas_lose_availability_during_the_attack() {
    let report = run_campaign(&duel_config(PlacementPolicy::CoLocated)).expect("campaign");
    let baseline = report.metrics.phase("baseline").unwrap();
    let attack = report.metrics.phase("attack").unwrap();
    assert!(
        baseline.success_ratio() > 0.99,
        "baseline {}",
        baseline.success_ratio()
    );
    assert!(
        attack.success_ratio() <= 0.75,
        "co-located placement should lose its near-rack shards: {}",
        attack.success_ratio()
    );
    // At least one shard had its whole replica set inside the blast
    // radius and went fully unavailable.
    assert!(
        report.worst_unavailable_shards() >= 1,
        "no shard went below write quorum; events: {:#?}",
        report.events
    );
    assert!(report.total_crashes() >= 1);
}

#[test]
fn campaign_reports_are_deterministic_for_a_fixed_seed() {
    let a = run_campaign(&duel_config(PlacementPolicy::Separated)).expect("campaign");
    let b = run_campaign(&duel_config(PlacementPolicy::Separated)).expect("campaign");
    assert_eq!(a.render(), b.render());
    assert_eq!(a.events, b.events);
    let c = run_campaign(&CampaignConfig {
        seed: 0xDEAD_BEEF,
        ..duel_config(PlacementPolicy::Separated)
    })
    .expect("campaign");
    // A different seed still serves, even if the interleaving differs.
    assert!(c.metrics.phase("baseline").unwrap().success_ratio() > 0.99);
}
