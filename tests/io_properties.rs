//! I/O-pattern assertions through the trace device: properties of *how*
//! the stack talks to the disk, not just what ends up on it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_blockdev::{MemDisk, TraceDevice, TraceKind};
use deepnote_fs::{Filesystem, FS_BLOCK_SIZE};
use deepnote_iobench::{parse_jobfile, run_job};
use deepnote_sim::{Clock, SimDuration};

const SECTORS_PER_FS_BLOCK: u64 = (FS_BLOCK_SIZE / 512) as u64;

#[test]
fn journal_record_is_one_contiguous_write() {
    // The whole point of a journal on rotating media: the descriptor,
    // images, and commit block go down as a single sequential request.
    let clock = Clock::new();
    let dev = TraceDevice::new(MemDisk::new(1 << 17), clock.clone(), 4_096);
    let mut fs = Filesystem::format(dev, clock).unwrap();
    fs.create_file("/f").unwrap();
    fs.write_file("/f", 0, b"hello journal").unwrap();
    fs.device_mut().clear();

    fs.commit().unwrap();

    let writes: Vec<_> = fs
        .device_mut()
        .trace()
        .into_iter()
        .filter(|e| e.kind == TraceKind::Write)
        .collect();
    assert!(!writes.is_empty());
    // Find the journal-region write: it must cover ≥ 3 fs blocks
    // (descriptor + ≥1 image + commit) in ONE request.
    let journal_write = writes
        .iter()
        .find(|w| w.blocks >= 3 * SECTORS_PER_FS_BLOCK)
        .unwrap_or_else(|| panic!("no contiguous journal record found in {writes:?}"));
    assert_eq!(journal_write.error, None);
    // And it lands in the journal region (fs blocks 1..1025).
    let fs_block = journal_write.lba / SECTORS_PER_FS_BLOCK;
    assert!(
        (1..1025).contains(&fs_block),
        "journal write at fs block {fs_block}"
    );
}

#[test]
fn sequential_fio_job_issues_sequential_writes() {
    let clock = Clock::new();
    let jobs = parse_jobfile("[seq]\nrw=write\nbs=4k\nruntime=1\nsize=4m").unwrap();
    let mut disk = TraceDevice::new(
        MemDisk::with_latency(1 << 16, clock.clone(), SimDuration::from_micros(50)),
        clock.clone(),
        10_000,
    );
    let report = run_job(&jobs[0], &mut disk, &clock);
    assert!(report.ops_completed > 1_000);
    let seq = disk.write_sequentiality().expect("many writes traced");
    // Sequential with wraparound: ≥ 99 % of transitions are contiguous.
    assert!(seq > 0.99, "sequentiality = {seq}");
}

#[test]
fn wal_append_traffic_is_append_only() {
    use deepnote_kv::{Db, DbConfig};
    let clock = Clock::new();
    let dev = TraceDevice::new(MemDisk::new(1 << 18), clock.clone(), 100_000);
    let mut db = Db::create_with(dev, clock, DbConfig::default()).unwrap();

    // Three explicit WAL sync rounds: each round's log write must land
    // strictly after the previous round's (append-only file growth).
    let mut wal_write_starts = Vec::new();
    for round in 0..3u32 {
        db.filesystem_mut().device_mut().clear();
        for i in 0..200u32 {
            db.put(
                format!("r{round}-key{i:06}").as_bytes(),
                b"value-payload-xx",
            )
            .unwrap();
        }
        db.sync_wal().unwrap();
        let first_data_write = db
            .filesystem_mut()
            .device_mut()
            .trace()
            .into_iter()
            .find(|e| e.kind == TraceKind::Write && e.lba / SECTORS_PER_FS_BLOCK >= 1_090)
            .expect("a WAL data write must occur");
        wal_write_starts.push(first_data_write.lba);
    }
    assert!(
        wal_write_starts.windows(2).all(|w| w[1] >= w[0]),
        "WAL writes must move forward: {wal_write_starts:?}"
    );
}

#[test]
fn attack_failures_cluster_in_trace() {
    use deepnote_core::prelude::*;

    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let clock = Clock::new();
    let inner = deepnote_blockdev::HddDisk::barracuda_500gb(clock.clone());
    let vibration = inner.vibration();
    let mut dev = TraceDevice::new(inner, clock.clone(), 10_000);

    let buf = vec![0u8; 4096];
    for i in 0..50u64 {
        dev.write_blocks(i * 8, &buf).unwrap();
    }
    testbed.mount_attack(&vibration, AttackParams::paper_best());
    for i in 50..60u64 {
        let _ = dev.write_blocks(i * 8, &buf);
    }
    let trace = dev.trace();
    let (healthy, attacked) = trace.split_at(50);
    assert!(healthy.iter().all(|e| e.error.is_none()));
    assert!(attacked.iter().all(|e| e.error.is_some()));
}
