//! Reproducibility: the whole evaluation is deterministic — two runs of
//! any harness produce bit-identical results.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_acoustics::{Distance, SweepPlan};
use deepnote_cluster::prelude::*;
use deepnote_core::experiments::{crash, frequency, range};
use deepnote_core::prelude::*;
use deepnote_kv::bench::BenchSpec;
use deepnote_sim::SimDuration;

#[test]
fn table1_is_deterministic() {
    let a = range::table1(2);
    let b = range::table1(2);
    assert_eq!(a, b);
}

#[test]
fn table2_is_deterministic() {
    let spec = BenchSpec {
        num_keys: 2_000,
        duration: SimDuration::from_secs(2),
        ..BenchSpec::default()
    };
    let a = range::table2(&spec);
    let b = range::table2(&spec);
    assert_eq!(a, b);
}

#[test]
fn figure2_is_deterministic() {
    let plan = SweepPlan::paper_sweep();
    let a = frequency::figure2(Distance::from_cm(1.0), &plan);
    let b = frequency::figure2(Distance::from_cm(1.0), &plan);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.write.points(), y.write.points());
        assert_eq!(x.read.points(), y.read.points());
    }
}

#[test]
fn crash_times_are_deterministic() {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let a = crash::ext4_crash(&testbed);
    let b = crash::ext4_crash(&testbed);
    assert_eq!(a.time_to_crash_s, b.time_to_crash_s);
}

#[test]
fn cluster_campaign_is_deterministic_per_seed() {
    // The full distributed stack — quorum serving, failure detection,
    // failover, re-replication — replays operation for operation under a
    // fixed seed: the serialized reports are byte-identical, down to the
    // timestamped control-plane event log.
    let config = || {
        let mut c =
            CampaignConfig::paper_duel(PlacementPolicy::CoLocated, SimDuration::from_secs(30));
        c.workload.num_keys = 240;
        c.workload.clients = 4;
        c
    };
    let a = run_campaign(&config()).expect("campaign");
    let b = run_campaign(&config()).expect("campaign");
    assert_eq!(a.render().into_bytes(), b.render().into_bytes());
    assert_eq!(a.events, b.events);
    assert_eq!(a.repair, b.repair);
    assert_eq!(a.max_unavailable_by_phase, b.max_unavailable_by_phase);
    // The duel summary (both placements side by side) is deterministic
    // too, through the parallel matrix runner.
    let duel = |placement| {
        let mut c = CampaignConfig::paper_duel(placement, SimDuration::from_secs(30));
        c.workload.num_keys = 240;
        c.workload.clients = 4;
        c
    };
    let matrix = || -> Vec<CampaignReport> {
        run_matrix(vec![
            duel(PlacementPolicy::Separated),
            duel(PlacementPolicy::CoLocated),
        ])
        .into_iter()
        .map(|r| r.expect("matrix run"))
        .collect()
    };
    assert_eq!(
        render_duel(&matrix()).into_bytes(),
        render_duel(&matrix()).into_bytes()
    );
}

#[test]
fn different_seeds_change_stochastic_runs_but_not_physics() {
    // The physics chain is seed-free; only the op-level retries are
    // stochastic. Two drives with different seeds agree on blackout
    // (deterministic escalation) but may differ in partially-degraded
    // throughput.
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let v1 = testbed.vibration_at(Frequency::from_hz(650.0), Distance::from_cm(1.0));
    let v2 = testbed.vibration_at(Frequency::from_hz(650.0), Distance::from_cm(1.0));
    assert_eq!(v1.displacement_nm(), v2.displacement_nm());
}
