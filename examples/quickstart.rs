//! Quickstart: mount the paper's best attack on a victim drive and watch
//! sequential I/O collapse, then recover.
//!
//! Run with: `cargo run --release -p deepnote-core --example quickstart`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::prelude::*;
use deepnote_iobench::{run_job, JobSpec};

fn main() {
    // The paper's Scenario 2: a drive in a Supermicro tower inside a
    // plastic container, submerged in the tank.
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let clock = Clock::new();
    let mut disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();

    println!("== Deep Note quickstart ==");
    println!("victim: {}", disk.drive().geometry().name());
    println!("scenario: {}", testbed.scenario());

    // Baseline: FIO-style sequential 4 KiB read and write.
    let read = run_job(
        &JobSpec::seq_read("baseline-read").with_runtime(SimDuration::from_secs(5)),
        &mut disk,
        &clock,
    );
    let write = run_job(
        &JobSpec::seq_write("baseline-write").with_runtime(SimDuration::from_secs(5)),
        &mut disk,
        &clock,
    );
    println!("\nno attack:");
    println!(
        "  read : {:.1} MB/s (lat {})",
        read.throughput_mb_s,
        read.latency_cell()
    );
    println!(
        "  write: {:.1} MB/s (lat {})",
        write.throughput_mb_s,
        write.latency_cell()
    );

    // The attack: 650 Hz at 140 dB re 1 µPa, speaker 1 cm from the
    // container.
    let params = AttackParams::paper_best();
    testbed.mount_attack(&vibration, params);
    let v = vibration.current().expect("attack mounted");
    println!(
        "\nattack on: {} at {} -> chassis vibration {:.0} nm",
        params.frequency,
        params.distance,
        v.displacement_nm()
    );

    let read = run_job(
        &JobSpec::seq_read("attacked-read").with_runtime(SimDuration::from_secs(5)),
        &mut disk,
        &clock,
    );
    let write = run_job(
        &JobSpec::seq_write("attacked-write").with_runtime(SimDuration::from_secs(5)),
        &mut disk,
        &clock,
    );
    println!(
        "  read : {:.1} MB/s (lat {})",
        read.throughput_mb_s,
        read.latency_cell()
    );
    println!(
        "  write: {:.1} MB/s (lat {})",
        write.throughput_mb_s,
        write.latency_cell()
    );

    // Stop the attack: the drive comes back.
    testbed.stop_attack(&vibration);
    let write = run_job(
        &JobSpec::seq_write("recovered-write").with_runtime(SimDuration::from_secs(5)),
        &mut disk,
        &clock,
    );
    println!("\nattack stopped:");
    println!(
        "  write: {:.1} MB/s (lat {})",
        write.throughput_mb_s,
        write.latency_cell()
    );
}
