//! Figure 2 regeneration: the §4.1 frequency sweep over all three
//! scenarios, printing the vulnerable bands and a TSV dump of the curves.
//!
//! Run with: `cargo run --release -p deepnote-core --example frequency_sweep`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::experiments::frequency;
use deepnote_core::prelude::*;
use deepnote_core::report;

fn main() {
    let plan = SweepPlan::paper_sweep();
    let distance = Distance::from_cm(1.0);

    println!(
        "sweeping {} .. {} (paper §4.1 methodology)\n",
        plan.start(),
        plan.end()
    );
    let sweeps = frequency::figure2(distance, &plan);
    print!("{}", report::render_figure2(&sweeps));

    // Cross-validate a few points with the op-level drive.
    println!("\ncross-validation (closed-form vs measured):");
    for &hz in &[650.0, 5_000.0] {
        let f = Frequency::from_hz(hz);
        let (meas_r, meas_w) = frequency::measure_point(Scenario::PlasticTower, f, distance, 3);
        let sweep = &sweeps[1]; // Scenario 2
        let model_w = sweep.write.nearest_y(hz).unwrap();
        let model_r = sweep.read.nearest_y(hz).unwrap();
        println!(
            "  {f}: model R/W = {model_r:.1}/{model_w:.1} MB/s, measured = {meas_r:.1}/{meas_w:.1} MB/s"
        );
    }

    // Full curves for plotting.
    println!("\nTSV curves (write then read, per scenario):\n");
    for sweep in &sweeps {
        print!("{}", sweep.write.to_tsv());
        print!("{}", sweep.read.to_tsv());
    }
}
