//! §5 "Water Conditions" ablation: how temperature, salinity, and depth
//! shape the attack's reach, plus the attacker-power comparison.
//!
//! Run with: `cargo run --release -p deepnote-core --example water_conditions`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::experiments::ablations;
use deepnote_core::report;

fn main() {
    println!("== water conditions vs attack reach ==\n");
    let rows = ablations::water_conditions();
    print!("{}", report::render_water(&rows));

    println!("\n== attacker power vs open-water reach ==\n");
    let rows = ablations::attacker_power();
    print!("{}", report::render_power(&rows));

    println!("\n== enclosure materials ==\n");
    let rows = ablations::materials();
    print!("{}", report::render_materials(&rows));

    println!("\n== off-track tolerance sensitivity ==\n");
    let rows = ablations::tolerance_sensitivity();
    print!("{}", report::render_tolerance(&rows));

    println!("\n== tone vs band noise at equal power ==\n");
    for row in ablations::noise_vs_tone() {
        println!(
            "  {:<42} residual {:>7.1} nm, write {:>5.1} MB/s",
            row.label, row.displacement_nm, row.write_mb_s
        );
    }
    println!("\nconcentrating power at the resonance is what makes the paper's");
    println!("sine sweep effective; spreading the same energy across the band");
    println!("dilutes the displacement below the fault thresholds.");

    println!("\n== attacker depth vs reach (Lloyd mirror, Natick at 36 m) ==\n");
    for row in ablations::attacker_depth() {
        let reach = row
            .blackout_range_m
            .map(|m| format!("{m:.0} m"))
            .unwrap_or_else(|| "out of reach".to_string());
        println!("  {:<26} blackout reach {reach}", row.label);
    }
    println!("\nthe phase-inverted surface reflection cancels low frequencies for");
    println!("shallow sources: attacking a deep data center from a surface vessel");
    println!("costs an order of magnitude in range — the attacker must dive.");

    println!("\n== seasonal resonance drift (probe at 10 cm) ==\n");
    for row in ablations::seasonal_drift() {
        println!(
            "  {:<26} modes x{:.3}: stale 650 Hz -> {:>5.1} MB/s, retuned {:>5.0} Hz -> {:>5.1} MB/s",
            row.label,
            row.frequency_scale,
            row.write_at_stale_tuning_mb_s,
            row.retuned_best_hz,
            row.write_at_retuned_mb_s
        );
    }
    println!("\na frequency tuned in the paper's 21°C tank drifts with the seasons;");
    println!("the attacker must re-sweep, and a defender watching for sweeps gains");
    println!("a recurring detection opportunity.");
}
