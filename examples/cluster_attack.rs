//! The service-level question: does a replicated KV cluster built on
//! attackable drives keep answering during a Deep Note campaign?
//!
//! Runs the same baseline → sweep → 650 Hz attack → recovery timeline
//! against two placements of the same nine-node, three-rack cluster:
//! replicas co-located in one rack (sharing the blast radius) versus
//! separated across acoustic fault domains.
//!
//! Run with: `cargo run --release -p deepnote-cluster --example cluster_attack`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_cluster::prelude::*;
use deepnote_sim::SimDuration;

fn main() {
    let attack = SimDuration::from_secs(90);
    let configs = vec![
        CampaignConfig::paper_duel(PlacementPolicy::Separated, attack),
        CampaignConfig::paper_duel(PlacementPolicy::CoLocated, attack),
    ];
    let mut reports = Vec::new();
    for result in run_matrix(configs) {
        reports.push(result.expect("campaign run"));
    }
    print!("{}", render_duel(&reports));
}
