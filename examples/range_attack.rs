//! Tables 1 and 2 regeneration: attack effectiveness vs speaker distance.
//!
//! Run with: `cargo run --release -p deepnote-core --example range_attack`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::experiments::range;
use deepnote_core::report;

fn main() {
    println!("running Table 1 (FIO vs distance)...\n");
    let t1 = range::table1(5);
    print!("{}", report::render_table1(&t1));

    println!("\nrunning Table 2 (RocksDB readwhilewriting vs distance)...\n");
    let t2 = range::table2(&range::quick_kv_spec());
    print!("{}", report::render_table2(&t2));

    println!("\npaper reference —");
    println!("  Table 1 no-attack: 18.0 / 22.7 MB/s at 0.2 ms; blackout at 1–5 cm;");
    println!("  partial at 10–15 cm (read 12.6, write 0.3–2.9); recovered at 20–25 cm.");
    println!("  Table 2 no-attack: 8.7 MB/s at 1.1x100k ops/s; zero within 10 cm.");
}
