//! Blast radius: one speaker against a line of enclosed drives — the
//! question an underwater data-center operator actually asks.
//!
//! Run with: `cargo run --release -p deepnote-core --example datacenter_fleet`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::fleet::{Fleet, Impact};
use deepnote_core::prelude::*;

fn main() {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    // Ten drives, 4 cm apart, nearest 1 cm from the source (a dense
    // JBOD-style column).
    let fleet = Fleet::new(testbed, Distance::from_cm(1.0), Distance::from_cm(4.0), 10);

    for &hz in &[650.0, 300.0, 1_300.0, 5_000.0] {
        let params = AttackParams::paper_best().at_frequency(Frequency::from_hz(hz));
        let report = fleet.assess(params);
        println!(
            "attack at {:>7.0} Hz: {} blackout, {} affected of {}",
            hz,
            report.blacked_out(),
            report.affected(),
            report.drives.len()
        );
        for d in &report.drives {
            let marker = match d.impact {
                Impact::Blackout => "XX",
                Impact::Degraded => "~~",
                Impact::Unaffected => "ok",
            };
            println!(
                "   drive {:>2} at {:>5.1} cm: [{marker}] write {:>5.1} MB/s",
                d.index, d.distance_cm, d.write_mb_s
            );
        }
        println!();
    }
}
