//! Defense in depth: detect the attack from the request stream, survive
//! it with separated RAID-1 mirrors, and compare drive classes (§5 "HDD
//! types").
//!
//! Run with: `cargo run --release -p deepnote-core --example defend_in_depth`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::detect::{AttackDetector, Verdict};
use deepnote_core::experiments::{redundancy, stealth};
use deepnote_core::prelude::*;
use deepnote_iobench::{run_job, JobSpec};

fn main() {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);

    // 1. Detection: an anomaly detector on the storage node's own
    //    request stream flags the attack within seconds.
    println!("== 1. detection ==");
    let clock = Clock::new();
    let mut disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut detector = AttackDetector::with_defaults();
    let mut cursor = 0u64;
    let mut request = |disk: &mut HddDisk| {
        let start = disk.drive().clock().now();
        let lba = (cursor * 8) % (1 << 16);
        cursor += 1;
        let ok = disk.write_blocks(lba, &vec![0u8; 4096]).is_ok();
        let end = disk.drive().clock().now();
        ok.then(|| (end - start).as_millis_f64())
    };
    for _ in 0..80 {
        detector.observe(request(&mut disk));
    }
    println!(
        "calibrated baseline: {:.2} ms",
        detector.baseline_ms().unwrap()
    );
    let attack_start = clock.now();
    testbed.mount_attack(&vibration, AttackParams::paper_best());
    let mut requests_until_alarm = 0;
    loop {
        requests_until_alarm += 1;
        if detector.observe(request(&mut disk)) == Verdict::UnderAttack {
            break;
        }
    }
    let elapsed = (clock.now() - attack_start).as_secs_f64();
    println!(
        "alarm after {requests_until_alarm} requests = {elapsed:.1} virtual seconds \
         (the crash would come at ~81 s — ample time to fail over)\n"
    );
    testbed.stop_attack(&vibration);

    // 2. Redundancy: RAID-1 only helps if the mirrors don't share an
    //    acoustic fate.
    println!("== 2. redundancy ==");
    print!("{}", redundancy::render(&redundancy::mirror_study()));

    // 3. Stealth: a patient attacker duty-cycles below the detector.
    println!("\n== 3. stealth (attacker's counter-move) ==");
    print!("{}", stealth::render(&stealth::duty_cycle_sweep(&testbed)));

    // 4. Drive class: enterprise RV-compensated drives shrug off the
    //    attack that blacks out the paper's desktop Barracuda.
    println!("\n== 4. drive classes (§5 \"HDD types\") ==");
    for (label, make) in [
        ("desktop Barracuda 500GB", false),
        ("nearline enterprise 4TB (RV sensors)", true),
    ] {
        let clock = Clock::new();
        let mut disk = if make {
            HddDisk::nearline_4tb(clock.clone())
        } else {
            HddDisk::barracuda_500gb(clock.clone())
        };
        testbed.mount_attack(&disk.vibration(), AttackParams::paper_best());
        let report = run_job(
            &JobSpec::seq_write("w").with_runtime(SimDuration::from_secs(3)),
            &mut disk,
            &clock,
        );
        println!(
            "  {label:<38} write under attack: {:>5.1} MB/s",
            report.throughput_mb_s
        );
    }
}
