//! The chaos layer in one sitting: the same seeded fault profile run
//! against a hardened cluster (end-to-end checksums, background scrub,
//! read repair, and a retrying/hedging client) and against the naive
//! one-shot quorum path.
//!
//! Both runs verify every successful read against the workload oracle,
//! so the duel does not just *suggest* the defenses matter — the naive
//! run provably serves corrupt bytes while the hardened run serves
//! none, and the resilience counters show what retries and hedges
//! recovered on top.
//!
//! Run with: `cargo run --release -p deepnote-cluster --example cluster_chaos`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_cluster::prelude::*;
use deepnote_sim::SimDuration;

fn main() {
    let attack = SimDuration::from_secs(60);
    for profile in [ChaosProfile::corruption(), ChaosProfile::full()] {
        let (hardened, naive) =
            CampaignConfig::chaos_pair(PlacementPolicy::Separated, attack, &profile);
        let mut reports = Vec::new();
        for result in run_matrix(vec![hardened, naive]) {
            reports.push(result.expect("campaign run"));
        }
        println!("━━━ chaos profile: {} ━━━", profile.label);
        print!("{}", render_duel(&reports));
        for r in &reports {
            println!(
                "{:<24} oracle: {} reads checked, {} wrong",
                r.label, r.integrity.oracle_checked, r.integrity.oracle_wrong
            );
        }
        println!();
    }
}
