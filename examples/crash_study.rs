//! Table 3 regeneration: prolonged attacks crash Ext4, an Ubuntu server,
//! and RocksDB.
//!
//! Run with: `cargo run --release -p deepnote-core --example crash_study`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::experiments::crash;
use deepnote_core::prelude::*;
use deepnote_core::report;
use deepnote_os::{OsState, ServerOs};

fn main() {
    println!("running Table 3 (time to crash, attack at 650 Hz / 140 dB / 1 cm)...\n");
    let rows = crash::table3();
    print!("{}", report::render_table3(&rows));
    println!("\npaper reference: Ext4 80.0 s, Ubuntu 81.0 s, RocksDB 81.3 s (mean 80.8 s)\n");

    // Bonus: show the dmesg trail of the dying server, like the paper's
    // §4.4 observations.
    println!("== dmesg of the dying Ubuntu server ==");
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let clock = Clock::new();
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    let mut os = ServerOs::install(disk, clock.clone()).expect("install");
    for _ in 0..10 {
        os.write_log("healthy heartbeat").expect("healthy");
        clock.advance(SimDuration::from_secs(1));
        os.tick();
    }
    testbed.mount_attack(&vibration, AttackParams::paper_best());
    loop {
        let _ = os.write_log("request under attack");
        let _ = os.exec("ls");
        clock.advance(SimDuration::from_secs(1));
        if let OsState::Crashed { .. } = os.tick() {
            break;
        }
        if clock.now().as_secs_f64() > 300.0 {
            break;
        }
    }
    // Show the last few kernel messages.
    let dmesg = os.klog().dmesg();
    let tail: Vec<&str> = dmesg.lines().rev().take(8).collect();
    for line in tail.iter().rev() {
        println!("{line}");
    }
}
