//! §5 defense evaluation: liner, dampers, and an augmented servo against
//! the paper's best attack, with the thermal trade-off.
//!
//! Run with: `cargo run --release -p deepnote-core --example defense_eval`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::defense;
use deepnote_core::prelude::*;
use deepnote_core::report;

fn main() {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    println!(
        "attack under evaluation: {} at {} ({})\n",
        AttackParams::paper_best().frequency,
        AttackParams::paper_best().distance,
        testbed.scenario()
    );
    let outcomes = defense::evaluate_catalog(&testbed);
    print!("{}", report::render_defenses(&outcomes));

    println!("\nobservations:");
    let baseline = &outcomes[0];
    for o in &outcomes[1..] {
        let gain = o.write_mb_s_at_paper_point - baseline.write_mb_s_at_paper_point;
        let reach_drop =
            baseline.blackout_reach_cm.unwrap_or(0.0) - o.blackout_reach_cm.unwrap_or(0.0);
        println!(
            "  {}: +{gain:.1} MB/s at the paper point, blackout reach shrinks {reach_drop:.0} cm, costs +{:.1} °C",
            o.label, o.cooling_penalty_c
        );
    }
    println!("\nthe paper's §5 caveat holds: the most acoustically effective passive");
    println!("treatment (the liner) is also the most thermally expensive inside a");
    println!("sealed nitrogen vessel.");
}
