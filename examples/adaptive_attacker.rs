//! The §3 remote attacker: discover the vulnerable band from observed
//! request latency alone — no access to the victim, as the paper's
//! threat model requires.
//!
//! Run with: `cargo run --release -p deepnote-core --example adaptive_attacker`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_core::experiments::adaptive;
use deepnote_core::prelude::*;

fn main() {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    let plan = SweepPlan::paper_sweep();
    println!(
        "remote sweep {} .. {} against {}, speaker at 1 cm\n",
        plan.start(),
        plan.end(),
        testbed.scenario()
    );

    let discovery =
        adaptive::remote_frequency_discovery(&testbed, Distance::from_cm(1.0), &plan, 6);

    println!(
        "healthy baseline: {:.2} ms per request",
        discovery.baseline_latency_ms
    );
    match discovery.vulnerable_band() {
        Some((lo, hi)) => println!("vulnerable band discovered: {lo:.0}–{hi:.0} Hz"),
        None => println!("no vulnerable frequencies found"),
    }
    if let Some(best) = discovery.best_frequency_hz {
        println!("best attack frequency: {best:.0} Hz (paper chose 650 Hz)");
    }

    println!("\nper-probe detail (vulnerable probes only):");
    for p in discovery.probes.iter().filter(|p| p.vulnerable) {
        let lat = p
            .mean_latency_ms
            .map(|m| format!("{m:.1} ms"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "  {:>7.0} Hz: mean latency {:>8}, {} timeouts",
            p.frequency_hz, lat, p.timeouts
        );
    }
    println!(
        "\ntotal probes: {} ({} vulnerable)",
        discovery.probes.len(),
        discovery.vulnerable_hz.len()
    );
}
