//! Offline shim for `serde_derive`.
//!
//! Nothing in the workspace actually serializes values yet — the derives
//! exist so that types can declare `#[derive(Serialize, Deserialize)]`
//! (and carry `#[serde(...)]` attributes) without pulling the real serde
//! stack into an offline build. Both macros expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
