//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync::{RwLock, Mutex}` with parking_lot's non-poisoning
//! API: `lock()`/`read()`/`write()` return guards directly. A poisoned
//! std lock (a panic while held) panics on the next acquisition, which
//! matches how this workspace uses locks (no lock is held across code
//! that is expected to panic).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

/// A mutex with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
