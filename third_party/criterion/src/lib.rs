//! Offline shim for `criterion`.
//!
//! Implements the subset the workspace's benches use: a [`Criterion`]
//! with `bench_function`, a [`Bencher`] with `iter`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. Each benchmark runs
//! `sample_size` samples after one warm-up and prints mean/min/max
//! wall-clock timings — enough to compare runs by eye, with none of the
//! statistical machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // Warm-up pass (not recorded).
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let times = &b.samples;
        if times.is_empty() {
            println!("bench {id:<44} (no samples)");
            return self;
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = times.iter().min().unwrap();
        let max = times.iter().max().unwrap();
        println!(
            "bench {id:<44} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
            times.len()
        );
        self
    }

    /// Parses CLI args for compatibility; this shim ignores filters.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream writes reports on drop; this shim has nothing to flush.
    pub fn final_summary(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Declares a benchmark group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
