//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and
//! macro namespaces. The derive macros (re-exported from the local
//! `serde_derive` shim) expand to nothing, and the traits are empty
//! markers — sufficient for a workspace that only *declares*
//! serializability.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
