//! Offline shim for `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses:
//! `rngs::StdRng` (xoshiro256** seeded through splitmix64),
//! [`RngCore`], [`SeedableRng`], [`Rng`] with `gen`/`gen_range`, and
//! `distributions::{Distribution, Standard}`.
//!
//! Statistical quality matches the call sites' needs (uniformity tests,
//! Zipf skew, Bernoulli trials); it is NOT the same stream as upstream
//! `StdRng`, which is fine because every consumer seeds explicitly and
//! only compares runs against other runs of this workspace.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Core RNG interface: raw output and byte filling.
pub trait RngCore {
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo bias is negligible for the spans used here
                // (all far below 2^64).
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}
impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_sample_range!(f32, f64);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut r = StdRng::seed_from_u64(1);
        let mut below_half = 0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_500..5_500).contains(&below_half), "{below_half}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
