//! Offline shim for `crossbeam` — just `thread::scope`, implemented on
//! `std::thread::scope` (stable since Rust 1.63).

/// Scoped threads with crossbeam's calling convention.
pub mod thread {
    use std::thread as std_thread;

    /// A scope handle; closures spawned through it may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic
        /// payload, like `crossbeam`.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Crossbeam passes the scope back into
        /// the closure; preserve that signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns `Ok` with `f`'s result. With `std::thread::scope`
    /// underneath, a panicked child propagates at scope exit rather than
    /// surfacing through the `Err` arm — the workspace treats both as
    /// fatal, so the difference is unobservable.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_spawns_and_joins_in_order() {
        let data = [1, 2, 3, 4];
        let sums = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn join_surfaces_panics() {
        let caught = thread::scope(|s| s.spawn(|_| panic!("boom")).join().is_err()).unwrap();
        assert!(caught);
    }
}
