//! Option strategies.

use crate::{Strategy, TestRng};

/// Strategy for `Option<S::Value>`.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Upstream weights Some 3:1 over None; keep that bias so optional
        // payloads are exercised often.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `proptest::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
