//! Offline shim for `proptest`.
//!
//! A deterministic subset of the proptest API covering this workspace's
//! call sites: numeric range strategies, tuples, [`Just`], `any::<T>()`,
//! `prop_oneof!`, `collection::vec`, `option::of`, simple
//! char-class/repetition string patterns, and the [`proptest!`] macro.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   in the assertion message instead of minimizing them.
//! * **Deterministic** — each test derives its RNG seed from the test's
//!   module path and name, so failures reproduce exactly without
//!   regression files.
//! * `prop_assert*` macros panic (like `assert*`) rather than returning
//!   `Result`.

use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod option;

/// Re-exports matching `proptest::prelude::*` as used in this workspace.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator behind every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for the named test (module path + fn name).
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying (bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as u128 + v) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e6;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// String pattern strategy
// ---------------------------------------------------------------------------

/// `&str` acts as a regex-like pattern strategy. This shim supports the
/// shape the workspace uses — a single char class with a `{min,max}`
/// repetition, e.g. `"[a-zA-Z0-9_.-]{1,40}"` — and falls back to
/// yielding the literal string for anything else.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, min, max)) => {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min_s, max_s) = rep.split_once(',')?;
    let min: usize = min_s.trim().parse().ok()?;
    let max: usize = max_s.trim().parse().ok()?;
    if min > max {
        return None;
    }
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range when '-' sits between two chars; literal otherwise.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo <= hi {
                for c in lo..=hi {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
                continue;
            }
        }
        chars.push(class[i]);
        i += 1;
    }
    if chars.is_empty() {
        None
    } else {
        Some((chars, min, max))
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising each property against many inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Defines property-test functions; see the crate docs for the supported
/// subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::for_test("shim::bounds");
        for _ in 0..500 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let (a, b) = Strategy::generate(&(0u8..4, -1.0f64..1.0), &mut rng);
            assert!(a < 4);
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = crate::TestRng::for_test("shim::pattern");
        let strat = "[a-zA-Z0-9_.-]{1,40}";
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!((1..=40).contains(&s.len()), "{s}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }

    #[test]
    fn oneof_map_vec_option_compose() {
        let mut rng = crate::TestRng::for_test("shim::compose");
        let strat = crate::collection::vec(
            prop_oneof![(0u8..10).prop_map(|x| x as u32), Just(99u32),],
            1..20,
        );
        let mut saw_just = false;
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..20).contains(&v.len()));
            saw_just |= v.contains(&99);
            assert!(v.iter().all(|&x| x < 10 || x == 99));
        }
        assert!(saw_just);
        let opt = crate::option::of(0u8..5);
        let somes = (0..200)
            .filter(|_| Strategy::generate(&opt, &mut rng).is_some())
            .count();
        assert!((50..200).contains(&somes), "{somes}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, multiple args, trailing comma.
        #[test]
        fn macro_binds_arguments(a in 0u64..100, b in 0.0f64..1.0,) {
            prop_assert!(a < 100);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert_ne!(b, 2.0);
        }
    }
}
