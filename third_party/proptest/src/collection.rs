//! Collection strategies.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
