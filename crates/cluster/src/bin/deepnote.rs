//! The `deepnote` command-line tool: regenerate any of the paper's
//! tables/figures or run the extension studies from one binary.
//!
//! ```text
//! deepnote table1 [--seconds N]
//! deepnote table2 [--keys N] [--seconds N]
//! deepnote table3
//! deepnote fig2 [--tsv]
//! deepnote sweep [--distance-cm D] [--requests N]
//! deepnote defenses
//! deepnote ablations
//! deepnote stealth
//! deepnote redundancy
//! deepnote fleet [--drives N] [--spacing-cm S]
//! deepnote cluster [--placement P] [--seconds N] [--clients N] [--shards N] [--seed S]
//!                  [--chaos C] [--json FILE] [--trace FILE] [--metrics-interval T]
//! deepnote trace-check [--trace FILE] [--report FILE]
//! deepnote perf [--quick] [--iters N] [--json FILE]
//! deepnote all
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_acoustics::{Distance, SweepPlan};
use deepnote_cluster::prelude::*;
use deepnote_core::experiments::{
    ablations, adaptive, covert, crash, frequency, heatmap, range, redundancy, stealth,
};
use deepnote_core::fleet::Fleet;
use deepnote_core::testbed::Testbed;
use deepnote_core::threat::AttackParams;
use deepnote_core::{defense, report};
use deepnote_kv::bench::BenchSpec;
use deepnote_sim::SimDuration;
use deepnote_structures::Scenario;
use deepnote_telemetry::{export_chrome_trace, schema, TraceLog};
use std::process::ExitCode;

/// Minimal flag parsing: `--name value` pairs after the subcommand.
struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if a == "--tsv" || a == "--quick" || a == "--no-transfer-cache" {
                flags.push((a[2..].to_string(), "true".to_string()));
                continue;
            }
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument: {a}"));
            };
            let Some(value) = it.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            flags.push((name.to_string(), value.clone()));
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.iter().find(|(n, _)| n == name) {
            None => Ok(default),
            Some((_, v)) => v
                .parse()
                .map_err(|_| format!("bad value for --{name}: {v}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn string(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses an interval flag: a bare number means seconds, and `s`, `ms`,
/// and `us` suffixes are accepted (`100ms`, `2s`, `500us`).
fn parse_interval(v: &str) -> Result<SimDuration, String> {
    let (num, nanos_per_unit) = if let Some(n) = v.strip_suffix("ms") {
        (n, 1_000_000u64)
    } else if let Some(n) = v.strip_suffix("us") {
        (n, 1_000u64)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1_000_000_000u64)
    } else {
        (v, 1_000_000_000u64)
    };
    let n: u64 = num
        .parse()
        .map_err(|_| format!("bad interval: {v} (try 100ms, 2s, 500us)"))?;
    Ok(SimDuration::from_nanos(n.saturating_mul(nanos_per_unit)))
}

const USAGE: &str = "\
deepnote — reproduce 'Deep Note' (HotStorage '23) from the command line

USAGE: deepnote <command> [flags]

COMMANDS:
  table1       FIO throughput/latency vs distance    [--seconds N]
  table2       RocksDB readwhilewriting vs distance  [--keys N] [--seconds N]
  table3       time-to-crash: Ext4 / Ubuntu / RocksDB
  fig2         throughput vs frequency, 3 scenarios  [--tsv]
  sweep        remote frequency discovery (§3)       [--distance-cm D] [--requests N]
  defenses     liner / dampers / augmented servo
  ablations    water, materials, tolerances, power, noise-vs-tone
  stealth      duty-cycled attacks vs the detector
  redundancy   RAID-1 co-located vs separated mirrors
  fleet        blast radius on a drive column        [--drives N] [--spacing-cm S]
  heatmap      frequency x distance attack surface   [--tsv]
  covert       seek-noise exfiltration budget (DiskFiltration underwater)
  cluster      replicated KV cluster vs attack timeline
               [--placement separated|colocated|both] [--seconds N]
               [--clients N] [--shards N] [--seed S]
               [--chaos off|transient|corruption|full] [--json FILE]
               [--trace FILE] [--metrics-interval 100ms]
               [--no-transfer-cache]
               with --chaos, each placement runs twice: full defense
               stack (checksums, scrub, read repair, resilient client)
               vs the naive one-shot quorum path; --trace writes a
               Chrome/Perfetto trace of every layer, --metrics-interval
               scrapes per-node series into the JSON report
  trace-check  validate telemetry artifacts            [--trace FILE] [--report FILE]
  perf         time canonical workloads on the experiment pool vs a
               single-thread baseline and write BENCH_perf.json
               [--quick] [--iters N] [--json FILE]
  all          everything above (except TSV dumps and perf)
";

fn run(cmd: &str, args: &Args) -> Result<(), String> {
    let testbed = Testbed::paper_default(Scenario::PlasticTower);
    match cmd {
        "table1" => {
            let seconds = args.get("seconds", 5u64)?;
            print!("{}", report::render_table1(&range::table1(seconds)));
        }
        "table2" => {
            let spec = BenchSpec {
                num_keys: args.get("keys", 20_000u64)?,
                duration: SimDuration::from_secs(args.get("seconds", 10u64)?),
                ..BenchSpec::default()
            };
            print!("{}", report::render_table2(&range::table2(&spec)));
        }
        "table3" => {
            print!("{}", report::render_table3(&crash::table3()));
        }
        "fig2" => {
            let sweeps = frequency::figure2(Distance::from_cm(1.0), &SweepPlan::paper_sweep());
            print!("{}", report::render_figure2(&sweeps));
            if args.has("tsv") {
                for sweep in &sweeps {
                    print!("{}", sweep.write.to_tsv());
                    print!("{}", sweep.read.to_tsv());
                }
            }
        }
        "sweep" => {
            let distance = Distance::from_cm(args.get("distance-cm", 1.0f64)?);
            let requests = args.get("requests", 6u32)?;
            let d = adaptive::remote_frequency_discovery(
                &testbed,
                distance,
                &SweepPlan::paper_sweep(),
                requests,
            );
            println!("baseline latency: {:.2} ms", d.baseline_latency_ms);
            match d.vulnerable_band() {
                Some((lo, hi)) => println!("vulnerable band: {lo:.0}-{hi:.0} Hz"),
                None => println!("no vulnerable frequencies found"),
            }
            if let Some(best) = d.best_frequency_hz {
                println!("best frequency: {best:.0} Hz");
            }
        }
        "defenses" => {
            print!(
                "{}",
                report::render_defenses(&defense::evaluate_catalog(&testbed))
            );
        }
        "ablations" => {
            print!("{}", report::render_water(&ablations::water_conditions()));
            print!("{}", report::render_power(&ablations::attacker_power()));
            print!("{}", report::render_materials(&ablations::materials()));
            print!(
                "{}",
                report::render_tolerance(&ablations::tolerance_sensitivity())
            );
            println!("Tone vs band noise at equal power:");
            for row in ablations::noise_vs_tone() {
                println!(
                    "  {:<42} residual {:>7.1} nm, write {:>5.1} MB/s",
                    row.label, row.displacement_nm, row.write_mb_s
                );
            }
            println!("Attacker depth vs reach (Lloyd mirror, target at 36 m):");
            for row in ablations::attacker_depth() {
                let reach = row
                    .blackout_range_m
                    .map(|m| format!("{m:.0} m"))
                    .unwrap_or_else(|| "out of reach".to_string());
                println!("  {:<26} blackout reach {reach}", row.label);
            }
            println!("Seasonal resonance drift (probe at 10 cm):");
            for row in ablations::seasonal_drift() {
                println!(
                    "  {:<26} modes x{:.3}: stale 650 Hz -> {:>5.1} MB/s, retuned {:>5.0} Hz -> {:>5.1} MB/s",
                    row.label,
                    row.frequency_scale,
                    row.write_at_stale_tuning_mb_s,
                    row.retuned_best_hz,
                    row.write_at_retuned_mb_s
                );
            }
        }
        "stealth" => {
            print!("{}", stealth::render(&stealth::duty_cycle_sweep(&testbed)));
        }
        "redundancy" => {
            print!("{}", redundancy::render(&redundancy::mirror_study()));
        }
        "fleet" => {
            let drives = args.get("drives", 10usize)?;
            let spacing = Distance::from_cm(args.get("spacing-cm", 4.0f64)?);
            let fleet = Fleet::new(testbed, Distance::from_cm(1.0), spacing, drives);
            let report = fleet.assess(AttackParams::paper_best());
            println!(
                "attack at 650 Hz: {} blackout, {} affected of {}",
                report.blacked_out(),
                report.affected(),
                report.drives.len()
            );
            for d in &report.drives {
                println!(
                    "  drive {:>2} at {:>6.1} cm: write {:>5.1} MB/s ({:?})",
                    d.index, d.distance_cm, d.write_mb_s, d.impact
                );
            }
        }
        "heatmap" => {
            let map = heatmap::default_grid(&testbed);
            let radius = map.exclusion_radius_cm(0.9, 22.7);
            println!(
                "grid: {} frequencies x {} distances",
                map.frequencies_hz.len(),
                map.distances_cm.len()
            );
            match radius {
                Some(cm) => println!("operator exclusion radius (90% of nominal): {cm:.0} cm"),
                None => println!("some frequency stays degraded at every sampled distance"),
            }
            if args.has("tsv") {
                print!("{}", map.to_tsv());
            }
        }
        "covert" => {
            print!("{}", covert::render(&covert::exfiltration_study()));
        }
        "cluster" => {
            let placement = args.get("placement", "both".to_string())?;
            let attack = SimDuration::from_secs(args.get("seconds", 120u64)?);
            let chaos_name = args.get("chaos", "off".to_string())?;
            let chaos = ChaosProfile::parse(&chaos_name).ok_or_else(|| {
                format!("bad value for --chaos: {chaos_name} (off|transient|corruption|full)")
            })?;
            let trace_path = args.string("trace").map(str::to_string);
            let metrics_interval = match args.string("metrics-interval") {
                Some(v) => Some(parse_interval(v)?),
                None => None,
            };
            let tune = |mut c: CampaignConfig| -> Result<CampaignConfig, String> {
                c.seed = args.get("seed", c.seed)?;
                c.workload.clients = args.get("clients", c.workload.clients)?;
                c.cluster.num_shards = args.get("shards", c.cluster.num_shards)?;
                c.telemetry.trace = trace_path.is_some();
                c.telemetry.metrics_interval = metrics_interval;
                // Pure performance: byte-identical reports either way
                // (the CI perf job proves it on the JSON artifacts).
                c.transfer_cache = !args.has("no-transfer-cache");
                Ok(c)
            };
            let placements = match placement.as_str() {
                "separated" => vec![PlacementPolicy::Separated],
                "colocated" | "co-located" => vec![PlacementPolicy::CoLocated],
                "both" => vec![PlacementPolicy::Separated, PlacementPolicy::CoLocated],
                other => return Err(format!("bad value for --placement: {other}")),
            };
            let mut configs = Vec::new();
            for p in placements {
                if chaos.is_off() {
                    configs.push(tune(CampaignConfig::paper_duel(p, attack))?);
                } else {
                    // Under chaos, each placement becomes a duel of its
                    // own: full defense stack vs the bare quorum path.
                    let (hardened, naive) = CampaignConfig::chaos_pair(p, attack, &chaos);
                    let mut hardened = tune(hardened)?;
                    let mut naive = tune(naive)?;
                    hardened.label = format!("{} {}", p.label(), hardened.label);
                    naive.label = format!("{} {}", p.label(), naive.label);
                    configs.push(hardened);
                    configs.push(naive);
                }
            }
            let mut reports = Vec::new();
            for result in run_matrix(configs) {
                reports.push(result.map_err(|e| format!("campaign failed: {e}"))?);
            }
            print!("{}", render_duel(&reports));
            if let Some((_, path)) = args.flags.iter().find(|(n, _)| n == "json") {
                let body = reports
                    .iter()
                    .map(CampaignReport::to_json)
                    .collect::<Vec<_>>()
                    .join(",");
                std::fs::write(path, format!("[{body}]\n"))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote {} report(s) to {path}", reports.len());
            }
            if let Some(path) = &trace_path {
                let runs: Vec<(&str, &TraceLog)> = reports
                    .iter()
                    .filter_map(|r| r.trace.as_ref().map(|t| (r.label.as_str(), t)))
                    .collect();
                std::fs::write(path, export_chrome_trace(&runs))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote trace of {} run(s) to {path}", runs.len());
            }
        }
        "trace-check" => {
            let trace_path = args.string("trace");
            let report_path = args.string("report");
            if trace_path.is_none() && report_path.is_none() {
                return Err("trace-check needs --trace FILE and/or --report FILE".to_string());
            }
            if let Some(path) = trace_path {
                let body =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                let s = schema::validate_trace(&body).map_err(|e| format!("{path}: {e}"))?;
                println!(
                    "{path}: OK — {} events ({} spans, {} instants), layers: {}",
                    s.events,
                    s.spans,
                    s.instants,
                    s.layers.join(", ")
                );
            }
            if let Some(path) = report_path {
                let body =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                let s = schema::validate_report(&body).map_err(|e| format!("{path}: {e}"))?;
                println!(
                    "{path}: OK — {} run(s), {} alert transition(s) ({} raised), {} metric series",
                    s.runs, s.alerts, s.raised, s.series
                );
            }
        }
        "perf" => {
            run_perf(args)?;
        }
        "all" => {
            for sub in [
                "table1",
                "table2",
                "table3",
                "fig2",
                "defenses",
                "ablations",
                "stealth",
                "redundancy",
                "fleet",
                "heatmap",
                "covert",
                "cluster",
            ] {
                println!("═══ {sub} ═══");
                run(sub, &Args { flags: Vec::new() })?;
                println!();
            }
        }
        other => return Err(format!("unknown command: {other}\n\n{USAGE}")),
    }
    Ok(())
}

/// One timed workload in the perf report.
struct PerfRow {
    workload: &'static str,
    baseline_median_ms: f64,
    baseline_min_ms: f64,
    pool_median_ms: f64,
    pool_min_ms: f64,
}

impl PerfRow {
    /// Single-thread median over pool median: the headline speedup.
    fn speedup(&self) -> f64 {
        if self.pool_median_ms > 0.0 {
            self.baseline_median_ms / self.pool_median_ms
        } else {
            f64::INFINITY
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"workload\":\"{}\",\"baseline_median_ms\":{:.3},\"baseline_min_ms\":{:.3},\
             \"pool_median_ms\":{:.3},\"pool_min_ms\":{:.3},\"speedup\":{:.3}}}",
            self.workload,
            self.baseline_median_ms,
            self.baseline_min_ms,
            self.pool_median_ms,
            self.pool_min_ms,
            self.speedup()
        )
    }
}

/// Wall-clock milliseconds spent in `f`. The simulation itself runs on
/// virtual time and never reads the host clock; the perf harness is the
/// one place that measures real elapsed time, by design.
fn wall_ms<T>(f: impl FnOnce() -> T) -> f64 {
    // deepnote-lint: allow(nondet-clock): the perf harness measures wall time by design
    let start = std::time::Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64() * 1e3
}

/// Runs `f` with `DEEPNOTE_THREADS` forced to `width`, restoring the
/// previous value (or absence) afterwards. Safe here: the pool's worker
/// threads are scoped and joined, so nothing else reads the environment
/// concurrently.
fn with_thread_override<T>(width: Option<&str>, f: impl FnOnce() -> T) -> T {
    let env = deepnote_core::parallel::THREADS_ENV;
    let prior = std::env::var(env).ok();
    match width {
        Some(w) => std::env::set_var(env, w),
        None => std::env::remove_var(env),
    }
    let out = f();
    match prior {
        Some(v) => std::env::set_var(env, v),
        None => std::env::remove_var(env),
    }
    out
}

/// Median of a sample set (lower middle for even counts, so the figure
/// is always a measured value, not an interpolation).
fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[(samples.len() - 1) / 2]
}

fn min_ms(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Times `f` `iters` times single-threaded, then `iters` times on the
/// pool, and reduces to one report row.
fn measure(workload: &'static str, iters: usize, mut f: impl FnMut()) -> PerfRow {
    eprintln!("  {workload}: {iters} baseline + {iters} pool iteration(s)...");
    let mut baseline: Vec<f64> = Vec::with_capacity(iters);
    with_thread_override(Some("1"), || {
        for _ in 0..iters {
            baseline.push(wall_ms(&mut f));
        }
    });
    let mut pool: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        pool.push(wall_ms(&mut f));
    }
    PerfRow {
        workload,
        baseline_median_ms: median_ms(&mut baseline),
        baseline_min_ms: min_ms(&baseline),
        pool_median_ms: median_ms(&mut pool),
        pool_min_ms: min_ms(&pool),
    }
}

/// The campaign matrix used as the cluster perf workload: both
/// placements, each as a hardened-vs-naive chaos duel, with tracing and
/// metrics scraping on — the heaviest supported configuration.
fn perf_campaign_configs(seconds: u64) -> Vec<CampaignConfig> {
    let attack = SimDuration::from_secs(seconds);
    let chaos = ChaosProfile::parse("full").expect("stock chaos profile");
    let mut configs = Vec::new();
    for p in [PlacementPolicy::Separated, PlacementPolicy::CoLocated] {
        let (mut hardened, mut naive) = CampaignConfig::chaos_pair(p, attack, &chaos);
        for c in [&mut hardened, &mut naive] {
            c.telemetry.trace = true;
            c.telemetry.metrics_interval = Some(SimDuration::from_millis(500));
        }
        configs.push(hardened);
        configs.push(naive);
    }
    configs
}

/// Proves the transfer-path cache is pure performance: a campaign run
/// with the cache on must render and serialize byte-identically to the
/// same campaign with the cache off.
fn verify_cache_identity(seconds: u64) -> Result<(), String> {
    let cached =
        CampaignConfig::paper_duel(PlacementPolicy::Separated, SimDuration::from_secs(seconds));
    let mut uncached = cached.clone();
    uncached.transfer_cache = false;
    let a = run_campaign(&cached).map_err(|e| format!("cached campaign failed: {e}"))?;
    let b = run_campaign(&uncached).map_err(|e| format!("uncached campaign failed: {e}"))?;
    if a.render() != b.render() || a.to_json() != b.to_json() {
        return Err(
            "transfer-path cache changed campaign output: cache-on and cache-off \
             reports must be byte-identical"
                .to_string(),
        );
    }
    Ok(())
}

/// The `perf` subcommand: times the canonical workloads (Table 1 range
/// matrix, Figure 2 sweep, the chaos+telemetry campaign matrix) on the
/// experiment pool against an in-process single-thread baseline, checks
/// the cache byte-identity invariant, and writes `BENCH_perf.json`.
fn run_perf(args: &Args) -> Result<(), String> {
    let quick = args.has("quick");
    let iters: usize = args.get("iters", if quick { 3 } else { 5 })?;
    if iters == 0 {
        return Err("--iters must be at least 1".to_string());
    }
    let json_path = args.string("json").unwrap_or("BENCH_perf.json").to_string();
    let threads = deepnote_core::parallel::pool_width();
    let (table_secs, campaign_secs) = if quick { (2, 20) } else { (5, 60) };

    eprintln!("perf: {threads} pool thread(s), {iters} iteration(s) per mode");
    eprintln!("perf: checking transfer-cache byte identity...");
    verify_cache_identity(campaign_secs.min(20))?;
    eprintln!("perf: cache-on and cache-off reports are byte-identical");

    let rows = vec![
        measure("tab1_range_matrix", iters, || {
            drop(range::table1(table_secs));
        }),
        measure("fig2_sweep", iters, || {
            drop(frequency::figure2(
                Distance::from_cm(1.0),
                &SweepPlan::paper_sweep(),
            ));
        }),
        measure("cluster_campaign_matrix", iters, || {
            for r in run_matrix(perf_campaign_configs(campaign_secs)) {
                r.expect("perf campaign run");
            }
        }),
    ];

    println!(
        "{:<24} {:>14} {:>14} {:>9}",
        "workload", "1 thread (ms)", "pool (ms)", "speedup"
    );
    for row in &rows {
        println!(
            "{:<24} {:>14.1} {:>14.1} {:>8.2}x",
            row.workload,
            row.baseline_median_ms,
            row.pool_median_ms,
            row.speedup()
        );
    }

    let body = rows
        .iter()
        .map(PerfRow::to_json)
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"schema\":\"deepnote-perf/1\",\"threads\":{threads},\"iterations\":{iters},\
         \"quick\":{quick},\"cache_identity\":\"ok\",\"workloads\":[{body}]}}\n"
    );
    std::fs::write(&json_path, json).map_err(|e| format!("writing {json_path}: {e}"))?;
    eprintln!("wrote perf report to {json_path}");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(cmd, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
