//! Service-level measurement: per-phase goodput, tail latency, and SLOs.
//!
//! Built on [`deepnote_sim::stats`]: each phase of the attack timeline
//! gets its own read/write [`Histogram`]s (p50/p99/p999 straight off the
//! log buckets) and counters, plus a coarse availability time series
//! sampled over fixed windows — the chart an operator would stare at
//! during the incident.

use deepnote_sim::{Histogram, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Counters and latency for one operation class (reads or writes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpClassMetrics {
    /// Operations issued.
    pub attempted: u64,
    /// Operations that reached quorum in time.
    pub ok: u64,
    /// Operations meeting the SLO (success within the latency bound).
    pub slo_ok: u64,
    /// Latency of every operation, microseconds.
    pub latency_us: Histogram,
}

impl Default for OpClassMetrics {
    fn default() -> Self {
        OpClassMetrics {
            attempted: 0,
            ok: 0,
            slo_ok: 0,
            latency_us: Histogram::new_latency(),
        }
    }
}

impl OpClassMetrics {
    /// Records one operation. An SLO pass requires *both* success and
    /// the latency bound, so `slo_ok <= ok <= attempted` always holds —
    /// a failed operation can never count toward the SLO, no matter how
    /// quickly it failed.
    pub fn record(&mut self, ok: bool, latency: SimDuration, slo: SimDuration) {
        self.attempted += 1;
        if ok {
            self.ok += 1;
            self.slo_ok += u64::from(latency <= slo);
        }
        self.latency_us.record(latency.as_nanos() as f64 / 1_000.0);
    }

    /// Fraction of attempts that succeeded (1.0 when idle).
    pub fn success_ratio(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.ok as f64 / self.attempted as f64
        }
    }

    /// Fraction of attempts meeting the SLO (1.0 when idle).
    pub fn slo_ratio(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.slo_ok as f64 / self.attempted as f64
        }
    }

    /// The `p`-th latency percentile in milliseconds, if any samples.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        self.latency_us.percentile(p).map(|us| us / 1_000.0)
    }
}

/// All measurements for one timeline phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Phase label from the timeline.
    pub label: String,
    /// Phase start on the cluster timeline.
    pub start: SimTime,
    /// Phase end on the cluster timeline.
    pub end: SimTime,
    /// Read-side counters.
    pub reads: OpClassMetrics,
    /// Write-side counters.
    pub writes: OpClassMetrics,
}

impl PhaseMetrics {
    /// Creates an empty phase record.
    pub fn new(label: impl Into<String>, start: SimTime, end: SimTime) -> Self {
        PhaseMetrics {
            label: label.into(),
            start,
            end,
            reads: OpClassMetrics::default(),
            writes: OpClassMetrics::default(),
        }
    }

    /// Successful operations per second of phase time.
    pub fn goodput_ops_per_s(&self) -> f64 {
        let secs = self.end.saturating_duration_since(self.start).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            (self.reads.ok + self.writes.ok) as f64 / secs
        }
    }

    /// Success ratio across both classes.
    pub fn success_ratio(&self) -> f64 {
        let attempted = self.reads.attempted + self.writes.attempted;
        if attempted == 0 {
            1.0
        } else {
            (self.reads.ok + self.writes.ok) as f64 / attempted as f64
        }
    }
}

/// Counters for the resilient client path ([`crate::client`]): how much
/// work retries, hedges, and breakers did on top of the raw quorum path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Client operations completed (after any retries/hedges).
    pub ops: u64,
    /// Quorum executions issued on the primary/retry path.
    pub attempts: u64,
    /// Retries issued after a failed attempt.
    pub retries: u64,
    /// Operations that failed at least once but ultimately succeeded.
    pub recovered_by_retry: u64,
    /// Hedge requests issued on slow reads.
    pub hedges: u64,
    /// Hedges that beat (or rescued) the primary request.
    pub hedges_won: u64,
    /// Circuit breakers tripped open.
    pub breaker_trips: u64,
    /// Replica dispatches suppressed by an open breaker.
    pub breaker_denied: u64,
    /// Operations abandoned because the deadline budget ran out.
    pub deadline_exhausted: u64,
}

/// One point of the availability time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilitySample {
    /// Window end, seconds from campaign start.
    pub at_s: f64,
    /// Success ratio over the window (1.0 when idle).
    pub ratio: f64,
    /// Operations attempted in the window.
    pub attempted: u64,
}

/// The campaign-wide measurement sink.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Per-phase breakdown, in timeline order.
    pub phases: Vec<PhaseMetrics>,
    /// Success ratio per sampling window.
    pub availability: Vec<AvailabilitySample>,
    /// Latency SLO used for `slo_ok`.
    pub slo_latency: SimDuration,
    window_ok: u64,
    window_attempted: u64,
    current_phase: usize,
}

impl ClusterMetrics {
    /// A sink with one record per timeline phase.
    pub fn new(phases: Vec<PhaseMetrics>, slo_latency: SimDuration) -> Self {
        assert!(!phases.is_empty(), "campaign needs at least one phase");
        ClusterMetrics {
            phases,
            availability: Vec::new(),
            slo_latency,
            window_ok: 0,
            window_attempted: 0,
            current_phase: 0,
        }
    }

    /// Switches attribution to phase `idx`.
    pub fn enter_phase(&mut self, idx: usize) {
        assert!(idx < self.phases.len());
        self.current_phase = idx;
    }

    /// The phase currently attributed to.
    pub fn current_phase(&self) -> &PhaseMetrics {
        &self.phases[self.current_phase]
    }

    /// Records one client operation into the current phase.
    pub fn record_op(&mut self, is_read: bool, ok: bool, latency: SimDuration) {
        let slo = self.slo_latency;
        let phase = &mut self.phases[self.current_phase];
        if is_read {
            phase.reads.record(ok, latency, slo);
        } else {
            phase.writes.record(ok, latency, slo);
        }
        self.window_attempted += 1;
        if ok {
            self.window_ok += 1;
        }
    }

    /// Closes the current sampling window at `now`.
    pub fn sample_availability(&mut self, now: SimTime) {
        let ratio = if self.window_attempted == 0 {
            1.0
        } else {
            self.window_ok as f64 / self.window_attempted as f64
        };
        self.availability.push(AvailabilitySample {
            at_s: now.as_secs_f64(),
            ratio,
            attempted: self.window_attempted,
        });
        self.window_ok = 0;
        self.window_attempted = 0;
    }

    /// The phase record labelled `label`, if present.
    pub fn phase(&self, label: &str) -> Option<&PhaseMetrics> {
        self.phases.iter().find(|p| p.label == label)
    }

    /// The worst availability sample that saw traffic.
    pub fn worst_availability(&self) -> Option<AvailabilitySample> {
        self.availability
            .iter()
            .filter(|s| s.attempted > 0)
            .cloned()
            .reduce(|a, b| if b.ratio < a.ratio { b } else { a })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phases() -> ClusterMetrics {
        ClusterMetrics::new(
            vec![
                PhaseMetrics::new("baseline", SimTime::ZERO, SimTime::from_secs(10)),
                PhaseMetrics::new("attack", SimTime::from_secs(10), SimTime::from_secs(20)),
            ],
            SimDuration::from_millis(100),
        )
    }

    #[test]
    fn ops_land_in_the_current_phase() {
        let mut m = two_phases();
        m.record_op(true, true, SimDuration::from_millis(2));
        m.enter_phase(1);
        m.record_op(false, false, SimDuration::from_millis(250));
        assert_eq!(m.phase("baseline").unwrap().reads.ok, 1);
        assert_eq!(m.phase("attack").unwrap().writes.attempted, 1);
        assert_eq!(m.phase("attack").unwrap().writes.ok, 0);
    }

    #[test]
    fn slo_requires_success_and_speed() {
        let mut c = OpClassMetrics::default();
        let slo = SimDuration::from_millis(100);
        c.record(true, SimDuration::from_millis(10), slo);
        c.record(true, SimDuration::from_millis(200), slo); // slow success
        c.record(false, SimDuration::from_millis(1), slo); // fast failure
        assert_eq!(c.attempted, 3);
        assert_eq!(c.ok, 2);
        assert_eq!(c.slo_ok, 1);
        assert!((c.success_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.slo_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn slo_ok_never_exceeds_ok() {
        // Regression: a fast failure must not count toward the SLO, so
        // `slo_ok <= ok <= attempted` holds after any op sequence.
        let mut c = OpClassMetrics::default();
        let slo = SimDuration::from_millis(50);
        for i in 0..200u64 {
            let ok = i % 3 != 0;
            let latency = SimDuration::from_millis((i * 7) % 120);
            c.record(ok, latency, slo);
            assert!(
                c.slo_ok <= c.ok && c.ok <= c.attempted,
                "after op {i}: slo_ok={} ok={} attempted={}",
                c.slo_ok,
                c.ok,
                c.attempted
            );
        }
        assert!(c.slo_ok > 0, "sequence should contain SLO passes");
        assert!(c.ok < c.attempted, "sequence should contain failures");
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let mut c = OpClassMetrics::default();
        let slo = SimDuration::from_millis(100);
        for ms in 1..=100u64 {
            c.record(true, SimDuration::from_millis(ms), slo);
        }
        let p50 = c.percentile_ms(50.0).unwrap();
        let p99 = c.percentile_ms(99.0).unwrap();
        assert!((40.0..70.0).contains(&p50), "p50={p50}");
        assert!(p99 >= p50);
    }

    #[test]
    fn availability_windows_reset() {
        let mut m = two_phases();
        m.record_op(true, true, SimDuration::from_millis(1));
        m.record_op(true, false, SimDuration::from_millis(1));
        m.sample_availability(SimTime::from_secs(5));
        m.record_op(true, true, SimDuration::from_millis(1));
        m.sample_availability(SimTime::from_secs(10));
        // An idle window reads as fully available.
        m.sample_availability(SimTime::from_secs(15));
        assert_eq!(m.availability.len(), 3);
        assert!((m.availability[0].ratio - 0.5).abs() < 1e-12);
        assert!((m.availability[1].ratio - 1.0).abs() < 1e-12);
        assert_eq!(m.availability[2].attempted, 0);
        let worst = m.worst_availability().unwrap();
        assert!((worst.ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn goodput_uses_phase_duration() {
        let mut m = two_phases();
        for _ in 0..50 {
            m.record_op(true, true, SimDuration::from_millis(1));
        }
        let p = m.phase("baseline").unwrap();
        assert!((p.goodput_ops_per_s() - 5.0).abs() < 1e-9);
        assert!((p.success_ratio() - 1.0).abs() < 1e-12);
    }
}
