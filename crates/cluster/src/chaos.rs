//! Campaign-level chaos profiles: what dirty failures a run injects.
//!
//! A [`ChaosProfile`] bundles the device-level [`ChaosPlan`] every
//! node's drive is wrapped in with the node-level *silent corruption*
//! rates. The split matters: the KV store below us checksums its own
//! records, so a bit flipped at the block layer is **detected** there
//! and surfaces as a read error — nasty, but not silent. The corruption
//! that defeats layer-local checksums is the end-to-end kind: a replica
//! that durably stores the *wrong value* (a buggy buffer, a stray DMA,
//! a torn application write), which its own storage stack then
//! faithfully checksums and protects. Node-level flips model exactly
//! that, and only the cluster's end-to-end checksums
//! ([`crate::integrity`]) can catch them.
//!
//! Profiles are seeded like everything else: the campaign forks one RNG
//! stream per node off a chaos-dedicated root, so the same seed injects
//! the same faults at the same points in the request sequence.

use deepnote_blockdev::{ChaosPlan, DelayPlan, ErrorBurst, FaultScope, IoError, EIO};
use deepnote_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Everything chaotic about one campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Profile name, for reports and the CLI.
    pub label: String,
    /// Device-level plan every node's drive is wrapped in.
    pub device: ChaosPlan,
    /// Probability a preloaded replica record is silently corrupted
    /// (models bad state already resident when the campaign starts).
    pub preload_flip: f64,
    /// Probability a served write durably stores a flipped value.
    pub put_flip: f64,
    /// Probability a served read returns a transiently flipped value.
    pub get_flip: f64,
}

impl ChaosProfile {
    /// No chaos at all (the legacy clean-failure campaign).
    pub fn off() -> Self {
        ChaosProfile {
            label: "off".to_string(),
            device: ChaosPlan::quiet(),
            preload_flip: 0.0,
            put_flip: 0.0,
            get_flip: 0.0,
        }
    }

    /// Transient availability faults, no corruption: read-scoped medium
    /// error bursts plus occasional service-time inflation — the
    /// profile retries and hedges are built for.
    pub fn transient() -> Self {
        ChaosProfile {
            label: "transient".to_string(),
            device: ChaosPlan {
                bursts: vec![ErrorBurst {
                    enter_per_request: 0.004,
                    mean_burst: 12,
                    error: IoError::Medium { errno: EIO },
                    scope: FaultScope::Reads,
                }],
                // Well past the 250 ms quorum deadline: a hit replica
                // drags its whole busy window over the timeout, so ops
                // dispatched to it fail transiently instead of slowly.
                delay: Some(DelayPlan {
                    per_request: 0.03,
                    extra: SimDuration::from_millis(400),
                }),
                ..ChaosPlan::quiet()
            },
            preload_flip: 0.0,
            put_flip: 0.0,
            get_flip: 0.0,
        }
    }

    /// Silent corruption, no availability faults: some replicas start
    /// the campaign with corrupt records and keep corrupting a fraction
    /// of writes and reads — the profile end-to-end checksums, scrub,
    /// and read-repair are built for.
    pub fn corruption() -> Self {
        ChaosProfile {
            label: "corruption".to_string(),
            device: ChaosPlan::quiet(),
            preload_flip: 0.02,
            put_flip: 0.01,
            get_flip: 0.005,
        }
    }

    /// Everything at once, with device fault rates scaled by each
    /// drive's vibration level: the attack does not just crash nodes,
    /// it degrades the survivors.
    pub fn full() -> Self {
        let mut p = ChaosProfile::transient();
        p.label = "full".to_string();
        p.device.torn_write_per_request = 2e-4;
        p.device.misdirect_per_request = 1e-4;
        p.device.vibration_boost = 1.0;
        p.preload_flip = 0.01;
        p.put_flip = 0.005;
        p.get_flip = 0.002;
        p
    }

    /// Parses a CLI profile name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "off" | "none" => Some(Self::off()),
            "transient" => Some(Self::transient()),
            "corruption" => Some(Self::corruption()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// Whether this profile injects nothing.
    pub fn is_off(&self) -> bool {
        self.device.is_quiet()
            && self.preload_flip <= 0.0
            && self.put_flip <= 0.0
            && self.get_flip <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_off_and_presets_are_not() {
        assert!(ChaosProfile::off().is_off());
        for p in [
            ChaosProfile::transient(),
            ChaosProfile::corruption(),
            ChaosProfile::full(),
        ] {
            assert!(!p.is_off(), "{} is a no-op", p.label);
        }
    }

    #[test]
    fn parse_round_trips_the_labels() {
        for name in ["off", "transient", "corruption", "full"] {
            let p = ChaosProfile::parse(name).unwrap();
            assert_eq!(p.label, if name == "none" { "off" } else { name });
        }
        assert_eq!(ChaosProfile::parse("none").unwrap().label, "off");
        assert!(ChaosProfile::parse("cataclysm").is_none());
    }

    #[test]
    fn corruption_profile_has_no_device_faults() {
        // The silent-corruption duel must not crash engines: data loss
        // from blank-drive swaps would confound the integrity oracle.
        assert!(ChaosProfile::corruption().device.is_quiet());
    }
}
