//! Shard placement: key → shard → replica set, rack-aware.
//!
//! The cluster's data plane is a fixed keyspace hashed onto `num_shards`
//! shards; each shard is replicated on `replication` nodes. Where those
//! replicas physically sit decides whether the cluster survives an
//! acoustic attack: the paper's single-speaker adversary takes out one
//! enclosure column, so replicas that share a rack share a fate.
//!
//! Two policies are compared throughout the crate:
//!
//! * [`PlacementPolicy::CoLocated`] — all replicas of a shard in one
//!   rack (minimal inter-rack traffic, the naive layout);
//! * [`PlacementPolicy::Separated`] — one replica per rack, round-robin
//!   (acoustic fault domains, the defensive layout).

use deepnote_acoustics::Distance;
use serde::{Deserialize, Serialize};

/// Index of a node within the cluster.
pub type NodeId = usize;
/// Index of a shard within the keyspace.
pub type ShardId = usize;

/// How replicas of one shard relate acoustically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// All replicas of a shard live in the same rack.
    CoLocated,
    /// Replicas of a shard are spread across distinct racks.
    Separated,
}

impl PlacementPolicy {
    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::CoLocated => "co-located",
            PlacementPolicy::Separated => "separated",
        }
    }
}

/// One rack (enclosure column) of the physical layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSpec {
    /// Distance of the rack's nearest node from the attack point, cm.
    pub distance_cm: f64,
    /// Spacing between consecutive nodes within the rack, cm.
    pub spacing_cm: f64,
    /// Number of nodes in the rack.
    pub nodes: usize,
}

/// The physical topology: which rack each node sits in and how far each
/// node is from the sound source.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Rack index per node.
    pub node_rack: Vec<usize>,
    /// Distance from the attack point per node.
    pub node_distance: Vec<Distance>,
    /// Number of racks.
    pub racks: usize,
}

impl Topology {
    /// Lays out nodes rack by rack, assigning dense node ids.
    ///
    /// # Panics
    ///
    /// Panics if `racks` is empty or any rack has zero nodes.
    pub fn build(racks: &[RackSpec]) -> Self {
        assert!(!racks.is_empty(), "topology needs at least one rack");
        let mut node_rack = Vec::new();
        let mut node_distance = Vec::new();
        for (r, spec) in racks.iter().enumerate() {
            assert!(spec.nodes > 0, "rack {r} has no nodes");
            for i in 0..spec.nodes {
                node_rack.push(r);
                node_distance.push(Distance::from_cm(
                    spec.distance_cm + spec.spacing_cm * i as f64,
                ));
            }
        }
        Topology {
            node_rack,
            node_distance,
            racks: racks.len(),
        }
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> usize {
        self.node_rack.len()
    }

    /// Node ids in rack `r`, in id order.
    pub fn rack_members(&self, r: usize) -> Vec<NodeId> {
        (0..self.nodes())
            .filter(|&n| self.node_rack[n] == r)
            .collect()
    }
}

/// FNV-1a over the key bytes: stable, seed-free key → shard routing.
pub fn shard_of(key: &[u8], num_shards: usize) -> ShardId {
    assert!(num_shards > 0, "cluster needs at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % num_shards as u64) as usize
}

/// The replica assignment: for every shard, which nodes hold it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMap {
    replicas: Vec<Vec<NodeId>>,
}

impl ShardMap {
    /// Builds the initial assignment under `policy`.
    ///
    /// Co-located: shard `s` lives entirely in rack `s % racks`, on the
    /// `replication` round-robin members of that rack. Separated: shard
    /// `s` takes one node from each of `replication` consecutive racks.
    ///
    /// # Panics
    ///
    /// Panics if the topology cannot satisfy the policy (`replication`
    /// exceeds the rack size for co-located, or the rack count for
    /// separated).
    pub fn build(
        topo: &Topology,
        num_shards: usize,
        replication: usize,
        policy: PlacementPolicy,
    ) -> Self {
        assert!(num_shards > 0 && replication > 0);
        let replicas = (0..num_shards)
            .map(|s| match policy {
                PlacementPolicy::CoLocated => {
                    let members = topo.rack_members(s % topo.racks);
                    assert!(
                        members.len() >= replication,
                        "rack too small for co-located replication {replication}"
                    );
                    (0..replication)
                        .map(|k| members[(s / topo.racks + k) % members.len()])
                        .collect()
                }
                PlacementPolicy::Separated => {
                    assert!(
                        topo.racks >= replication,
                        "need at least {replication} racks for separated placement"
                    );
                    (0..replication)
                        .map(|k| {
                            let members = topo.rack_members((s + k) % topo.racks);
                            members[s % members.len()]
                        })
                        .collect()
                }
            })
            .collect();
        ShardMap { replicas }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.replicas.len()
    }

    /// The replica set of `shard`.
    pub fn replicas(&self, shard: ShardId) -> &[NodeId] {
        &self.replicas[shard]
    }

    /// Shards that have a replica on `node`.
    pub fn shards_on(&self, node: NodeId) -> Vec<ShardId> {
        (0..self.replicas.len())
            .filter(|&s| self.replicas[s].contains(&node))
            .collect()
    }

    /// Replaces `old` with `new` in `shard`'s replica set (failover).
    ///
    /// Returns `false` (and leaves the set untouched) if `old` is not a
    /// replica or `new` already is — both indicate a stale failover
    /// decision and are debug-asserted, but the shard map stays
    /// consistent either way.
    #[must_use]
    pub fn reassign(&mut self, shard: ShardId, old: NodeId, new: NodeId) -> bool {
        let set = &mut self.replicas[shard];
        if set.contains(&new) {
            debug_assert!(false, "node {new} already replicates shard {shard}");
            return false;
        }
        let Some(slot) = set.iter().position(|&n| n == old) else {
            debug_assert!(
                false,
                "reassign of a non-replica (shard {shard}, node {old})"
            );
            return false;
        };
        set[slot] = new;
        true
    }

    /// Picks a failover target for `shard` replacing `old`: a healthy
    /// node that does not already hold the shard, preferring a rack not
    /// yet represented in the replica set (keeps the separated property
    /// when possible) and, among eligible nodes, the least-loaded one so
    /// repair traffic spreads instead of piling onto the first survivor.
    /// Returns `None` if no healthy candidate exists.
    pub fn failover_target(
        &self,
        shard: ShardId,
        old: NodeId,
        topo: &Topology,
        healthy: &[bool],
    ) -> Option<NodeId> {
        let set = self.replicas(shard);
        let used_racks: Vec<usize> = set
            .iter()
            .filter(|&&n| n != old)
            .map(|&n| topo.node_rack[n])
            .collect();
        let load: Vec<usize> = (0..topo.nodes()).map(|n| self.shards_on(n).len()).collect();
        let candidate = |diverse: bool| {
            (0..topo.nodes())
                .filter(|&n| {
                    healthy[n]
                        && !set.contains(&n)
                        && (!diverse || !used_racks.contains(&topo.node_rack[n]))
                })
                .min_by_key(|&n| (load[n], n))
        };
        candidate(true).or_else(|| candidate(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_racks() -> Topology {
        Topology::build(&[
            RackSpec {
                distance_cm: 1.0,
                spacing_cm: 1.0,
                nodes: 3,
            },
            RackSpec {
                distance_cm: 60.0,
                spacing_cm: 1.0,
                nodes: 3,
            },
            RackSpec {
                distance_cm: 120.0,
                spacing_cm: 1.0,
                nodes: 3,
            },
        ])
    }

    #[test]
    fn topology_assigns_racks_and_distances() {
        let t = three_racks();
        assert_eq!(t.nodes(), 9);
        assert_eq!(t.node_rack[0], 0);
        assert_eq!(t.node_rack[8], 2);
        assert_eq!(t.rack_members(1), vec![3, 4, 5]);
        assert!((t.node_distance[4].cm() - 61.0).abs() < 1e-9);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let a = shard_of(b"0000000000000042", 12);
        assert_eq!(a, shard_of(b"0000000000000042", 12));
        for i in 0..100u64 {
            let k = format!("{i:016}");
            assert!(shard_of(k.as_bytes(), 12) < 12);
        }
    }

    #[test]
    fn shard_of_spreads_keys() {
        let mut counts = vec![0usize; 8];
        for i in 0..4000u64 {
            counts[shard_of(format!("{i:016}").as_bytes(), 8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 250), "skewed: {counts:?}");
    }

    #[test]
    fn colocated_replicas_share_a_rack() {
        let t = three_racks();
        let map = ShardMap::build(&t, 12, 3, PlacementPolicy::CoLocated);
        for s in 0..map.shards() {
            let racks: Vec<_> = map.replicas(s).iter().map(|&n| t.node_rack[n]).collect();
            assert!(
                racks.windows(2).all(|w| w[0] == w[1]),
                "shard {s}: {racks:?}"
            );
        }
    }

    #[test]
    fn separated_replicas_span_racks() {
        let t = three_racks();
        let map = ShardMap::build(&t, 12, 3, PlacementPolicy::Separated);
        for s in 0..map.shards() {
            let mut racks: Vec<_> = map.replicas(s).iter().map(|&n| t.node_rack[n]).collect();
            racks.sort_unstable();
            racks.dedup();
            assert_eq!(racks.len(), 3, "shard {s} not rack-diverse");
        }
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let t = three_racks();
        for policy in [PlacementPolicy::CoLocated, PlacementPolicy::Separated] {
            let map = ShardMap::build(&t, 12, 3, policy);
            for s in 0..map.shards() {
                let mut set = map.replicas(s).to_vec();
                set.sort_unstable();
                set.dedup();
                assert_eq!(set.len(), 3, "{policy:?} shard {s} duplicates a node");
            }
        }
    }

    #[test]
    fn failover_prefers_rack_diversity() {
        let t = three_racks();
        let map = ShardMap::build(&t, 3, 2, PlacementPolicy::Separated);
        let old = map.replicas(0)[0];
        // Every node healthy except the failed one.
        let mut healthy = vec![true; t.nodes()];
        healthy[old] = false;
        let target = map.failover_target(0, old, &t, &healthy).unwrap();
        let surviving_rack = t.node_rack[map.replicas(0)[1]];
        assert_ne!(t.node_rack[target], surviving_rack);
    }

    #[test]
    fn failover_falls_back_when_no_diverse_rack_is_healthy() {
        let t = three_racks();
        let map = ShardMap::build(&t, 3, 2, PlacementPolicy::Separated);
        let set: Vec<_> = map.replicas(0).to_vec();
        let old = set[0];
        let surviving_rack = t.node_rack[set[1]];
        // Only the surviving replica's rack stays healthy.
        let healthy: Vec<bool> = (0..t.nodes())
            .map(|n| t.node_rack[n] == surviving_rack)
            .collect();
        let target = map.failover_target(0, old, &t, &healthy).unwrap();
        assert_eq!(t.node_rack[target], surviving_rack);
        assert!(!set.contains(&target));
    }

    #[test]
    fn reassign_swaps_membership() {
        let t = three_racks();
        let mut map = ShardMap::build(&t, 3, 2, PlacementPolicy::Separated);
        let old = map.replicas(1)[0];
        let healthy = vec![true; t.nodes()];
        let new = map.failover_target(1, old, &t, &healthy).unwrap();
        assert!(map.reassign(1, old, new));
        assert!(map.replicas(1).contains(&new));
        assert!(!map.replicas(1).contains(&old));
        assert!(map.shards_on(new).contains(&1));
    }
}
