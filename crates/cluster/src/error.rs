//! Cluster-level errors.
//!
//! The serving path itself never errors — a dead node is a simulation
//! *result*, reported through `ServiceResult` and the campaign metrics.
//! `ClusterError` covers the control-plane operations that must succeed
//! for a campaign to be meaningful at all: bringing nodes up and
//! provisioning the keyspace before the attack starts.

use deepnote_kv::DbError;
use std::fmt;

/// Errors raised while standing a cluster up.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Formatting or opening a node's fresh store failed during launch.
    NodeLaunch {
        /// Node that failed to come up.
        node: usize,
        /// The underlying store error.
        source: DbError,
    },
    /// A pre-campaign preload write or flush failed on a healthy node.
    Provision {
        /// Node that rejected the preload.
        node: usize,
        /// The underlying store error.
        source: DbError,
    },
    /// A control-plane operation addressed a node in the wrong lifecycle
    /// state (e.g. preloading a crashed node).
    NodeNotRunning {
        /// The misaddressed node.
        node: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NodeLaunch { node, source } => {
                write!(f, "node {node} failed to launch: {source}")
            }
            ClusterError::Provision { node, source } => {
                write!(f, "provisioning node {node} failed: {source}")
            }
            ClusterError::NodeNotRunning { node } => {
                write!(f, "node {node} is not running")
            }
        }
    }
}

impl std::error::Error for ClusterError {}
