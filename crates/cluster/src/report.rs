//! Campaign results, their human-readable rendering, and a dependency-
//! free JSON serialization for machine consumers (CI artifacts).

use crate::integrity::{IntegrityStats, ScrubStats};
use crate::metrics::{ClusterMetrics, OpClassMetrics, ResilienceStats};
use crate::node::NodeCounters;
use crate::placement::PlacementPolicy;
use crate::replication::RepairStats;
use deepnote_blockdev::{ChaosEvent, ChaosStats};
use deepnote_telemetry::{MetricSeries, SloAlert, TraceLog};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The incident-detection headline: which replica degraded first and
/// how much warning the burn-rate alerts gave before quorum loss.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EarlyWarning {
    /// First node the health monitor marked down: `(node, seconds)`.
    pub first_node_down: Option<(usize, f64)>,
    /// When the first burn-rate alert raised, in campaign seconds.
    pub first_alert_s: Option<f64>,
    /// First availability sample that found shards below write quorum.
    pub quorum_loss_s: Option<f64>,
}

impl EarlyWarning {
    /// Seconds of warning the alerts gave before quorum loss; negative
    /// when the alert only raised after shards were already lost.
    pub fn lead_time_s(&self) -> Option<f64> {
        match (self.first_alert_s, self.quorum_loss_s) {
            (Some(alert), Some(loss)) => Some(loss - alert),
            _ => None,
        }
    }
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Run label (usually the placement policy).
    pub label: String,
    /// Placement policy the cluster ran under.
    pub placement: PlacementPolicy,
    /// Root RNG seed.
    pub seed: u64,
    /// Per-phase service metrics and the availability series.
    pub metrics: ClusterMetrics,
    /// Re-replication totals.
    pub repair: RepairStats,
    /// Lifecycle counters per node, in node-id order.
    pub node_counters: Vec<NodeCounters>,
    /// Shard failovers executed.
    pub failovers: u64,
    /// Worst concurrently-unavailable shard count seen per phase.
    pub max_unavailable_by_phase: Vec<usize>,
    /// Shards still below write quorum when the campaign ended.
    pub final_unavailable_shards: usize,
    /// Control-plane event log.
    pub events: Vec<String>,
    /// Resilient-client counters, when the campaign ran one.
    pub resilience: Option<ResilienceStats>,
    /// End-to-end integrity outcomes (checksum detections, read repairs,
    /// oracle verdicts).
    pub integrity: IntegrityStats,
    /// Background scrubber totals.
    pub scrub: ScrubStats,
    /// Per-device fault-injection counters, in node-id order.
    pub chaos: Vec<ChaosStats>,
    /// Per-device fault traces, in request order (bounded per device).
    pub fault_traces: Vec<Vec<ChaosEvent>>,
    /// Repair jobs still queued when the campaign ended.
    pub pending_repairs: usize,
    /// SLO burn-rate alert transitions, in time order.
    pub alerts: Vec<SloAlert>,
    /// Scraped metric series (empty unless the campaign configured a
    /// metrics interval).
    pub series: Vec<MetricSeries>,
    /// Who degraded first, and the alert lead time before quorum loss.
    pub early_warning: EarlyWarning,
    /// Raw cross-layer trace when tracing was enabled. Exported
    /// separately (Chrome trace-event JSON); deliberately excluded from
    /// [`render`](Self::render) and [`to_json`](Self::to_json) so that
    /// enabling tracing never changes either output.
    pub trace: Option<TraceLog>,
}

impl CampaignReport {
    /// Total engine crashes across the cluster.
    pub fn total_crashes(&self) -> u64 {
        self.node_counters.iter().map(|c| c.crashes).sum()
    }

    /// Total successful restarts across the cluster.
    pub fn total_restarts(&self) -> u64 {
        self.node_counters.iter().map(|c| c.restarts).sum()
    }

    /// The worst concurrently-unavailable shard count across all phases.
    pub fn worst_unavailable_shards(&self) -> usize {
        self.max_unavailable_by_phase
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Device fault-injection counters summed across all nodes.
    pub fn total_chaos(&self) -> ChaosStats {
        let mut sum = ChaosStats::default();
        for s in &self.chaos {
            sum.merge(s);
        }
        sum
    }

    /// Total device faults injected across the cluster.
    pub fn total_injected_faults(&self) -> u64 {
        self.total_chaos().total()
    }

    /// Renders the full report as fixed-width text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== campaign: {} (placement {}, seed {:#x}) ===",
            self.label,
            self.placement.label(),
            self.seed
        );
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>10} {:>7} {:>7} {:>9} {:>9} {:>9} {:>7}",
            "phase", "ops", "goodput/s", "ok%", "slo%", "r_p50ms", "r_p99ms", "w_p99ms", "unavail"
        );
        for (i, p) in self.metrics.phases.iter().enumerate() {
            let ops = p.reads.attempted + p.writes.attempted;
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>10.1} {:>6.1}% {:>6.1}% {:>9} {:>9} {:>9} {:>7}",
                p.label,
                ops,
                p.goodput_ops_per_s(),
                p.success_ratio() * 100.0,
                (p.reads.slo_ok + p.writes.slo_ok) as f64 / ops.max(1) as f64 * 100.0,
                fmt_ms(p.reads.percentile_ms(50.0)),
                fmt_ms(p.reads.percentile_ms(99.0)),
                fmt_ms(p.writes.percentile_ms(99.0)),
                self.max_unavailable_by_phase.get(i).copied().unwrap_or(0),
            );
        }
        if let Some(worst) = self.metrics.worst_availability() {
            let _ = writeln!(
                out,
                "worst availability window: {:.1}% at t={:.0}s ({} ops)",
                worst.ratio * 100.0,
                worst.at_s,
                worst.attempted
            );
        }
        let _ = writeln!(
            out,
            "nodes: {} crashes, {} restarts; {} failovers; repairs: {} jobs, {} keys, {} bytes, {} copy failures",
            self.total_crashes(),
            self.total_restarts(),
            self.failovers,
            self.repair.jobs_done,
            self.repair.keys_copied,
            self.repair.bytes_copied,
            self.repair.copy_failures
        );
        let chaos = self.total_chaos();
        if chaos.total() > 0 {
            let _ = writeln!(
                out,
                "chaos: {} device faults injected ({} burst errors, {} drops, {} delays, {} read flips, {} write flips, {} torn, {} misdirected)",
                chaos.total(),
                chaos.burst_errors,
                chaos.burst_drops,
                chaos.delays,
                chaos.read_flips,
                chaos.write_flips,
                chaos.torn_writes,
                chaos.misdirected_writes
            );
        }
        let (cw, cr) = self.node_counters.iter().fold((0u64, 0u64), |(w, r), c| {
            (w + c.corrupted_writes, r + c.corrupted_reads)
        });
        if cw + cr > 0 {
            let _ = writeln!(
                out,
                "data-path corruption injected: {cw} durable write flips, {cr} transient read flips"
            );
        }
        let ig = &self.integrity;
        if ig.corrupt_acks + ig.read_repairs + ig.unserveable_reads + ig.oracle_checked > 0 {
            let _ = writeln!(
                out,
                "integrity: {} corrupt acks rejected, {} read repairs ({} failed), {} unserveable reads; oracle: {} checked, {} wrong",
                ig.corrupt_acks,
                ig.read_repairs,
                ig.read_repair_failures,
                ig.unserveable_reads,
                ig.oracle_checked,
                ig.oracle_wrong
            );
        }
        if self.scrub.keys_scanned > 0 {
            let _ = writeln!(
                out,
                "scrub: {} keys scanned over {} passes, {} replicas read ({} bytes), {} corrupt + {} missing found, {} repairs enqueued",
                self.scrub.keys_scanned,
                self.scrub.passes,
                self.scrub.replicas_read,
                self.scrub.bytes_read,
                self.scrub.corrupt_found,
                self.scrub.missing_found,
                self.scrub.repairs_enqueued
            );
        }
        if let Some(rs) = &self.resilience {
            let _ = writeln!(
                out,
                "client: {} ops in {} attempts, {} retries ({} recovered), {} hedges ({} won), {} breaker trips ({} dispatches denied), {} deadline-exhausted",
                rs.ops,
                rs.attempts,
                rs.retries,
                rs.recovered_by_retry,
                rs.hedges,
                rs.hedges_won,
                rs.breaker_trips,
                rs.breaker_denied,
                rs.deadline_exhausted
            );
        }
        if self.pending_repairs > 0 {
            let _ = writeln!(out, "repair jobs still pending: {}", self.pending_repairs);
        }
        let _ = writeln!(
            out,
            "shards below write quorum at campaign end: {}",
            self.final_unavailable_shards
        );
        if !self.series.is_empty() {
            let points: usize = self.series.iter().map(|s| s.points.len()).sum();
            let _ = writeln!(
                out,
                "metrics: {} series scraped, {points} points",
                self.series.len()
            );
        }
        if !self.alerts.is_empty() {
            let _ = writeln!(out, "--- slo burn-rate alerts ---");
            for a in &self.alerts {
                let _ = writeln!(
                    out,
                    "t={:7.1}s  {} {} (burn {:.1}x, errors {:.1}%, {} ops)",
                    a.at.as_secs_f64(),
                    a.window,
                    if a.raised { "RAISED" } else { "cleared" },
                    a.burn_rate,
                    a.error_ratio * 100.0,
                    a.ops
                );
            }
        }
        let ew = &self.early_warning;
        if let Some((node, at_s)) = ew.first_node_down {
            let _ = writeln!(
                out,
                "early warning: node {node} degraded first at t={at_s:.1}s"
            );
        }
        if let (Some(alert), Some(loss)) = (ew.first_alert_s, ew.quorum_loss_s) {
            let lead = loss - alert;
            if lead >= 0.0 {
                let _ = writeln!(
                    out,
                    "early warning: alert at t={alert:.1}s, quorum loss at t={loss:.1}s ({lead:.1}s of warning)"
                );
            } else {
                let _ = writeln!(
                    out,
                    "early warning: quorum loss at t={loss:.1}s preceded the first alert at t={alert:.1}s ({:.1}s late)",
                    -lead
                );
            }
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "--- control-plane events ---");
            for e in &self.events {
                let _ = writeln!(out, "{e}");
            }
        }
        out
    }

    /// Serializes the report as a JSON object with a stable key order,
    /// written by hand so machine consumers (CI artifacts, plotting
    /// scripts) need no extra dependencies on our side. Identical
    /// campaigns produce byte-identical JSON.
    pub fn to_json(&self) -> String {
        let mut j = String::with_capacity(4096);
        j.push('{');
        json_str(&mut j, "label", &self.label);
        j.push(',');
        json_str(&mut j, "placement", self.placement.label());
        j.push(',');
        let _ = write!(j, "\"seed\":{}", self.seed);
        j.push(',');
        j.push_str("\"phases\":[");
        for (i, p) in self.metrics.phases.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push('{');
            json_str(&mut j, "label", &p.label);
            let _ = write!(
                j,
                ",\"goodput_ops_per_s\":{},\"success_ratio\":{},\"max_unavailable\":{},",
                json_f64(p.goodput_ops_per_s()),
                json_f64(p.success_ratio()),
                self.max_unavailable_by_phase.get(i).copied().unwrap_or(0)
            );
            j.push_str("\"reads\":");
            json_op_class(&mut j, &p.reads);
            j.push_str(",\"writes\":");
            json_op_class(&mut j, &p.writes);
            j.push('}');
        }
        j.push_str("],\"availability\":[");
        for (i, s) in self.metrics.availability.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"at_s\":{},\"ratio\":{},\"attempted\":{}}}",
                json_f64(s.at_s),
                json_f64(s.ratio),
                s.attempted
            );
        }
        j.push_str("],\"nodes\":[");
        for (i, c) in self.node_counters.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"crashes\":{},\"restarts\":{},\"failed_restarts\":{},\"injected_faults\":{},\"corrupted_writes\":{},\"corrupted_reads\":{}}}",
                c.crashes, c.restarts, c.failed_restarts, c.injected_faults, c.corrupted_writes, c.corrupted_reads
            );
        }
        j.push_str("],\"chaos\":[");
        for (i, s) in self.chaos.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"burst_errors\":{},\"burst_drops\":{},\"delays\":{},\"delay_total_ms\":{},\"read_flips\":{},\"write_flips\":{},\"torn_writes\":{},\"misdirected_writes\":{}}}",
                s.burst_errors,
                s.burst_drops,
                s.delays,
                json_f64(s.delay_total.as_nanos() as f64 / 1_000_000.0),
                s.read_flips,
                s.write_flips,
                s.torn_writes,
                s.misdirected_writes
            );
        }
        j.push_str("],\"fault_trace_lengths\":[");
        for (i, t) in self.fault_traces.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(j, "{}", t.len());
        }
        let _ = write!(
            j,
            "],\"repair\":{{\"jobs_done\":{},\"keys_copied\":{},\"bytes_copied\":{},\"copy_failures\":{}}},\"pending_repairs\":{},\"failovers\":{},\"final_unavailable_shards\":{},\"worst_unavailable_shards\":{},",
            self.repair.jobs_done,
            self.repair.keys_copied,
            self.repair.bytes_copied,
            self.repair.copy_failures,
            self.pending_repairs,
            self.failovers,
            self.final_unavailable_shards,
            self.worst_unavailable_shards()
        );
        let ig = &self.integrity;
        let _ = write!(
            j,
            "\"integrity\":{{\"corrupt_acks\":{},\"read_repairs\":{},\"read_repair_failures\":{},\"unserveable_reads\":{},\"oracle_checked\":{},\"oracle_wrong\":{}}},",
            ig.corrupt_acks,
            ig.read_repairs,
            ig.read_repair_failures,
            ig.unserveable_reads,
            ig.oracle_checked,
            ig.oracle_wrong
        );
        let sc = &self.scrub;
        let _ = write!(
            j,
            "\"scrub\":{{\"keys_scanned\":{},\"replicas_read\":{},\"bytes_read\":{},\"corrupt_found\":{},\"missing_found\":{},\"repairs_enqueued\":{},\"passes\":{}}},",
            sc.keys_scanned,
            sc.replicas_read,
            sc.bytes_read,
            sc.corrupt_found,
            sc.missing_found,
            sc.repairs_enqueued,
            sc.passes
        );
        match &self.resilience {
            Some(rs) => {
                let _ = write!(
                    j,
                    "\"resilience\":{{\"ops\":{},\"attempts\":{},\"retries\":{},\"recovered_by_retry\":{},\"hedges\":{},\"hedges_won\":{},\"breaker_trips\":{},\"breaker_denied\":{},\"deadline_exhausted\":{}}},",
                    rs.ops,
                    rs.attempts,
                    rs.retries,
                    rs.recovered_by_retry,
                    rs.hedges,
                    rs.hedges_won,
                    rs.breaker_trips,
                    rs.breaker_denied,
                    rs.deadline_exhausted
                );
            }
            None => j.push_str("\"resilience\":null,"),
        }
        j.push_str("\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"at_s\":{},\"window\":\"{}\",\"raised\":{},\"burn_rate\":{},\"error_ratio\":{},\"ops\":{}}}",
                json_f64(a.at.as_secs_f64()),
                a.window,
                a.raised,
                json_f64(a.burn_rate),
                json_f64(a.error_ratio),
                a.ops
            );
        }
        j.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            j.push('{');
            json_str(&mut j, "layer", s.layer.name());
            j.push(',');
            json_str(&mut j, "name", &s.name);
            j.push(',');
            json_str(&mut j, "kind", s.kind.name());
            j.push_str(",\"points\":[");
            for (k, p) in s.points.iter().enumerate() {
                if k > 0 {
                    j.push(',');
                }
                let _ = write!(
                    j,
                    "{{\"at_s\":{},\"value\":{}}}",
                    json_f64(p.at.as_secs_f64()),
                    json_f64(p.value)
                );
            }
            j.push_str("]}");
        }
        let ew = &self.early_warning;
        let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), json_f64);
        j.push_str("],\"early_warning\":{\"first_node_down\":");
        match ew.first_node_down {
            Some((node, at_s)) => {
                let _ = write!(j, "{{\"node\":{node},\"at_s\":{}}}", json_f64(at_s));
            }
            None => j.push_str("null"),
        }
        let _ = write!(
            j,
            ",\"first_alert_s\":{},\"quorum_loss_s\":{},\"lead_time_s\":{}}},",
            opt(ew.first_alert_s),
            opt(ew.quorum_loss_s),
            opt(ew.lead_time_s())
        );
        j.push_str("\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            push_json_string(&mut j, e);
        }
        j.push_str("]}");
        j
    }
}

/// Writes `"key":"escaped value"`.
fn json_str(out: &mut String, key: &str, value: &str) {
    push_json_string(out, key);
    out.push(':');
    push_json_string(out, value);
}

/// Appends a JSON string literal with escaping.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A finite `f64` as a JSON number (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One op class as a JSON object (percentiles may be `null`).
fn json_op_class(out: &mut String, c: &OpClassMetrics) {
    let pct = |p: f64| {
        c.percentile_ms(p)
            .map_or_else(|| "null".to_string(), json_f64)
    };
    let _ = write!(
        out,
        "{{\"attempted\":{},\"ok\":{},\"slo_ok\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
        c.attempted,
        c.ok,
        c.slo_ok,
        pct(50.0),
        pct(99.0)
    );
}

/// Renders several runs side by side: one availability row per run, then
/// each full report.
pub fn render_duel(reports: &[CampaignReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "run", "attack ok%", "recovery ok%", "crashes", "failovers", "unavail"
    );
    for r in reports {
        let ratio = |label: &str| {
            r.metrics
                .phase(label)
                .map(|p| format!("{:.1}%", p.success_ratio() * 100.0))
                .unwrap_or_else(|| "-".to_string())
        };
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>10} {:>10} {:>9}",
            r.label,
            ratio("attack"),
            ratio("recovery"),
            r.total_crashes(),
            r.failovers,
            r.worst_unavailable_shards(),
        );
    }
    for r in reports {
        let _ = writeln!(out);
        out.push_str(&r.render());
    }
    out
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.2}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PhaseMetrics;
    use deepnote_sim::{SimDuration, SimTime};

    fn tiny_report() -> CampaignReport {
        let mut metrics = ClusterMetrics::new(
            vec![
                PhaseMetrics::new("baseline", SimTime::ZERO, SimTime::from_secs(10)),
                PhaseMetrics::new("attack", SimTime::from_secs(10), SimTime::from_secs(20)),
            ],
            SimDuration::from_millis(50),
        );
        metrics.record_op(true, true, SimDuration::from_millis(2));
        metrics.enter_phase(1);
        metrics.record_op(false, false, SimDuration::from_millis(250));
        metrics.sample_availability(SimTime::from_secs(20));
        CampaignReport {
            label: "test".into(),
            placement: PlacementPolicy::Separated,
            seed: 7,
            metrics,
            repair: RepairStats::default(),
            node_counters: vec![
                NodeCounters {
                    crashes: 2,
                    restarts: 1,
                    failed_restarts: 3,
                    ..NodeCounters::default()
                },
                NodeCounters::default(),
            ],
            failovers: 4,
            max_unavailable_by_phase: vec![0, 3],
            final_unavailable_shards: 1,
            events: vec!["t=   12.0s  node 0 crashed".into()],
            resilience: None,
            integrity: IntegrityStats::default(),
            scrub: ScrubStats::default(),
            chaos: vec![ChaosStats::default(), ChaosStats::default()],
            fault_traces: vec![Vec::new(), Vec::new()],
            pending_repairs: 0,
            alerts: vec![SloAlert {
                at: SimTime::from_secs(12),
                window: "fast",
                raised: true,
                burn_rate: 25.0,
                error_ratio: 0.25,
                ops: 120,
            }],
            series: Vec::new(),
            early_warning: EarlyWarning {
                first_node_down: Some((0, 12.0)),
                first_alert_s: Some(12.0),
                quorum_loss_s: Some(15.0),
            },
            trace: None,
        }
    }

    #[test]
    fn totals_sum_over_nodes() {
        let r = tiny_report();
        assert_eq!(r.total_crashes(), 2);
        assert_eq!(r.total_restarts(), 1);
        assert_eq!(r.worst_unavailable_shards(), 3);
    }

    #[test]
    fn render_mentions_every_phase_and_the_events() {
        let text = tiny_report().render();
        assert!(text.contains("baseline"));
        assert!(text.contains("attack"));
        assert!(text.contains("4 failovers"));
        assert!(text.contains("node 0 crashed"));
    }

    #[test]
    fn json_has_stable_keys_and_escapes_strings() {
        let mut r = tiny_report();
        r.events.push("quote \" and\nnewline".into());
        let a = r.to_json();
        assert_eq!(a, r.to_json(), "serialization must be deterministic");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"label\":\"test\""));
        assert!(a.contains("\"placement\":\"separated\""));
        assert!(a.contains("\\\" and\\nnewline"));
        assert!(a.contains("\"resilience\":null"));
        assert!(a.contains("\"oracle_wrong\":0"));
        // The write phase had no successful ops: percentile present,
        // since attempts are recorded regardless of success.
        assert!(a.contains("\"p99_ms\":"));
    }

    #[test]
    fn render_only_mentions_chaos_when_faults_were_injected() {
        let mut r = tiny_report();
        assert!(!r.render().contains("chaos:"));
        r.chaos[0].read_flips = 5;
        let text = r.render();
        assert!(text.contains("chaos: 5 device faults injected"));
    }

    #[test]
    fn duel_table_has_one_row_per_run() {
        let text = render_duel(&[tiny_report(), tiny_report()]);
        assert!(text.lines().next().unwrap().contains("attack ok%"));
        assert_eq!(text.matches("=== campaign:").count(), 2);
    }
}
