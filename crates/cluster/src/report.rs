//! Campaign results and their human-readable rendering.

use crate::metrics::ClusterMetrics;
use crate::node::NodeCounters;
use crate::placement::PlacementPolicy;
use crate::replication::RepairStats;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Everything a finished campaign produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Run label (usually the placement policy).
    pub label: String,
    /// Placement policy the cluster ran under.
    pub placement: PlacementPolicy,
    /// Root RNG seed.
    pub seed: u64,
    /// Per-phase service metrics and the availability series.
    pub metrics: ClusterMetrics,
    /// Re-replication totals.
    pub repair: RepairStats,
    /// Lifecycle counters per node, in node-id order.
    pub node_counters: Vec<NodeCounters>,
    /// Shard failovers executed.
    pub failovers: u64,
    /// Worst concurrently-unavailable shard count seen per phase.
    pub max_unavailable_by_phase: Vec<usize>,
    /// Shards still below write quorum when the campaign ended.
    pub final_unavailable_shards: usize,
    /// Control-plane event log.
    pub events: Vec<String>,
}

impl CampaignReport {
    /// Total engine crashes across the cluster.
    pub fn total_crashes(&self) -> u64 {
        self.node_counters.iter().map(|c| c.crashes).sum()
    }

    /// Total successful restarts across the cluster.
    pub fn total_restarts(&self) -> u64 {
        self.node_counters.iter().map(|c| c.restarts).sum()
    }

    /// The worst concurrently-unavailable shard count across all phases.
    pub fn worst_unavailable_shards(&self) -> usize {
        self.max_unavailable_by_phase
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Renders the full report as fixed-width text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== campaign: {} (placement {}, seed {:#x}) ===",
            self.label,
            self.placement.label(),
            self.seed
        );
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>10} {:>7} {:>7} {:>9} {:>9} {:>9} {:>7}",
            "phase", "ops", "goodput/s", "ok%", "slo%", "r_p50ms", "r_p99ms", "w_p99ms", "unavail"
        );
        for (i, p) in self.metrics.phases.iter().enumerate() {
            let ops = p.reads.attempted + p.writes.attempted;
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>10.1} {:>6.1}% {:>6.1}% {:>9} {:>9} {:>9} {:>7}",
                p.label,
                ops,
                p.goodput_ops_per_s(),
                p.success_ratio() * 100.0,
                (p.reads.slo_ok + p.writes.slo_ok) as f64 / ops.max(1) as f64 * 100.0,
                fmt_ms(p.reads.percentile_ms(50.0)),
                fmt_ms(p.reads.percentile_ms(99.0)),
                fmt_ms(p.writes.percentile_ms(99.0)),
                self.max_unavailable_by_phase.get(i).copied().unwrap_or(0),
            );
        }
        if let Some(worst) = self.metrics.worst_availability() {
            let _ = writeln!(
                out,
                "worst availability window: {:.1}% at t={:.0}s ({} ops)",
                worst.ratio * 100.0,
                worst.at_s,
                worst.attempted
            );
        }
        let _ = writeln!(
            out,
            "nodes: {} crashes, {} restarts; {} failovers; repairs: {} jobs, {} keys, {} bytes, {} copy failures",
            self.total_crashes(),
            self.total_restarts(),
            self.failovers,
            self.repair.jobs_done,
            self.repair.keys_copied,
            self.repair.bytes_copied,
            self.repair.copy_failures
        );
        let _ = writeln!(
            out,
            "shards below write quorum at campaign end: {}",
            self.final_unavailable_shards
        );
        if !self.events.is_empty() {
            let _ = writeln!(out, "--- control-plane events ---");
            for e in &self.events {
                let _ = writeln!(out, "{e}");
            }
        }
        out
    }
}

/// Renders several runs side by side: one availability row per run, then
/// each full report.
pub fn render_duel(reports: &[CampaignReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "run", "attack ok%", "recovery ok%", "crashes", "failovers", "unavail"
    );
    for r in reports {
        let ratio = |label: &str| {
            r.metrics
                .phase(label)
                .map(|p| format!("{:.1}%", p.success_ratio() * 100.0))
                .unwrap_or_else(|| "-".to_string())
        };
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>10} {:>10} {:>9}",
            r.label,
            ratio("attack"),
            ratio("recovery"),
            r.total_crashes(),
            r.failovers,
            r.worst_unavailable_shards(),
        );
    }
    for r in reports {
        let _ = writeln!(out);
        out.push_str(&r.render());
    }
    out
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.2}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PhaseMetrics;
    use deepnote_sim::{SimDuration, SimTime};

    fn tiny_report() -> CampaignReport {
        let mut metrics = ClusterMetrics::new(
            vec![
                PhaseMetrics::new("baseline", SimTime::ZERO, SimTime::from_secs(10)),
                PhaseMetrics::new("attack", SimTime::from_secs(10), SimTime::from_secs(20)),
            ],
            SimDuration::from_millis(50),
        );
        metrics.record_op(true, true, SimDuration::from_millis(2));
        metrics.enter_phase(1);
        metrics.record_op(false, false, SimDuration::from_millis(250));
        metrics.sample_availability(SimTime::from_secs(20));
        CampaignReport {
            label: "test".into(),
            placement: PlacementPolicy::Separated,
            seed: 7,
            metrics,
            repair: RepairStats::default(),
            node_counters: vec![
                NodeCounters {
                    crashes: 2,
                    restarts: 1,
                    failed_restarts: 3,
                },
                NodeCounters::default(),
            ],
            failovers: 4,
            max_unavailable_by_phase: vec![0, 3],
            final_unavailable_shards: 1,
            events: vec!["t=   12.0s  node 0 crashed".into()],
        }
    }

    #[test]
    fn totals_sum_over_nodes() {
        let r = tiny_report();
        assert_eq!(r.total_crashes(), 2);
        assert_eq!(r.total_restarts(), 1);
        assert_eq!(r.worst_unavailable_shards(), 3);
    }

    #[test]
    fn render_mentions_every_phase_and_the_events() {
        let text = tiny_report().render();
        assert!(text.contains("baseline"));
        assert!(text.contains("attack"));
        assert!(text.contains("4 failovers"));
        assert!(text.contains("node 0 crashed"));
    }

    #[test]
    fn duel_table_has_one_row_per_run() {
        let text = render_duel(&[tiny_report(), tiny_report()]);
        assert!(text.lines().next().unwrap().contains("attack ok%"));
        assert_eq!(text.matches("=== campaign:").count(), 2);
    }
}
