//! The campaign driver: a deterministic event loop that runs an attack
//! timeline against a serving cluster.
//!
//! Six event streams interleave on one priority queue — phase changes,
//! heartbeat rounds, repair steps, scrub steps, availability samples,
//! and closed-loop client turns — ordered by `(time, stream priority,
//! insertion order)`, so a fixed seed replays the identical campaign
//! operation for operation. The sweep phase retunes the speaker at
//! heartbeat granularity; health probes, failover, and restarts all ride
//! the same heartbeat cadence a real control plane would use.
//!
//! A campaign can additionally run under a [`ChaosProfile`] (seeded
//! device and data-path fault injection), route every client operation
//! through a [`crate::client::ResilientClient`], and check each read
//! against the workload oracle — the ground-truth value the key was
//! provisioned with — to count end-to-end wrong answers.

use crate::chaos::ChaosProfile;
use crate::client::{ClientPolicy, ResilientClient};
use crate::cluster::{Cluster, ClusterConfig};
use crate::error::ClusterError;
use crate::integrity::IntegrityConfig;
use crate::metrics::{ClusterMetrics, PhaseMetrics};
use crate::placement::PlacementPolicy;
use crate::report::{CampaignReport, EarlyWarning};
use crate::timeline::AttackTimeline;
use crate::workload::{ClientPool, WorkloadSpec};
use deepnote_core::parallel::try_run_all;
use deepnote_sim::{SimDuration, SimRng, SimTime};
use deepnote_telemetry::{
    BurnRateMonitor, Layer, MetricId, MetricKind, MetricsRegistry, SloPolicy, Tracer, Value,
    CONTROL_TRACK,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Salt folded into the root seed for the chaos RNG tree, so adding
/// fault injection never perturbs the client streams of a chaos-free
/// run with the same seed.
const CHAOS_SALT: u64 = 0xC4A0_5EED_D15C_0DE5;

/// Salt folded into the root seed for the resilient client's RNG
/// (backoff jitter), independent of both workload and chaos streams.
const CLIENT_SALT: u64 = 0xBAC0_FF5A_17ED_B175;

/// Observability settings for one campaign run. Everything here is a
/// pure observer: enabling tracing or metrics scraping never changes
/// what the campaign does, only what it records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Record a cross-layer trace (spans and instants from every
    /// instrumented layer, exportable as Chrome trace-event JSON).
    pub trace: bool,
    /// Ring-buffer capacity for trace events; when full, the earliest
    /// window is kept and later events are counted as dropped.
    pub trace_cap: usize,
    /// Scrape the unified metrics registry at this fixed interval
    /// (`None` disables scraping; the report's series come out empty).
    pub metrics_interval: Option<SimDuration>,
    /// Burn-rate alerting policy for the SLO monitor (always on — the
    /// monitor only observes op outcomes the campaign already records).
    pub slo: SloPolicy,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            trace: false,
            trace_cap: 1 << 16,
            metrics_interval: None,
            slo: SloPolicy::default(),
        }
    }
}

/// Everything one campaign run needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Report label for this run.
    pub label: String,
    /// Cluster layout and policies.
    pub cluster: ClusterConfig,
    /// Client population.
    pub workload: WorkloadSpec,
    /// What the adversary transmits, and when.
    pub timeline: AttackTimeline,
    /// Latency bound counted as an SLO pass.
    pub slo_latency: SimDuration,
    /// Availability sampling window.
    pub sample_every: SimDuration,
    /// Interval between background repair steps.
    pub repair_every: SimDuration,
    /// Keys moved per repair step.
    pub repair_batch: usize,
    /// Seeded fault injection applied to every node.
    pub chaos: ChaosProfile,
    /// Route operations through the resilient client (`None` keeps the
    /// raw one-shot quorum path).
    pub client: Option<ClientPolicy>,
    /// Interval between background scrub steps (only runs when the
    /// cluster's integrity config enables scrubbing).
    pub scrub_every: SimDuration,
    /// Keys examined per scrub step.
    pub scrub_batch: usize,
    /// Check every successful read against the workload oracle and
    /// count wrong answers in the integrity stats.
    pub verify_responses: bool,
    /// Tracing, metrics scraping, and SLO alerting knobs.
    pub telemetry: TelemetryConfig,
    /// Precompute the acoustic transfer path for every tone the
    /// timeline can mount (on in every stock config). Pure performance:
    /// reports are byte-identical either way, enforced by test.
    pub transfer_cache: bool,
    /// Root RNG seed; fixes every client stream.
    pub seed: u64,
}

impl CampaignConfig {
    /// The paper-shaped duel run: the standard three-rack cluster under
    /// the given placement, serving the default workload through a
    /// baseline → sweep → `attack`-long 650 Hz tone → recovery timeline.
    pub fn paper_duel(placement: PlacementPolicy, attack: SimDuration) -> Self {
        CampaignConfig {
            label: placement.label().to_string(),
            cluster: ClusterConfig::three_racks(placement),
            workload: WorkloadSpec::default(),
            timeline: AttackTimeline::paper_campaign(attack),
            slo_latency: SimDuration::from_millis(50),
            sample_every: SimDuration::from_secs(5),
            repair_every: SimDuration::from_millis(200),
            repair_batch: 32,
            chaos: ChaosProfile::off(),
            client: None,
            scrub_every: SimDuration::from_millis(200),
            scrub_batch: 8,
            verify_responses: false,
            telemetry: TelemetryConfig::default(),
            transfer_cache: true,
            seed: deepnote_sim::rng::DEFAULT_SEED,
        }
    }

    /// A hardened-vs-naive duel under one chaos profile: the same
    /// placement, timeline, and faults, run twice — once with the full
    /// defense stack (end-to-end checksums, read repair, scrubbing, and
    /// the resilient client) and once with the bare one-shot quorum
    /// path. Both runs verify responses against the workload oracle, so
    /// the naive run *proves* it serves wrong answers while the
    /// hardened run proves it does not.
    pub fn chaos_pair(
        placement: PlacementPolicy,
        attack: SimDuration,
        chaos: &ChaosProfile,
    ) -> (Self, Self) {
        let mut hardened = Self::paper_duel(placement, attack);
        hardened.label = format!("{}+defenses", chaos.label);
        hardened.chaos = chaos.clone();
        hardened.cluster.integrity = IntegrityConfig::full();
        hardened.client = Some(ClientPolicy::standard());
        hardened.verify_responses = true;
        let mut naive = Self::paper_duel(placement, attack);
        naive.label = format!("{}+naive", chaos.label);
        naive.chaos = chaos.clone();
        naive.verify_responses = true;
        (hardened, naive)
    }
}

/// Event streams, in tie-break priority order at equal times: the phase
/// boundary applies before the heartbeat that would probe under it, and
/// control-plane work precedes client traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// Enter timeline phase `i`.
    PhaseChange(usize),
    /// Probe, restart, and failover round.
    Heartbeat,
    /// One bounded repair step.
    Repair,
    /// One bounded scrub step.
    Scrub,
    /// Close an availability window.
    Sample,
    /// Client `i` issues its next operation.
    Client(usize),
    /// Scrape the metrics registry (read-only; scheduled only when a
    /// metrics interval is configured, and runs after client traffic at
    /// equal times so the scrape sees the instant's final state).
    Scrape,
}

impl EvKind {
    fn priority(&self) -> u8 {
        match self {
            EvKind::PhaseChange(_) => 0,
            EvKind::Heartbeat => 1,
            EvKind::Repair => 2,
            EvKind::Scrub => 3,
            EvKind::Sample => 4,
            EvKind::Client(_) => 5,
            EvKind::Scrape => 6,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    at: SimTime,
    prio: u8,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.prio, self.seq).cmp(&(other.at, other.prio, other.seq))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct EventQueue {
    heap: BinaryHeap<Reverse<Ev>>,
    seq: u64,
}

impl EventQueue {
    /// Pre-sizes the heap for its steady-state population: recurring
    /// streams re-push themselves as they pop, so the live event count
    /// stays near the number of streams for the whole campaign and the
    /// heap never reallocates mid-loop.
    fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    fn push(&mut self, at: SimTime, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse(Ev {
            at,
            prio: kind.priority(),
            seq: self.seq,
            kind,
        }));
    }

    fn pop(&mut self) -> Option<Ev> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }
}

/// Metric handles for one node, one per instrumented layer.
struct NodeSeries {
    spl_db: MetricId,
    offtrack_nm: MetricId,
    seek_retries: MetricId,
    io_errors: MetricId,
    injected_faults: MetricId,
    wal_syncs: MetricId,
    flushes: MetricId,
    compactions: MetricId,
    journal_commits: MetricId,
    up: MetricId,
}

/// The unified registry plus every handle a campaign scrapes into it.
/// Scraping is strictly read-only: it probes node state and records
/// values, so enabling it cannot perturb the campaign.
struct Scraper {
    registry: MetricsRegistry,
    nodes: Vec<NodeSeries>,
    pending_repairs: MetricId,
    unavailable_shards: MetricId,
    failovers: MetricId,
    nodes_down: MetricId,
}

impl Scraper {
    fn new(num_nodes: usize) -> Self {
        let mut registry = MetricsRegistry::new();
        let nodes = (0..num_nodes)
            .map(|n| NodeSeries {
                spl_db: registry.register(
                    Layer::Acoustics,
                    format!("node{n}.spl_db"),
                    MetricKind::Gauge,
                ),
                offtrack_nm: registry.register(
                    Layer::Hdd,
                    format!("node{n}.offtrack_nm"),
                    MetricKind::Gauge,
                ),
                seek_retries: registry.register(
                    Layer::Hdd,
                    format!("node{n}.seek_retries"),
                    MetricKind::Counter,
                ),
                io_errors: registry.register(
                    Layer::Blockdev,
                    format!("node{n}.io_errors"),
                    MetricKind::Counter,
                ),
                injected_faults: registry.register(
                    Layer::Blockdev,
                    format!("node{n}.injected_faults"),
                    MetricKind::Counter,
                ),
                wal_syncs: registry.register(
                    Layer::Kv,
                    format!("node{n}.wal_syncs"),
                    MetricKind::Counter,
                ),
                flushes: registry.register(
                    Layer::Kv,
                    format!("node{n}.flushes"),
                    MetricKind::Counter,
                ),
                compactions: registry.register(
                    Layer::Kv,
                    format!("node{n}.compactions"),
                    MetricKind::Counter,
                ),
                journal_commits: registry.register(
                    Layer::Fs,
                    format!("node{n}.journal_commits"),
                    MetricKind::Counter,
                ),
                up: registry.register(Layer::Cluster, format!("node{n}.up"), MetricKind::Gauge),
            })
            .collect();
        let pending_repairs =
            registry.register(Layer::Cluster, "pending_repairs", MetricKind::Gauge);
        let unavailable_shards =
            registry.register(Layer::Cluster, "unavailable_shards", MetricKind::Gauge);
        let failovers = registry.register(Layer::Cluster, "failovers", MetricKind::Counter);
        let nodes_down = registry.register(Layer::Cluster, "nodes_down", MetricKind::Gauge);
        Scraper {
            registry,
            nodes,
            pending_repairs,
            unavailable_shards,
            failovers,
            nodes_down,
        }
    }

    /// One read-only pass over the whole cluster at `now`. Engine
    /// counters restart from zero after a reboot — visible as cliffs in
    /// the series, which is the point.
    fn scrape(&mut self, cluster: &Cluster, now: SimTime) {
        for (n, ids) in self.nodes.iter().enumerate() {
            let Some(node) = cluster.nodes().get(n) else {
                continue;
            };
            let p = node.probe();
            self.registry
                .record(ids.spl_db, now, cluster.received_spl_db(n));
            self.registry.record(ids.offtrack_nm, now, p.offtrack_nm);
            self.registry
                .record(ids.seek_retries, now, p.seek_retries as f64);
            self.registry.record(ids.io_errors, now, p.io_errors as f64);
            self.registry
                .record(ids.injected_faults, now, p.injected_faults as f64);
            self.registry.record(ids.wal_syncs, now, p.wal_syncs as f64);
            self.registry.record(ids.flushes, now, p.flushes as f64);
            self.registry
                .record(ids.compactions, now, p.compactions as f64);
            self.registry
                .record(ids.journal_commits, now, p.journal_commits as f64);
            self.registry
                .record(ids.up, now, if p.running { 1.0 } else { 0.0 });
        }
        let down = cluster.monitor().up_mask().iter().filter(|u| !**u).count();
        self.registry
            .record(self.pending_repairs, now, cluster.pending_repairs() as f64);
        self.registry.record(
            self.unavailable_shards,
            now,
            cluster.unavailable_shards(now) as f64,
        );
        self.registry
            .record(self.failovers, now, cluster.failovers() as f64);
        self.registry.record(self.nodes_down, now, down as f64);
    }
}

/// Runs one campaign to completion and reports.
///
/// # Errors
///
/// [`ClusterError`] if the cluster fails to launch or provision; the
/// campaign itself (attacks, crashes, failed quorums) never errors —
/// those are results, captured in the report.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignReport, ClusterError> {
    let spec = config.workload;
    let mut chaos_rng = SimRng::seeded(config.seed ^ CHAOS_SALT);
    let mut cluster = Cluster::with_chaos(config.cluster.clone(), &config.chaos, &mut chaos_rng)?;
    cluster.provision(&spec)?;
    if config.transfer_cache {
        // The driver only retunes at phase boundaries and heartbeats, so
        // the set of mountable tones is finite and known up front.
        cluster.precompute_transfer(
            &config
                .timeline
                .tone_frequencies(config.cluster.health.heartbeat_every),
        );
    }
    // Telemetry attaches after provisioning so preload traffic (off the
    // cluster timeline) never lands in the trace.
    let tracer = if config.telemetry.trace {
        Tracer::ring(config.telemetry.trace_cap)
    } else {
        Tracer::disabled()
    };
    cluster.set_tracer(tracer.clone());
    let mut burn = BurnRateMonitor::new(config.telemetry.slo);
    let mut scraper = config.telemetry.metrics_interval.map(|_| {
        let n = cluster.nodes().len();
        Scraper::new(n)
    });
    let mut first_quorum_loss: Option<SimTime> = None;
    let mut rng = SimRng::seeded(config.seed);
    let mut pool = ClientPool::new(&spec, &mut rng);
    let num_nodes = cluster.nodes().len();
    let mut driver = config.client.map(|policy| {
        ResilientClient::new(num_nodes, policy, SimRng::seeded(config.seed ^ CLIENT_SALT))
    });
    let mut oracle_checked = 0u64;
    let mut oracle_wrong = 0u64;

    let phase_records: Vec<PhaseMetrics> = config
        .timeline
        .phases()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let start = config.timeline.phase_start(i);
            PhaseMetrics::new(p.label.clone(), start, start + p.duration)
        })
        .collect();
    let mut metrics = ClusterMetrics::new(phase_records, config.slo_latency);
    let mut max_unavailable_by_phase = vec![0usize; config.timeline.phases().len()];

    let end = SimTime::ZERO + config.timeline.total();
    let heartbeat_every = config.cluster.health.heartbeat_every;
    // Steady-state queue population: every phase change plus one slot
    // per recurring stream (heartbeat, repair, scrub, sample, scrape)
    // and one per client.
    let mut q = EventQueue::with_capacity(config.timeline.phases().len() + 5 + pool.len());
    for i in 0..config.timeline.phases().len() {
        q.push(config.timeline.phase_start(i), EvKind::PhaseChange(i));
    }
    q.push(SimTime::ZERO, EvKind::Heartbeat);
    q.push(SimTime::ZERO + config.repair_every, EvKind::Repair);
    if config.cluster.integrity.scrub && config.cluster.integrity.checksums {
        q.push(SimTime::ZERO + config.scrub_every, EvKind::Scrub);
    }
    q.push(SimTime::ZERO + config.sample_every, EvKind::Sample);
    if config.telemetry.metrics_interval.is_some() {
        q.push(SimTime::ZERO, EvKind::Scrape);
    }
    for i in 0..pool.len() {
        q.push(pool.first_issue(i, &spec), EvKind::Client(i));
    }

    while let Some(ev) = q.pop() {
        if ev.at >= end {
            break;
        }
        match ev.kind {
            EvKind::PhaseChange(i) => {
                metrics.enter_phase(i);
                if let Some(p) = config.timeline.phases().get(i) {
                    if tracer.enabled(Layer::Cluster) {
                        tracer.span(
                            Layer::Cluster,
                            CONTROL_TRACK,
                            "phase",
                            ev.at,
                            p.duration,
                            vec![("label", Value::Text(p.label.clone()))],
                        );
                    }
                }
                cluster.set_attack(config.timeline.frequency_at(ev.at), ev.at);
            }
            EvKind::Heartbeat => {
                // Retune mid-sweep; a steady tone is a no-op here.
                cluster.set_attack(config.timeline.frequency_at(ev.at), ev.at);
                cluster.heartbeat(ev.at);
                q.push(ev.at + heartbeat_every, EvKind::Heartbeat);
            }
            EvKind::Repair => {
                cluster.repair_step(ev.at, config.repair_batch);
                q.push(ev.at + config.repair_every, EvKind::Repair);
            }
            EvKind::Scrub => {
                cluster.scrub_step(ev.at, config.scrub_batch);
                q.push(ev.at + config.scrub_every, EvKind::Scrub);
            }
            EvKind::Sample => {
                metrics.sample_availability(ev.at);
                let phase = config.timeline.phase_at(ev.at);
                let unavailable = cluster.unavailable_shards(ev.at);
                max_unavailable_by_phase[phase] = max_unavailable_by_phase[phase].max(unavailable);
                if unavailable > 0 && first_quorum_loss.is_none() {
                    first_quorum_loss = Some(ev.at);
                }
                burn.tick(ev.at);
                q.push(ev.at + config.sample_every, EvKind::Sample);
            }
            EvKind::Client(i) => {
                let op = pool.next_op(i, &spec);
                let key = spec.key(op.key_index);
                let value = spec.value(op.key_index);
                let (ok, latency, served) = match driver.as_mut() {
                    Some(client) => {
                        let out = client.execute(&mut cluster, op.is_read, &key, &value, ev.at);
                        (out.ok, out.latency, out.value)
                    }
                    None => {
                        let out = cluster.execute(op.is_read, &key, &value, ev.at);
                        (out.ok, out.latency, out.value)
                    }
                };
                if config.verify_responses && op.is_read && ok {
                    if let Some(got) = &served {
                        oracle_checked += 1;
                        if *got != value {
                            oracle_wrong += 1;
                        }
                    }
                }
                metrics.record_op(op.is_read, ok, latency);
                burn.record_op(ev.at + latency, ok);
                q.push(ev.at + latency + spec.think_time, EvKind::Client(i));
            }
            EvKind::Scrape => {
                if let Some(s) = scraper.as_mut() {
                    s.scrape(&cluster, ev.at);
                }
                if let Some(interval) = config.telemetry.metrics_interval {
                    q.push(ev.at + interval, EvKind::Scrape);
                }
            }
        }
    }
    metrics.sample_availability(end);
    let last_phase = config.timeline.phases().len() - 1;
    let final_unavailable = cluster.unavailable_shards(end);
    max_unavailable_by_phase[last_phase] =
        max_unavailable_by_phase[last_phase].max(final_unavailable);
    if final_unavailable > 0 && first_quorum_loss.is_none() {
        first_quorum_loss = Some(end);
    }
    burn.tick(end);
    if let Some(s) = scraper.as_mut() {
        s.scrape(&cluster, end);
    }

    cluster.record_oracle(oracle_checked, oracle_wrong);

    let early_warning = EarlyWarning {
        first_node_down: cluster.first_down().map(|(n, t)| (n, t.as_secs_f64())),
        first_alert_s: burn
            .alerts()
            .iter()
            .find(|a| a.raised)
            .map(|a| a.at.as_secs_f64()),
        quorum_loss_s: first_quorum_loss.map(|t| t.as_secs_f64()),
    };

    Ok(CampaignReport {
        label: config.label.clone(),
        placement: config.cluster.placement,
        seed: config.seed,
        metrics,
        repair: cluster.repair_stats(),
        node_counters: cluster.nodes().iter().map(|n| n.counters()).collect(),
        failovers: cluster.failovers(),
        max_unavailable_by_phase,
        final_unavailable_shards: cluster.unavailable_shards(end),
        events: cluster.events().to_vec(),
        resilience: driver.as_ref().map(ResilientClient::stats),
        integrity: cluster.integrity_stats(),
        scrub: cluster.scrub_stats(),
        chaos: cluster.chaos_stats(),
        fault_traces: cluster.fault_traces(),
        pending_repairs: cluster.pending_repairs(),
        alerts: burn.into_alerts(),
        series: scraper
            .map(|s| s.registry.into_series())
            .unwrap_or_default(),
        early_warning,
        trace: if tracer.is_enabled() {
            Some(tracer.take())
        } else {
            None
        },
    })
}

/// Runs a batch of campaigns on parallel OS threads (each is its own
/// virtual-time world); a panicking or erroring run surfaces as `Err`
/// without discarding its siblings.
pub fn run_matrix(configs: Vec<CampaignConfig>) -> Vec<Result<CampaignReport, String>> {
    try_run_all(
        configs
            .into_iter()
            .map(|c| move || run_campaign(&c))
            .collect::<Vec<_>>(),
    )
    .into_iter()
    .map(|r| match r {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(e)) => Err(e.to_string()),
        Err(panic) => Err(panic),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short campaign so unit tests stay fast: tiny keyspace, brisk
    /// phases, still long enough for the attack to kill the near rack.
    fn short_config(placement: PlacementPolicy) -> CampaignConfig {
        let mut c = CampaignConfig::paper_duel(placement, SimDuration::from_secs(30));
        c.workload.num_keys = 240;
        c.workload.clients = 4;
        c.timeline = AttackTimeline::new(vec![
            crate::timeline::Phase {
                label: "baseline".into(),
                duration: SimDuration::from_secs(5),
                load: crate::timeline::AttackLoad::Off,
            },
            crate::timeline::Phase {
                label: "attack".into(),
                duration: SimDuration::from_secs(30),
                load: crate::timeline::AttackLoad::Tone { hz: 650.0 },
            },
            crate::timeline::Phase {
                label: "recovery".into(),
                duration: SimDuration::from_secs(30),
                load: crate::timeline::AttackLoad::Off,
            },
        ]);
        c
    }

    #[test]
    fn baseline_phase_serves_cleanly() {
        let report = run_campaign(&short_config(PlacementPolicy::Separated)).expect("campaign");
        let baseline = report.metrics.phase("baseline").unwrap();
        assert!(
            baseline.success_ratio() > 0.99,
            "{}",
            baseline.success_ratio()
        );
        assert!(baseline.goodput_ops_per_s() > 1.0);
    }

    #[test]
    fn separated_placement_survives_what_colocated_does_not() {
        let sep = run_campaign(&short_config(PlacementPolicy::Separated)).expect("campaign");
        let col = run_campaign(&short_config(PlacementPolicy::CoLocated)).expect("campaign");
        let sep_attack = sep.metrics.phase("attack").unwrap().success_ratio();
        let col_attack = col.metrics.phase("attack").unwrap().success_ratio();
        assert!(
            sep_attack > col_attack,
            "separated {sep_attack} vs co-located {col_attack}"
        );
        assert_eq!(sep.worst_unavailable_shards(), 0, "{:#?}", sep.events);
        assert!(col.worst_unavailable_shards() > 0);
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let a = run_campaign(&short_config(PlacementPolicy::CoLocated)).expect("campaign");
        let b = run_campaign(&short_config(PlacementPolicy::CoLocated)).expect("campaign");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn matrix_runs_both_placements() {
        let results = run_matrix(vec![
            short_config(PlacementPolicy::Separated),
            short_config(PlacementPolicy::CoLocated),
        ]);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn transfer_cache_reports_are_byte_identical() {
        let cached = short_config(PlacementPolicy::CoLocated);
        assert!(cached.transfer_cache);
        let mut uncached = cached.clone();
        uncached.transfer_cache = false;
        let a = run_campaign(&cached).expect("cached campaign");
        let b = run_campaign(&uncached).expect("uncached campaign");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.events, b.events);
        assert_eq!(format!("{:?}", a.metrics), format!("{:?}", b.metrics));
    }

    #[test]
    fn single_thread_override_matches_parallel_matrix() {
        // Each campaign is an isolated virtual-time world, so the pool
        // width must not be able to change a single byte of any report.
        let configs = vec![
            short_config(PlacementPolicy::Separated),
            short_config(PlacementPolicy::CoLocated),
        ];
        let parallel = run_matrix(configs.clone());
        std::env::set_var(deepnote_core::parallel::THREADS_ENV, "1");
        let serial = run_matrix(configs);
        std::env::remove_var(deepnote_core::parallel::THREADS_ENV);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(serial.iter()) {
            let p = p.as_ref().expect("parallel run");
            let s = s.as_ref().expect("serial run");
            assert_eq!(p.render(), s.render());
            assert_eq!(p.events, s.events);
        }
    }
}
