//! The attack timeline: what the adversary transmits, and when.
//!
//! A campaign is a sequence of phases — quiet baseline, a frequency
//! sweep hunting for the vulnerable band (paper §4.1), a prolonged tone
//! on the best frequency (§4.4), and a quiet recovery window. The
//! timeline maps any cluster instant to the transmitted frequency (or
//! silence); the campaign driver re-applies it to every node's
//! vibration input as time advances.

use deepnote_acoustics::Frequency;
use deepnote_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What the speaker transmits during one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackLoad {
    /// Silence.
    Off,
    /// A steady tone.
    Tone {
        /// Tone frequency in Hz.
        hz: f64,
    },
    /// A linear frequency sweep across the phase.
    Sweep {
        /// Frequency at the phase start, Hz.
        start_hz: f64,
        /// Frequency at the phase end, Hz.
        end_hz: f64,
    },
}

/// One phase of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Label used for metrics attribution and reports.
    pub label: String,
    /// Phase length.
    pub duration: SimDuration,
    /// What the speaker does.
    pub load: AttackLoad,
}

/// The whole campaign schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackTimeline {
    phases: Vec<Phase>,
}

impl AttackTimeline {
    /// Builds a timeline from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero length.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "timeline needs at least one phase");
        assert!(
            phases.iter().all(|p| p.duration > SimDuration::ZERO),
            "phases must have positive length"
        );
        AttackTimeline { phases }
    }

    /// The paper-shaped campaign: baseline → sweep onto the vulnerable
    /// band → prolonged 650 Hz attack of `attack` length → recovery.
    pub fn paper_campaign(attack: SimDuration) -> Self {
        AttackTimeline::new(vec![
            Phase {
                label: "baseline".into(),
                duration: SimDuration::from_secs(15),
                load: AttackLoad::Off,
            },
            Phase {
                label: "sweep".into(),
                duration: SimDuration::from_secs(15),
                load: AttackLoad::Sweep {
                    start_hz: 100.0,
                    end_hz: 650.0,
                },
            },
            Phase {
                label: "attack".into(),
                duration: attack,
                load: AttackLoad::Tone { hz: 650.0 },
            },
            Phase {
                label: "recovery".into(),
                duration: SimDuration::from_secs(60),
                load: AttackLoad::Off,
            },
        ])
    }

    /// The phases in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Start instant of phase `idx`.
    pub fn phase_start(&self, idx: usize) -> SimTime {
        let nanos: u64 = self.phases[..idx]
            .iter()
            .map(|p| p.duration.as_nanos())
            .sum();
        SimTime::ZERO + SimDuration::from_nanos(nanos)
    }

    /// Total campaign length.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(self.phases.iter().map(|p| p.duration.as_nanos()).sum())
    }

    /// Index of the phase containing `now` (the last phase after the
    /// end).
    pub fn phase_at(&self, now: SimTime) -> usize {
        let mut start = SimTime::ZERO;
        for (i, p) in self.phases.iter().enumerate() {
            let end = start + p.duration;
            if now < end {
                return i;
            }
            start = end;
        }
        self.phases.len() - 1
    }

    /// Every frequency the campaign driver will ever mount when it
    /// re-applies this timeline at `step` granularity: the tone at each
    /// phase boundary plus at every `step` tick (the driver retunes on
    /// phase changes and heartbeats, never in between). This is the
    /// operating set a transfer-path cache precomputes at setup.
    /// Deduplicated bit-exactly, first occurrence kept.
    pub fn tone_frequencies(&self, step: SimDuration) -> Vec<Frequency> {
        let mut bits: Vec<u64> = Vec::new();
        let mut out: Vec<Frequency> = Vec::new();
        let mut push = |f: Option<Frequency>| {
            if let Some(f) = f {
                let b = f.hz().to_bits();
                if !bits.contains(&b) {
                    bits.push(b);
                    out.push(f);
                }
            }
        };
        for i in 0..self.phases.len() {
            push(self.frequency_at(self.phase_start(i)));
        }
        if step > SimDuration::ZERO {
            let end = SimTime::ZERO + self.total();
            let mut t = SimTime::ZERO;
            while t < end {
                push(self.frequency_at(t));
                t += step;
            }
        }
        out
    }

    /// The transmitted frequency at `now`, or `None` for silence.
    pub fn frequency_at(&self, now: SimTime) -> Option<Frequency> {
        let idx = self.phase_at(now);
        let phase = &self.phases[idx];
        match phase.load {
            AttackLoad::Off => None,
            AttackLoad::Tone { hz } => Some(Frequency::from_hz(hz)),
            AttackLoad::Sweep { start_hz, end_hz } => {
                let start = self.phase_start(idx);
                let progress = now.saturating_duration_since(start).as_secs_f64()
                    / phase.duration.as_secs_f64();
                let progress = progress.clamp(0.0, 1.0);
                Some(Frequency::from_hz(
                    start_hz + (end_hz - start_hz) * progress,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_shape() {
        let t = AttackTimeline::paper_campaign(SimDuration::from_secs(120));
        assert_eq!(t.phases().len(), 4);
        assert_eq!(t.total(), SimDuration::from_secs(15 + 15 + 120 + 60));
        assert_eq!(t.phase_start(2), SimTime::from_secs(30));
        assert_eq!(t.phase_at(SimTime::from_secs(0)), 0);
        assert_eq!(t.phase_at(SimTime::from_secs(29)), 1);
        assert_eq!(t.phase_at(SimTime::from_secs(30)), 2);
        assert_eq!(t.phase_at(SimTime::from_secs(10_000)), 3);
    }

    #[test]
    fn silence_during_baseline_and_recovery() {
        let t = AttackTimeline::paper_campaign(SimDuration::from_secs(120));
        assert_eq!(t.frequency_at(SimTime::from_secs(5)), None);
        assert_eq!(t.frequency_at(SimTime::from_secs(200)), None);
    }

    #[test]
    fn sweep_interpolates_onto_the_attack_tone() {
        let t = AttackTimeline::paper_campaign(SimDuration::from_secs(120));
        let early = t.frequency_at(SimTime::from_secs(15)).unwrap();
        let late = t
            .frequency_at(SimTime::from_secs(30) - SimDuration::from_nanos(1))
            .unwrap();
        assert!((early.hz() - 100.0).abs() < 1.0, "early={}", early.hz());
        assert!((late.hz() - 650.0).abs() < 1.0, "late={}", late.hz());
        let attack = t.frequency_at(SimTime::from_secs(60)).unwrap();
        assert_eq!(attack.hz(), 650.0);
    }

    #[test]
    fn tone_frequencies_cover_every_retune_instant() {
        let t = AttackTimeline::paper_campaign(SimDuration::from_secs(120));
        let step = SimDuration::from_millis(500);
        let freqs = t.tone_frequencies(step);
        // Every tone the driver will mount at phase starts or step
        // ticks is present bit-exactly.
        let end = SimTime::ZERO + t.total();
        let mut now = SimTime::ZERO;
        while now < end {
            if let Some(f) = t.frequency_at(now) {
                assert!(
                    freqs.iter().any(|g| g.hz().to_bits() == f.hz().to_bits()),
                    "missing tone {} Hz at t={now}",
                    f.hz()
                );
            }
            now += step;
        }
        // Steady tones dedup to one entry: the 650 Hz attack phase
        // contributes a single frequency despite hundreds of ticks.
        let at_650 = freqs
            .iter()
            .filter(|f| f.hz().to_bits() == 650.0f64.to_bits())
            .count();
        assert_eq!(at_650, 1);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_length_phase_rejected() {
        AttackTimeline::new(vec![Phase {
            label: "x".into(),
            duration: SimDuration::ZERO,
            load: AttackLoad::Off,
        }]);
    }
}
