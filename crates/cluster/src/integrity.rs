//! End-to-end integrity: cluster-level record checksums, read-repair
//! bookkeeping, and the background scrubber's cursor.
//!
//! Every layer below the cluster already checksums *its own* bytes (the
//! KV store guards records, the filesystem guards its journal), but a
//! replica that durably stores the wrong value — flipped before the
//! store saw it — passes every one of those checks. The classic
//! end-to-end argument applies: only a checksum computed next to the
//! client and verified next to the client catches it. [`seal`] appends
//! a 64-bit FNV-1a digest over `key ‖ value` to the stored bytes;
//! [`unseal`] verifies and strips it on the read path. Binding the key
//! into the digest also catches misdirected full records (a valid value
//! stored under the wrong key).
//!
//! The [`Scrubber`] is a resumable cursor over `shard × key` that the
//! campaign advances during idle ticks with a per-tick key budget, so
//! scrub bandwidth is bounded and accounted like any other traffic.

use crate::placement::NodeId;
use serde::{Deserialize, Serialize};

/// Bytes of checksum trailer appended by [`seal`].
pub const SEAL_BYTES: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(key: &[u8], value: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key.iter().chain(value.iter()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Appends the end-to-end checksum trailer to `value` for storage.
pub fn seal(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.len() + SEAL_BYTES);
    out.extend_from_slice(value);
    out.extend_from_slice(&fnv1a(key, value).to_le_bytes());
    out
}

/// Verifies a sealed record and returns the payload, or `None` if the
/// trailer is missing or does not match `key ‖ value`.
pub fn unseal<'a>(key: &[u8], sealed: &'a [u8]) -> Option<&'a [u8]> {
    if sealed.len() < SEAL_BYTES {
        return None;
    }
    let (value, trailer) = sealed.split_at(sealed.len() - SEAL_BYTES);
    let mut want = [0u8; SEAL_BYTES];
    want.copy_from_slice(trailer);
    (fnv1a(key, value).to_le_bytes() == want).then_some(value)
}

/// Whether a sealed record verifies against its key.
pub fn verify(key: &[u8], sealed: &[u8]) -> bool {
    unseal(key, sealed).is_some()
}

/// Which integrity machinery a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntegrityConfig {
    /// Seal values on write and verify every replica ack on read.
    pub checksums: bool,
    /// On a corrupt ack, rewrite the replica from a healthy copy inline.
    pub read_repair: bool,
    /// Run the background scrubber (requires `checksums`).
    pub scrub: bool,
}

impl IntegrityConfig {
    /// No end-to-end integrity (the legacy trusting cluster).
    pub fn off() -> Self {
        IntegrityConfig::default()
    }

    /// Checksums, read-repair, and scrubbing all on.
    pub fn full() -> Self {
        IntegrityConfig {
            checksums: true,
            read_repair: true,
            scrub: true,
        }
    }
}

/// Integrity outcomes observed on the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntegrityStats {
    /// Replica acks whose value failed verification.
    pub corrupt_acks: u64,
    /// Corrupt replicas rewritten inline from a healthy copy.
    pub read_repairs: u64,
    /// Inline rewrites that themselves failed.
    pub read_repair_failures: u64,
    /// Reads that acked a quorum but had no verifiable value to serve.
    pub unserveable_reads: u64,
    /// Responses checked against the workload oracle (campaign-level).
    pub oracle_checked: u64,
    /// Responses the oracle proved corrupt — the number the cluster
    /// actually served wrong.
    pub oracle_wrong: u64,
}

/// Scrubber work and findings counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScrubStats {
    /// Keys whose replica set was examined.
    pub keys_scanned: u64,
    /// Individual replica reads issued.
    pub replicas_read: u64,
    /// Payload bytes read while scrubbing (the bandwidth bill).
    pub bytes_read: u64,
    /// Replicas found holding a corrupt record.
    pub corrupt_found: u64,
    /// Replicas missing a record a sibling holds.
    pub missing_found: u64,
    /// Repair jobs enqueued for corrupt/missing replicas.
    pub repairs_enqueued: u64,
    /// Complete passes over the keyspace.
    pub passes: u64,
}

/// Resumable scrub cursor: the next `shard × key` to examine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Scrubber {
    /// Shard the cursor is in.
    pub shard: usize,
    /// Key index within the shard.
    pub key: usize,
    /// Work and findings so far.
    pub stats: ScrubStats,
}

impl Scrubber {
    /// Advances the cursor one key, wrapping shard and pass boundaries.
    /// `keys_in_shard` is the population of the *current* shard.
    pub fn advance(&mut self, keys_in_shard: usize, num_shards: usize) {
        self.key += 1;
        if self.key >= keys_in_shard {
            self.key = 0;
            self.shard += 1;
            if self.shard >= num_shards {
                self.shard = 0;
                self.stats.passes += 1;
            }
        }
    }

    /// Replica scan of one key: which replicas hold corrupt or missing
    /// copies, given each live replica's sealed read result.
    /// `None` entries are replicas that returned no record.
    pub fn classify(key: &[u8], reads: &[(NodeId, Option<Vec<u8>>)]) -> ScrubVerdict {
        let mut verdict = ScrubVerdict::default();
        for (node, value) in reads {
            match value {
                Some(v) if verify(key, v) => {
                    if verdict.healthy.is_none() {
                        verdict.healthy = Some(*node);
                    }
                }
                Some(_) => verdict.corrupt.push(*node),
                None => verdict.missing.push(*node),
            }
        }
        verdict
    }
}

/// Outcome of scrubbing one key's replica set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubVerdict {
    /// First replica holding a verified copy, if any.
    pub healthy: Option<NodeId>,
    /// Replicas holding a record that fails verification.
    pub corrupt: Vec<NodeId>,
    /// Replicas holding no record at all.
    pub missing: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let key = b"0000000000000042";
        let value = b"v000000000000042xxxx";
        let sealed = seal(key, value);
        assert_eq!(sealed.len(), value.len() + SEAL_BYTES);
        assert_eq!(unseal(key, &sealed), Some(&value[..]));
        assert!(verify(key, &sealed));
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let key = b"k";
        let sealed = seal(key, b"payload");
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    unseal(key, &bad).is_none(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn seal_binds_the_key() {
        let sealed = seal(b"key-a", b"value");
        assert!(verify(b"key-a", &sealed));
        assert!(!verify(b"key-b", &sealed), "misdirected record accepted");
    }

    #[test]
    fn short_records_are_rejected() {
        assert!(unseal(b"k", b"1234567").is_none());
        assert!(unseal(b"k", b"").is_none());
    }

    #[test]
    fn empty_value_seals() {
        let sealed = seal(b"k", b"");
        assert_eq!(unseal(b"k", &sealed), Some(&b""[..]));
    }

    #[test]
    fn scrubber_cursor_wraps_and_counts_passes() {
        let mut s = Scrubber::default();
        // Two shards of 2 keys each.
        for _ in 0..4 {
            s.advance(2, 2);
        }
        assert_eq!((s.shard, s.key), (0, 0));
        assert_eq!(s.stats.passes, 1);
    }

    #[test]
    fn classify_separates_healthy_corrupt_missing() {
        let key = b"k";
        let good = seal(key, b"value");
        let mut bad = good.clone();
        bad[0] ^= 0x80;
        let reads = vec![(2usize, Some(bad)), (5usize, Some(good)), (7usize, None)];
        let v = Scrubber::classify(key, &reads);
        assert_eq!(v.healthy, Some(5));
        assert_eq!(v.corrupt, vec![2]);
        assert_eq!(v.missing, vec![7]);
    }
}
