//! The resilient client path: deadlines, retries, hedges, breakers.
//!
//! The raw quorum coordinator ([`crate::cluster::Cluster::execute`])
//! gives one shot per operation; under transient fault bursts that
//! wastes successes that were one retry away. [`ResilientClient`] wraps
//! the same coordinator with the standard production defenses:
//!
//! * a per-request **deadline budget** the whole attempt chain must fit
//!   in;
//! * deterministic **exponential backoff** with seeded jitter between
//!   retries ([`backoff_delay`]);
//! * **hedged reads** — once enough read latencies are observed, a slow
//!   read is raced by a second request after a p99-derived delay;
//! * per-node **circuit breakers** ([`CircuitBreaker`]) that stop
//!   dispatching to replicas that keep failing and feed their verdicts
//!   to the cluster's [`crate::health::HealthMonitor`] through
//!   [`crate::cluster::Cluster::report_breaker_trip`].
//!
//! Everything is drawn from a forked [`SimRng`], so a campaign with a
//! resilient client is exactly as reproducible as one without.

use crate::cluster::Cluster;
use crate::metrics::ResilienceStats;
use deepnote_sim::{Histogram, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Per-node circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker refuses dispatches.
    pub open_for: SimDuration,
    /// Successes required in half-open before closing again.
    pub half_open_trials: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 4,
            open_for: SimDuration::from_secs(2),
            half_open_trials: 2,
        }
    }
}

/// A circuit breaker's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Dispatching normally, counting consecutive failures.
    Closed {
        /// Consecutive failures so far.
        failures: u32,
    },
    /// Refusing dispatches until the cooldown expires.
    Open {
        /// When the breaker transitions to half-open.
        until: SimTime,
    },
    /// Probing with real traffic, counting consecutive successes.
    HalfOpen {
        /// Consecutive successes so far.
        oks: u32,
    },
}

/// The classic closed → open → half-open state machine, per node.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed { failures: 0 },
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a dispatch to this node is allowed at `now`. An open
    /// breaker whose cooldown has expired moves to half-open and lets
    /// the request through as a trial.
    pub fn allows(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen { oks: 0 };
                true
            }
            BreakerState::Open { .. } => false,
            _ => true,
        }
    }

    /// Records one dispatch outcome at `now`; returns whether this
    /// outcome tripped the breaker open.
    pub fn record(&mut self, ok: bool, now: SimTime) -> bool {
        match (&mut self.state, ok) {
            (BreakerState::Closed { failures }, true) => {
                *failures = 0;
                false
            }
            (BreakerState::Closed { failures }, false) => {
                *failures += 1;
                if *failures >= self.config.failure_threshold {
                    self.trip(now);
                    true
                } else {
                    false
                }
            }
            (BreakerState::HalfOpen { oks }, true) => {
                *oks += 1;
                if *oks >= self.config.half_open_trials {
                    self.state = BreakerState::Closed { failures: 0 };
                }
                false
            }
            (BreakerState::HalfOpen { .. }, false) => {
                // The trial failed: straight back to open.
                self.trip(now);
                true
            }
            (BreakerState::Open { .. }, _) => false,
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open {
            until: now + self.config.open_for,
        };
        self.trips += 1;
    }
}

/// Client-side resilience policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientPolicy {
    /// Total per-request budget (attempts, backoffs, and hedges must
    /// all fit inside it).
    pub deadline: SimDuration,
    /// Retries after the first attempt.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a seeded
    /// factor drawn from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Hedge slow reads with a second request.
    pub hedge: bool,
    /// Observed read latencies needed before hedging activates.
    pub hedge_after_samples: u64,
    /// Floor for the p99-derived hedge delay.
    pub hedge_min: SimDuration,
    /// Per-node circuit breakers (`None` disables them).
    pub breakers: Option<BreakerConfig>,
}

impl ClientPolicy {
    /// The standard production-shaped policy.
    pub fn standard() -> Self {
        ClientPolicy {
            deadline: SimDuration::from_secs(2),
            max_retries: 3,
            backoff_base: SimDuration::from_millis(20),
            backoff_cap: SimDuration::from_millis(200),
            jitter: 0.5,
            hedge: true,
            hedge_after_samples: 64,
            hedge_min: SimDuration::from_millis(10),
            breakers: Some(BreakerConfig::default()),
        }
    }
}

/// The seeded backoff delay before retry number `attempt` (1-based):
/// exponential from `base`, capped, scaled by a jitter factor drawn
/// from `[1 - jitter, 1]`.
pub fn backoff_delay(policy: &ClientPolicy, attempt: u32, rng: &mut SimRng) -> SimDuration {
    let exp = policy
        .backoff_base
        .mul_f64(f64::from(1u32 << (attempt - 1).min(20)));
    let capped = exp.min(policy.backoff_cap);
    let jitter = policy.jitter.clamp(0.0, 1.0);
    if jitter <= 0.0 {
        return capped;
    }
    capped.mul_f64(1.0 - jitter * rng.unit_f64())
}

/// What the resilient path reports for one client operation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// Whether any attempt (or hedge) reached quorum in time.
    pub ok: bool,
    /// Latency from first dispatch to final completion.
    pub latency: SimDuration,
    /// Value served (reads).
    pub value: Option<Vec<u8>>,
    /// Retries issued beyond the first attempt.
    pub retries: u32,
}

/// The resilient driver: one per campaign, fronting every client.
#[derive(Debug)]
pub struct ResilientClient {
    policy: ClientPolicy,
    breakers: Vec<CircuitBreaker>,
    read_latency_us: Histogram,
    rng: SimRng,
    stats: ResilienceStats,
}

impl ResilientClient {
    /// A driver for a cluster of `nodes` nodes.
    pub fn new(nodes: usize, policy: ClientPolicy, rng: SimRng) -> Self {
        let breakers = policy
            .breakers
            .map(|cfg| vec![CircuitBreaker::new(cfg); nodes])
            .unwrap_or_default();
        ResilientClient {
            policy,
            breakers,
            read_latency_us: Histogram::new_latency(),
            rng,
            stats: ResilienceStats::default(),
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &ClientPolicy {
        &self.policy
    }

    /// Resilience counters so far.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// The hedge delay once enough read latencies are banked: the
    /// observed p99, floored at the policy minimum.
    fn hedge_delay(&self) -> Option<SimDuration> {
        if !self.policy.hedge || self.read_latency_us.count() < self.policy.hedge_after_samples {
            return None;
        }
        let p99_us = self.read_latency_us.percentile(99.0)?;
        let delay = SimDuration::from_millis_f64(p99_us / 1_000.0);
        Some(delay.max(self.policy.hedge_min))
    }

    /// The deny mask breakers impose at `t` (`None` when disabled or
    /// nothing is denied).
    fn denied_mask(&mut self, t: SimTime) -> Option<Vec<bool>> {
        if self.breakers.is_empty() {
            return None;
        }
        let mask: Vec<bool> = self.breakers.iter_mut().map(|b| !b.allows(t)).collect();
        let denied = mask.iter().filter(|&&d| d).count() as u64;
        if denied == 0 {
            return None;
        }
        self.stats.breaker_denied += denied;
        Some(mask)
    }

    /// Feeds one quorum outcome's per-replica replies to the breakers,
    /// reporting fresh trips to the cluster's health monitor.
    fn feed_breakers(
        &mut self,
        cluster: &mut Cluster,
        outcome: &crate::replication::QuorumOutcome,
    ) {
        if self.breakers.is_empty() {
            return;
        }
        for r in &outcome.replies {
            if self.breakers[r.node].record(r.ok, r.done) {
                self.stats.breaker_trips += 1;
                cluster.report_breaker_trip(r.node, r.done);
            }
        }
    }

    /// Executes one client operation with the full resilience stack.
    pub fn execute(
        &mut self,
        cluster: &mut Cluster,
        is_read: bool,
        key: &[u8],
        value: &[u8],
        at: SimTime,
    ) -> ClientOutcome {
        self.stats.ops += 1;
        let deadline = at + self.policy.deadline;
        let mut attempt: u32 = 0;
        let mut t = at;
        let mut failed_once = false;
        loop {
            self.stats.attempts += 1;
            let denied = self.denied_mask(t);
            let primary = cluster.execute_masked(is_read, key, value, t, denied.as_deref());
            self.feed_breakers(cluster, &primary);
            let mut ok = primary.ok;
            let mut done = t + primary.latency;
            let mut served = primary.value;
            // Hedge: if the primary ran longer than the p99-derived
            // delay, a second request would have been issued at
            // t + delay — race it and keep the earlier success.
            if is_read {
                if let Some(delay) = self.hedge_delay() {
                    if primary.latency > delay && t + delay < deadline {
                        self.stats.hedges += 1;
                        let hedge_at = t + delay;
                        let hedge = cluster.execute_masked(
                            is_read,
                            key,
                            value,
                            hedge_at,
                            denied.as_deref(),
                        );
                        self.feed_breakers(cluster, &hedge);
                        let hedge_done = hedge_at + hedge.latency;
                        if hedge.ok && (!ok || hedge_done < done) {
                            self.stats.hedges_won += 1;
                            done = if ok { done.min(hedge_done) } else { hedge_done };
                            served = hedge.value;
                            ok = true;
                        }
                    }
                }
            }
            if ok {
                if is_read {
                    let us = done.saturating_duration_since(t).as_nanos() as f64 / 1_000.0;
                    self.read_latency_us.record(us);
                }
                if failed_once {
                    self.stats.recovered_by_retry += 1;
                }
                return ClientOutcome {
                    ok: true,
                    latency: done.saturating_duration_since(at),
                    value: served,
                    retries: attempt,
                };
            }
            failed_once = true;
            attempt += 1;
            if attempt > self.policy.max_retries {
                return self.give_up(at, done, attempt - 1);
            }
            let next = done + backoff_delay(&self.policy, attempt, &mut self.rng);
            if next >= deadline {
                self.stats.deadline_exhausted += 1;
                return self.give_up(at, done, attempt - 1);
            }
            self.stats.retries += 1;
            t = next;
        }
    }

    fn give_up(&mut self, at: SimTime, done: SimTime, retries: u32) -> ClientOutcome {
        ClientOutcome {
            ok: false,
            latency: done.saturating_duration_since(at),
            value: None,
            retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ClientPolicy {
        ClientPolicy::standard()
    }

    #[test]
    fn backoff_doubles_and_caps_without_jitter() {
        let mut p = policy();
        p.jitter = 0.0;
        let mut rng = SimRng::seeded(1);
        let d1 = backoff_delay(&p, 1, &mut rng);
        let d2 = backoff_delay(&p, 2, &mut rng);
        let d3 = backoff_delay(&p, 3, &mut rng);
        let d5 = backoff_delay(&p, 5, &mut rng);
        assert_eq!(d1, SimDuration::from_millis(20));
        assert_eq!(d2, SimDuration::from_millis(40));
        assert_eq!(d3, SimDuration::from_millis(80));
        assert_eq!(d5, p.backoff_cap, "delay must cap at the ceiling");
    }

    #[test]
    fn backoff_jitter_stays_in_band_and_is_seeded() {
        let p = policy(); // jitter 0.5
        let mut rng = SimRng::seeded(9);
        for attempt in 1..=4 {
            let exp = p
                .backoff_base
                .mul_f64(f64::from(1u32 << (attempt - 1)))
                .min(p.backoff_cap);
            let d = backoff_delay(&p, attempt, &mut rng);
            assert!(d <= exp, "attempt {attempt}: {d:?} above nominal {exp:?}");
            assert!(
                d >= exp.mul_f64(0.5),
                "attempt {attempt}: {d:?} below jitter floor"
            );
        }
        // Same seed, same schedule.
        let a: Vec<_> = {
            let mut r = SimRng::seeded(77);
            (1..=4).map(|i| backoff_delay(&p, i, &mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = SimRng::seeded(77);
            (1..=4).map(|i| backoff_delay(&p, i, &mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn breaker_trips_after_threshold_and_cools_down() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            open_for: SimDuration::from_secs(1),
            half_open_trials: 2,
        };
        let mut b = CircuitBreaker::new(cfg);
        let t = SimTime::from_secs(10);
        assert!(b.allows(t));
        assert!(!b.record(false, t));
        assert!(!b.record(false, t));
        assert!(b.record(false, t), "third failure must trip");
        assert_eq!(b.trips(), 1);
        // Open: refuses until the cooldown expires.
        assert!(!b.allows(t + SimDuration::from_millis(500)));
        // Cooldown over: half-open lets a trial through.
        let t2 = t + SimDuration::from_secs(1);
        assert!(b.allows(t2));
        assert_eq!(b.state(), BreakerState::HalfOpen { oks: 0 });
        // Two successes close it.
        assert!(!b.record(true, t2));
        assert!(!b.record(true, t2));
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            open_for: SimDuration::from_secs(1),
            half_open_trials: 1,
        };
        let mut b = CircuitBreaker::new(cfg);
        let t = SimTime::from_secs(5);
        assert!(b.record(false, t));
        let t2 = t + SimDuration::from_secs(1);
        assert!(b.allows(t2));
        assert!(b.record(false, t2), "half-open failure must re-trip");
        assert_eq!(b.trips(), 2);
        assert!(!b.allows(t2 + SimDuration::from_millis(10)));
    }

    #[test]
    fn closed_breaker_success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        let t = SimTime::ZERO;
        for _ in 0..3 {
            b.record(false, t);
        }
        b.record(true, t);
        for _ in 0..3 {
            assert!(!b.record(false, t), "streak should have reset");
        }
    }
}
