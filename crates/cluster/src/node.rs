//! A storage node: one enclosure/drive/LSM stack at a tank position.
//!
//! Each node is its own virtual-time world — a private [`Clock`] driving
//! a [`HddDisk`] under a [`Db`] — embedded in the cluster's shared
//! timeline through `busy_until`: requests dispatched at cluster time `t`
//! start at `max(t, busy_until)`, take whatever the private clock says
//! the stack charged, and push `busy_until` forward. A node wedged in an
//! 81-second WAL-sync retry is therefore unresponsive on the cluster
//! timeline for 81 seconds, exactly like a real server with a blocked
//! fsync.
//!
//! Every drive sits behind a [`ChaosInjector`] (quiet by default), and
//! the node itself can silently corrupt values it stores or returns
//! (see [`ChaosProfile`]): device-level flips are caught by the KV
//! store's own record checksums, so the truly dangerous corruption —
//! the kind only the cluster's end-to-end checksums can see — is
//! injected here, above the store, where no lower layer checks it.

use crate::chaos::ChaosProfile;
use crate::error::ClusterError;
use deepnote_acoustics::{Distance, OperatingPoint, TransferPathTable};
use deepnote_blockdev::{BlockDevice, ChaosEvent, ChaosInjector, ChaosPlan, ChaosStats, HddDisk};
use deepnote_hdd::{VibrationInput, VibrationState};
use deepnote_kv::{Db, DbConfig};
use deepnote_sim::{Clock, SimDuration, SimRng, SimTime};
use deepnote_telemetry::Tracer;
use std::sync::Arc;

/// A node's drive: the mechanical model behind a seeded fault injector.
pub type ChaosDisk = ChaosInjector<HddDisk>;

/// The node's storage engine, present in every lifecycle state.
///
/// `Stopped` holds the bare drive inline: there is exactly one `Engine`
/// per node and the disk is moved, never copied, so the variant size gap
/// against the boxed `Running` database does not matter here.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
enum Engine {
    /// Serving: the database owns the disk.
    Running(Box<Db<ChaosDisk>>),
    /// Crashed: the disk has been pulled out of the dead process and
    /// waits for a restart.
    Stopped(ChaosDisk),
    /// Transient marker while ownership moves between states.
    Swapping,
}

/// Why a restart attempt did not bring the node back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartOutcome {
    /// The boot probe saw the medium still unresponsive (attack ongoing).
    StillDead,
    /// The store reopened from the surviving on-disk state.
    Recovered,
    /// The on-disk state was unrecoverable; the node rejoined with a
    /// blank replacement drive (repairs must restore its data).
    RecoveredBlank,
}

/// Counters for one node's lifecycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NodeCounters {
    /// Fatal engine crashes observed.
    pub crashes: u64,
    /// Successful restarts.
    pub restarts: u64,
    /// Restart attempts that failed (medium still dead).
    pub failed_restarts: u64,
    /// Device-level faults injected by the drive's chaos plan (every
    /// kind, including drives since retired).
    pub injected_faults: u64,
    /// Values this node durably stored wrong (silent write corruption,
    /// preload included).
    pub corrupted_writes: u64,
    /// Values this node returned wrong while the stored copy was fine
    /// (transient read corruption).
    pub corrupted_reads: u64,
}

/// A read-only snapshot of one node's telemetry counters, taken at a
/// metrics scrape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeProbe {
    /// Whether the engine process is alive.
    pub running: bool,
    /// Residual off-track excursion under the current vibration (nm).
    pub offtrack_nm: f64,
    /// Drive retry attempts since the current drive was commissioned.
    pub seek_retries: u64,
    /// Failed block requests on the current drive.
    pub io_errors: u64,
    /// Injected chaos faults, drives since retired included.
    pub injected_faults: u64,
    /// WAL group syncs since the engine booted.
    pub wal_syncs: u64,
    /// Memtable flushes since the engine booted.
    pub flushes: u64,
    /// Compactions since the engine booted.
    pub compactions: u64,
    /// Filesystem journal commits since the engine booted.
    pub journal_commits: u64,
}

/// The result of dispatching one operation to a node.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResult {
    /// Whether the engine served the request.
    pub ok: bool,
    /// Whether the failure killed the engine (process crash).
    pub fatal: bool,
    /// Value returned by a get (`None` for puts and misses).
    pub value: Option<Vec<u8>>,
    /// Cluster-timeline instant the node finished the request.
    pub done: SimTime,
}

/// One replica server.
#[derive(Debug)]
pub struct StorageNode {
    id: usize,
    rack: usize,
    position: Distance,
    clock: Clock,
    engine: Engine,
    vibration: VibrationInput,
    busy_until: SimTime,
    db_config: DbConfig,
    counters: NodeCounters,
    chaos: ChaosProfile,
    rng: SimRng,
    /// Chaos counters of drives this node has retired (blank swaps).
    retired_chaos: ChaosStats,
    /// Distinct devices built, used to fork a fresh RNG stream per drive.
    devices_built: u64,
    /// Shared trace sink; re-applied to the engine after every swap.
    tracer: Tracer,
    /// Precomputed servo residuals for the campaign's steady-state
    /// tones at this node's position, plus the operating-point template
    /// lookup keys are minted from. Re-applied to the drive after every
    /// swap, exactly like the tracer.
    transfer: Option<(Arc<TransferPathTable<f64>>, OperatingPoint)>,
}

impl StorageNode {
    /// Brings up a node with a freshly formatted drive and no chaos
    /// (the legacy clean-failure node).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NodeLaunch`] if formatting the fresh device fails
    /// (it cannot, absent an attack mounted before the node exists, but
    /// a launch failure must surface as an error, not a crash).
    pub fn launch(
        id: usize,
        rack: usize,
        position: Distance,
        db_config: DbConfig,
    ) -> Result<Self, ClusterError> {
        Self::launch_with(
            id,
            rack,
            position,
            db_config,
            &ChaosProfile::off(),
            SimRng::seeded(id as u64),
        )
    }

    /// Brings up a node whose drive and serving path inject the faults
    /// `chaos` describes, drawn from `rng`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NodeLaunch`] if formatting the fresh device fails.
    pub fn launch_with(
        id: usize,
        rack: usize,
        position: Distance,
        db_config: DbConfig,
        chaos: &ChaosProfile,
        mut rng: SimRng,
    ) -> Result<Self, ClusterError> {
        let clock = Clock::new();
        let mut devices_built = 0;
        let (dev, vibration) = build_device(&clock, chaos, &mut rng, &mut devices_built);
        // Format the fresh drive with the chaos plan disarmed: injected
        // faults are a serving-time phenomenon, and a commissioning
        // burst would abort the whole campaign instead of degrading it.
        let quiet_dev = {
            let mut d = dev;
            d.set_plan(ChaosPlan::quiet());
            d
        };
        let mut db = Db::create_with(quiet_dev, clock.clone(), db_config)
            .map_err(|source| ClusterError::NodeLaunch { node: id, source })?;
        db.filesystem_mut()
            .device_mut()
            .set_plan(chaos.device.clone());
        Ok(StorageNode {
            id,
            rack,
            position,
            clock,
            engine: Engine::Running(Box::new(db)),
            vibration,
            busy_until: SimTime::ZERO,
            db_config,
            counters: NodeCounters::default(),
            chaos: chaos.clone(),
            rng,
            retired_chaos: ChaosStats::default(),
            devices_built,
            tracer: Tracer::disabled(),
            transfer: None,
        })
    }

    /// The node's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The rack this node sits in.
    pub fn rack(&self) -> usize {
        self.rack
    }

    /// Distance from the attack point.
    pub fn position(&self) -> Distance {
        self.position
    }

    /// The drive's vibration input (mount/stop attacks through this).
    pub fn vibration(&self) -> &VibrationInput {
        &self.vibration
    }

    /// Whether the engine process is alive.
    pub fn running(&self) -> bool {
        matches!(self.engine, Engine::Running(_))
    }

    /// Cluster-timeline instant until which the node is busy.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Lifecycle counters.
    pub fn counters(&self) -> NodeCounters {
        self.counters
    }

    /// Device-level chaos counters, including drives since retired.
    pub fn chaos_stats(&self) -> ChaosStats {
        let mut total = self.retired_chaos;
        if let Some(dev) = self.device() {
            total.merge(&dev.stats());
        }
        total
    }

    /// The current drive's fault trace, in request order (a blank-swap
    /// retires the trace along with the drive).
    pub fn fault_trace(&self) -> Vec<ChaosEvent> {
        self.device()
            .map(|d| d.trace().to_vec())
            .unwrap_or_default()
    }

    fn device(&self) -> Option<&ChaosDisk> {
        match &self.engine {
            Engine::Running(db) => Some(db.filesystem().device()),
            Engine::Stopped(dev) => Some(dev),
            Engine::Swapping => None,
        }
    }

    /// Attaches a tracer to this node; every layer of the stack emits on
    /// track `id`. Survives engine crashes and drive swaps (the node
    /// re-applies the handle whenever the engine changes).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        self.apply_tracer();
    }

    /// Pushes the tracer down the current engine's stack.
    fn apply_tracer(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let track = self.id as u32;
        match &mut self.engine {
            Engine::Running(db) => {
                db.set_tracer(self.tracer.clone(), track);
                let dev = db.filesystem_mut().device_mut();
                dev.set_tracer(self.tracer.clone(), track);
                dev.inner_mut().set_tracer(self.tracer.clone(), track);
            }
            Engine::Stopped(dev) => {
                dev.set_tracer(self.tracer.clone(), track);
                dev.inner_mut().set_tracer(self.tracer.clone(), track);
            }
            Engine::Swapping => {}
        }
    }

    /// Installs a precomputed transfer-path cache: `at` is the
    /// operating-point template for this node's position (lookup keys
    /// substitute the live tone's frequency into it) and `tones` the
    /// steady-state operating points the campaign will mount, paired
    /// with the chassis vibration each one produces here. The node
    /// builds the servo-residual table from its current drive and keeps
    /// re-applying it across crashes and drive swaps, exactly like the
    /// tracer. Values are whatever the uncached path computes, so
    /// probes and traces are byte-identical with or without the cache.
    pub fn install_transfer_cache(
        &mut self,
        at: OperatingPoint,
        tones: &[(OperatingPoint, VibrationState)],
    ) {
        let Some(dev) = self.device() else {
            return; // transient Swapping state; unreachable from callers
        };
        let table = dev
            .inner()
            .drive()
            .servo()
            .residual_table(tones.iter().copied());
        self.transfer = Some((Arc::new(table), at));
        self.apply_transfer_cache();
    }

    /// Pushes the transfer-path cache down to the current drive.
    fn apply_transfer_cache(&mut self) {
        let Some((table, at)) = &self.transfer else {
            return;
        };
        let (table, at) = (table.clone(), *at);
        match &mut self.engine {
            Engine::Running(db) => {
                let dev = db.filesystem_mut().device_mut();
                dev.inner_mut().set_transfer_cache(table, at);
            }
            Engine::Stopped(dev) => {
                dev.inner_mut().set_transfer_cache(table, at);
            }
            Engine::Swapping => {}
        }
    }

    /// Counters the campaign scrapes into metric series. Read-only: a
    /// probe never advances clocks or consumes randomness, so scraping
    /// cannot perturb the campaign. Engine counters read zero while the
    /// node is down (the process holding them is gone), and KV/fs
    /// counters restart from zero after a reboot — both visible as
    /// cliffs in the series, which is the point.
    pub fn probe(&self) -> NodeProbe {
        let (offtrack_nm, seek_retries, io_errors) = match self.device() {
            Some(dev) => (
                dev.inner().residual_offtrack_nm(),
                dev.inner().drive().retries_total(),
                dev.inner().read_errors() + dev.inner().write_errors(),
            ),
            None => (0.0, 0, 0),
        };
        let (wal_syncs, flushes, compactions, journal_commits) = match &self.engine {
            Engine::Running(db) => {
                let s = db.stats();
                (
                    s.wal_syncs,
                    s.flushes,
                    s.compactions,
                    db.filesystem().stats().journal_commits,
                )
            }
            _ => (0, 0, 0, 0),
        };
        NodeProbe {
            running: self.running(),
            offtrack_nm,
            seek_retries,
            io_errors,
            injected_faults: self.chaos_stats().total(),
            wal_syncs,
            flushes,
            compactions,
            journal_commits,
        }
    }

    /// Refreshes the injected-fault counter from the live device.
    fn refresh_chaos_counters(&mut self) {
        self.counters.injected_faults = self.chaos_stats().total();
    }

    /// Flips one seeded bit of `value` in place (no-op on empty values).
    fn flip_value(rng: &mut SimRng, value: &mut [u8]) {
        if value.is_empty() {
            return;
        }
        let bit = rng.below(value.len() as u64 * 8) as usize;
        value[bit / 8] ^= 1 << (bit % 8);
    }

    /// Loads `(key, value)` pairs before the campaign starts: provisioning
    /// time is off the books (`busy_until` is untouched), but the data and
    /// its on-disk footprint are real. With a `preload_flip` chaos rate,
    /// some records are silently stored corrupt — bad state already
    /// resident when the campaign begins.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NodeNotRunning`] on a stopped node;
    /// [`ClusterError::Provision`] if a write or the final flush fails.
    pub fn preload<'a>(
        &mut self,
        pairs: impl IntoIterator<Item = (&'a [u8], &'a [u8])>,
    ) -> Result<(), ClusterError> {
        let id = self.id;
        let flip = self.chaos.preload_flip;
        let Engine::Running(db) = &mut self.engine else {
            return Err(ClusterError::NodeNotRunning { node: id });
        };
        for (k, v) in pairs {
            if flip > 0.0 && self.rng.chance(flip) {
                let mut bad = v.to_vec();
                Self::flip_value(&mut self.rng, &mut bad);
                self.counters.corrupted_writes += 1;
                db.put(k, &bad)
            } else {
                db.put(k, v)
            }
            .map_err(|source| ClusterError::Provision { node: id, source })?;
        }
        db.flush()
            .map_err(|source| ClusterError::Provision { node: id, source })
    }

    /// Serves a get dispatched at cluster time `at`. With a `get_flip`
    /// chaos rate, a returned value may be transiently corrupted (the
    /// stored copy stays fine).
    pub fn serve_get(&mut self, at: SimTime, key: &[u8]) -> ServiceResult {
        let mut r = self.serve(at, |db| db.get(key));
        if r.ok && self.chaos.get_flip > 0.0 {
            if let Some(v) = r.value.as_mut() {
                if self.rng.chance(self.chaos.get_flip) {
                    Self::flip_value(&mut self.rng, v);
                    self.counters.corrupted_reads += 1;
                }
            }
        }
        r
    }

    /// Serves a put dispatched at cluster time `at`. With a `put_flip`
    /// chaos rate, the stored value may be silently corrupted — the
    /// store below checksums the *wrong* bytes faithfully, so only
    /// end-to-end verification can catch it.
    pub fn serve_put(&mut self, at: SimTime, key: &[u8], value: &[u8]) -> ServiceResult {
        if self.chaos.put_flip > 0.0 && self.rng.chance(self.chaos.put_flip) {
            let mut bad = value.to_vec();
            Self::flip_value(&mut self.rng, &mut bad);
            self.counters.corrupted_writes += 1;
            return self.serve(at, |db| db.put(key, &bad).map(|()| None));
        }
        self.serve(at, |db| db.put(key, value).map(|()| None))
    }

    fn serve<F>(&mut self, at: SimTime, f: F) -> ServiceResult
    where
        F: FnOnce(&mut Db<ChaosDisk>) -> Result<Option<Vec<u8>>, deepnote_kv::DbError>,
    {
        let start = self.busy_until.max(at);
        let Engine::Running(db) = &mut self.engine else {
            // Process down: connection refused, a network round-trip.
            return ServiceResult {
                ok: false,
                fatal: false,
                value: None,
                done: at + RTT,
            };
        };
        let t0 = self.clock.now();
        if self.tracer.is_enabled() {
            // Bridge this dispatch's private-clock window onto the
            // cluster timeline: events the stack emits at private time
            // `t` land at `start + (t - t0)`.
            self.tracer.set_offset(
                self.id as u32,
                start.as_nanos() as i64 - t0.as_nanos() as i64,
            );
        }
        let outcome = f(db);
        let service = self.clock.now().saturating_duration_since(t0);
        self.busy_until = start + service + RTT;
        let result = match outcome {
            Ok(value) => ServiceResult {
                ok: true,
                fatal: false,
                value,
                done: self.busy_until,
            },
            Err(e) => {
                let fatal = e.is_fatal();
                if fatal {
                    self.crash_engine();
                }
                ServiceResult {
                    ok: false,
                    fatal,
                    value: None,
                    done: self.busy_until,
                }
            }
        };
        self.refresh_chaos_counters();
        result
    }

    /// Pulls the disk out of a dead engine so its platters survive the
    /// process crash. On a node that is not running there is nothing to
    /// crash and the call is a (debug-asserted) no-op.
    fn crash_engine(&mut self) {
        if !matches!(self.engine, Engine::Running(_)) {
            debug_assert!(false, "crash_engine on a node that is not running");
            return;
        }
        let Engine::Running(mut db) = std::mem::replace(&mut self.engine, Engine::Swapping) else {
            return; // checked above; keeps the move below panic-free
        };
        // The dummy taking the real device's place needs no chaos: it
        // drops with the dead Db.
        let mut dev = ChaosInjector::new(
            HddDisk::barracuda_500gb(self.clock.clone()),
            ChaosPlan::quiet(),
            SimRng::seeded(0),
        );
        std::mem::swap(db.filesystem_mut().device_mut(), &mut dev);
        // `dev` now holds the real device (with its chaos state, stats,
        // trace, and the wired vibration input).
        self.engine = Engine::Stopped(dev);
        self.counters.crashes += 1;
    }

    /// Attempts to reboot a crashed node at cluster time `at`.
    ///
    /// A raw boot probe (one sector read) checks whether the medium
    /// responds before the journal replay risks the disk: an open that
    /// dies half-way consumes the device, so a probe failure keeps the
    /// original platters for the next attempt. If the probe passes but
    /// recovery still fails, the drive is swapped for a blank unit and
    /// the node rejoins empty.
    /// Restarting a node that is not stopped is a (debug-asserted)
    /// no-op reported as [`RestartOutcome::StillDead`].
    pub fn try_restart(&mut self, at: SimTime) -> RestartOutcome {
        if !matches!(self.engine, Engine::Stopped(_)) {
            debug_assert!(false, "try_restart on a node that is not stopped");
            return RestartOutcome::StillDead;
        }
        let Engine::Stopped(mut disk) = std::mem::replace(&mut self.engine, Engine::Swapping)
        else {
            return RestartOutcome::StillDead; // checked above
        };
        let start = self.busy_until.max(at);
        let t0 = self.clock.now();
        if self.tracer.is_enabled() {
            self.tracer.set_offset(
                self.id as u32,
                start.as_nanos() as i64 - t0.as_nanos() as i64,
            );
        }
        let mut probe = [0u8; 512];
        if disk.read_blocks(0, &mut probe).is_err() {
            let spent = self.clock.now().saturating_duration_since(t0);
            self.busy_until = start + spent;
            self.engine = Engine::Stopped(disk);
            self.counters.failed_restarts += 1;
            self.refresh_chaos_counters();
            return RestartOutcome::StillDead;
        }
        // `open_with` consumes the device; snapshot its chaos history
        // first so a blank swap cannot lose it.
        let old_stats = disk.stats();
        let outcome = match Db::open_with(disk, self.clock.clone(), self.db_config) {
            Ok(db) => {
                self.engine = Engine::Running(Box::new(db));
                RestartOutcome::Recovered
            }
            Err(_) => {
                // The open consumed the device; commission a blank drive
                // (wrapped in a fresh chaos stream — new hardware, new
                // luck) and retire the old one's counters.
                self.retired_chaos.merge(&old_stats);
                // Format the replacement with its chaos plan disarmed
                // (as at launch): commissioning happens on the bench,
                // not in the blast zone. The plan arms once the engine
                // is serving.
                let (mut blank, vibration) = build_device(
                    &self.clock,
                    &self.chaos,
                    &mut self.rng,
                    &mut self.devices_built,
                );
                blank.set_plan(ChaosPlan::quiet());
                self.vibration = vibration;
                match Db::create_with(blank, self.clock.clone(), self.db_config) {
                    Ok(mut db) => {
                        db.filesystem_mut()
                            .device_mut()
                            .set_plan(self.chaos.device.clone());
                        self.engine = Engine::Running(Box::new(db));
                        RestartOutcome::RecoveredBlank
                    }
                    Err(_) => {
                        // Even the blank drive refuses (attack resumed
                        // mid-boot); stand the node down with another one.
                        let (blank, vibration) = build_device(
                            &self.clock,
                            &self.chaos,
                            &mut self.rng,
                            &mut self.devices_built,
                        );
                        self.vibration = vibration;
                        self.engine = Engine::Stopped(blank);
                        self.apply_tracer();
                        self.apply_transfer_cache();
                        self.counters.failed_restarts += 1;
                        let spent = self.clock.now().saturating_duration_since(t0);
                        self.busy_until = start + spent;
                        self.refresh_chaos_counters();
                        return RestartOutcome::StillDead;
                    }
                }
            }
        };
        // A restart rebuilt the engine (and possibly the drive): the new
        // stack needs the tracer and transfer cache re-attached.
        self.apply_tracer();
        self.apply_transfer_cache();
        let spent = self.clock.now().saturating_duration_since(t0);
        self.busy_until = start + spent;
        self.counters.restarts += 1;
        self.refresh_chaos_counters();
        outcome
    }
}

/// Builds a fresh chaos-wrapped drive on `clock`, forking a dedicated
/// RNG stream for it, and returns it with its vibration handle.
fn build_device(
    clock: &Clock,
    chaos: &ChaosProfile,
    rng: &mut SimRng,
    devices_built: &mut u64,
) -> (ChaosDisk, VibrationInput) {
    let disk = HddDisk::barracuda_500gb(clock.clone());
    let vibration = disk.vibration();
    *devices_built += 1;
    let dev = ChaosInjector::new(disk, chaos.device.clone(), rng.fork(*devices_built))
        .with_clock(clock.clone())
        .with_vibration(vibration.clone());
    (dev, vibration)
}

/// Modeled network round-trip added to every dispatched request.
const RTT: SimDuration = SimDuration::from_micros(200);

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_core::testbed::Testbed;
    use deepnote_core::threat::AttackParams;
    use deepnote_structures::Scenario;

    fn quick_config() -> DbConfig {
        DbConfig {
            wal_sync_every_ops: 8,
            wal_patience: SimDuration::from_secs(2),
            ..DbConfig::default()
        }
    }

    fn node() -> StorageNode {
        StorageNode::launch(0, 0, Distance::from_cm(1.0), quick_config()).expect("fresh launch")
    }

    #[test]
    fn serves_and_advances_busy_window() {
        let mut n = node();
        let w = n.serve_put(SimTime::ZERO, b"k", b"v");
        assert!(w.ok);
        assert!(w.done > SimTime::ZERO);
        let r = n.serve_get(w.done, b"k");
        assert!(r.ok);
        assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
        assert!(n.busy_until() >= r.done);
    }

    #[test]
    fn requests_queue_behind_busy_window() {
        let mut n = node();
        let first = n.serve_put(SimTime::ZERO, b"a", b"1");
        // Dispatched "in the past" relative to the busy window: the reply
        // cannot arrive before the earlier work finishes.
        let second = n.serve_put(SimTime::ZERO, b"b", b"2");
        assert!(second.done > first.done);
    }

    #[test]
    fn attack_crashes_engine_and_preserves_platters() {
        let mut n = node();
        n.preload([(b"stable".as_slice(), b"value".as_slice())])
            .expect("preload");
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        testbed.mount_attack(n.vibration(), AttackParams::paper_best());
        // Hammer writes until a WAL group sync trips and the store dies.
        let mut t = SimTime::ZERO;
        let mut crashed = false;
        for i in 0..64u32 {
            let r = n.serve_put(t, format!("k{i}").as_bytes(), b"v");
            t = r.done;
            if r.fatal {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "attack never tripped a fatal sync");
        assert!(!n.running());
        assert_eq!(n.counters().crashes, 1);

        // Still under attack: the boot probe refuses.
        assert_eq!(n.try_restart(t), RestartOutcome::StillDead);

        // Attack over: the node reboots and the preloaded key survived.
        testbed.stop_attack(n.vibration());
        let outcome = n.try_restart(t);
        assert_eq!(outcome, RestartOutcome::Recovered);
        assert!(n.running());
        let r = n.serve_get(n.busy_until(), b"stable");
        assert!(r.ok);
        assert_eq!(r.value.as_deref(), Some(&b"value"[..]));
    }

    #[test]
    fn stopped_node_refuses_fast() {
        let mut n = node();
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        testbed.mount_attack(n.vibration(), AttackParams::paper_best());
        let mut t = SimTime::ZERO;
        for i in 0..64u32 {
            let r = n.serve_put(t, format!("k{i}").as_bytes(), b"v");
            t = r.done;
            if r.fatal {
                break;
            }
        }
        assert!(!n.running());
        let at = n.busy_until() + SimDuration::from_secs(1);
        let refused = n.serve_get(at, b"k");
        assert!(!refused.ok && !refused.fatal);
        // Refusal is a round-trip, not a disk timeout.
        assert!(refused.done <= at + SimDuration::from_millis(1));
    }

    fn corrupting_node(put_flip: f64, get_flip: f64) -> StorageNode {
        let mut chaos = ChaosProfile::off();
        chaos.put_flip = put_flip;
        chaos.get_flip = get_flip;
        StorageNode::launch_with(
            0,
            0,
            Distance::from_cm(1.0),
            quick_config(),
            &chaos,
            SimRng::seeded(42),
        )
        .expect("fresh launch")
    }

    #[test]
    fn put_flip_corrupts_durably() {
        let mut n = corrupting_node(1.0, 0.0);
        let w = n.serve_put(SimTime::ZERO, b"k", b"value");
        assert!(w.ok, "the engine happily stores the wrong bytes");
        assert_eq!(n.counters().corrupted_writes, 1);
        let r = n.serve_get(w.done, b"k");
        assert!(r.ok);
        let got = r.value.expect("a value was stored");
        assert_ne!(got, b"value", "stored value should be flipped");
        // Exactly one bit differs: silent, plausible corruption.
        let diff: u32 = got
            .iter()
            .zip(b"value".iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn get_flip_is_transient() {
        let mut n = corrupting_node(0.0, 1.0);
        let w = n.serve_put(SimTime::ZERO, b"k", b"value");
        assert!(w.ok);
        assert_eq!(n.counters().corrupted_writes, 0);
        let r1 = n.serve_get(w.done, b"k");
        assert_ne!(r1.value.as_deref(), Some(&b"value"[..]));
        assert!(n.counters().corrupted_reads >= 1);
        // The stored copy is fine: a chaos-free reader would see it —
        // prove it by turning the flip off.
        n.chaos.get_flip = 0.0;
        let r2 = n.serve_get(r1.done, b"k");
        assert_eq!(r2.value.as_deref(), Some(&b"value"[..]));
    }

    #[test]
    fn preload_flip_corrupts_resident_data() {
        let mut chaos = ChaosProfile::off();
        chaos.preload_flip = 1.0;
        let mut n = StorageNode::launch_with(
            0,
            0,
            Distance::from_cm(1.0),
            quick_config(),
            &chaos,
            SimRng::seeded(7),
        )
        .expect("fresh launch");
        n.preload([(b"k".as_slice(), b"value".as_slice())])
            .expect("preload");
        assert_eq!(n.counters().corrupted_writes, 1);
        let r = n.serve_get(SimTime::ZERO, b"k");
        assert_ne!(r.value.as_deref(), Some(&b"value"[..]));
    }

    #[test]
    fn device_chaos_surfaces_in_counters() {
        use deepnote_blockdev::DelayPlan;
        let mut chaos = ChaosProfile::off();
        // Every device request pays extra latency: any serve that does
        // I/O must show up in the injected-fault counter.
        chaos.device.delay = Some(DelayPlan {
            per_request: 1.0,
            extra: SimDuration::from_millis(1),
        });
        let mut n = StorageNode::launch_with(
            0,
            0,
            Distance::from_cm(1.0),
            quick_config(),
            &chaos,
            SimRng::seeded(3),
        )
        .expect("fresh launch");
        // Enough puts to force WAL syncs through the device (the WAL
        // buffers in memory between syncs, so one put may do no I/O).
        for i in 0..32u32 {
            let w = n.serve_put(SimTime::ZERO, &i.to_le_bytes(), b"v");
            assert!(w.ok);
        }
        assert!(n.counters().injected_faults > 0);
        assert_eq!(n.chaos_stats().total(), n.counters().injected_faults);
        assert!(!n.fault_trace().is_empty());
    }
}
