//! A storage node: one enclosure/drive/LSM stack at a tank position.
//!
//! Each node is its own virtual-time world — a private [`Clock`] driving
//! a [`HddDisk`] under a [`Db`] — embedded in the cluster's shared
//! timeline through `busy_until`: requests dispatched at cluster time `t`
//! start at `max(t, busy_until)`, take whatever the private clock says
//! the stack charged, and push `busy_until` forward. A node wedged in an
//! 81-second WAL-sync retry is therefore unresponsive on the cluster
//! timeline for 81 seconds, exactly like a real server with a blocked
//! fsync.

use crate::error::ClusterError;
use deepnote_acoustics::Distance;
use deepnote_blockdev::{BlockDevice, HddDisk};
use deepnote_hdd::VibrationInput;
use deepnote_kv::{Db, DbConfig};
use deepnote_sim::{Clock, SimDuration, SimTime};

/// The node's storage engine, present in every lifecycle state.
///
/// `Stopped` holds the bare drive inline: there is exactly one `Engine`
/// per node and the disk is moved, never copied, so the variant size gap
/// against the boxed `Running` database does not matter here.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
enum Engine {
    /// Serving: the database owns the disk.
    Running(Box<Db<HddDisk>>),
    /// Crashed: the disk has been pulled out of the dead process and
    /// waits for a restart.
    Stopped(HddDisk),
    /// Transient marker while ownership moves between states.
    Swapping,
}

/// Why a restart attempt did not bring the node back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartOutcome {
    /// The boot probe saw the medium still unresponsive (attack ongoing).
    StillDead,
    /// The store reopened from the surviving on-disk state.
    Recovered,
    /// The on-disk state was unrecoverable; the node rejoined with a
    /// blank replacement drive (repairs must restore its data).
    RecoveredBlank,
}

/// Counters for one node's lifecycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NodeCounters {
    /// Fatal engine crashes observed.
    pub crashes: u64,
    /// Successful restarts.
    pub restarts: u64,
    /// Restart attempts that failed (medium still dead).
    pub failed_restarts: u64,
}

/// The result of dispatching one operation to a node.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResult {
    /// Whether the engine served the request.
    pub ok: bool,
    /// Whether the failure killed the engine (process crash).
    pub fatal: bool,
    /// Value returned by a get (`None` for puts and misses).
    pub value: Option<Vec<u8>>,
    /// Cluster-timeline instant the node finished the request.
    pub done: SimTime,
}

/// One replica server.
#[derive(Debug)]
pub struct StorageNode {
    id: usize,
    rack: usize,
    position: Distance,
    clock: Clock,
    engine: Engine,
    vibration: VibrationInput,
    busy_until: SimTime,
    db_config: DbConfig,
    counters: NodeCounters,
}

impl StorageNode {
    /// Brings up a node with a freshly formatted drive.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NodeLaunch`] if formatting the fresh device fails
    /// (it cannot, absent an attack mounted before the node exists, but
    /// a launch failure must surface as an error, not a crash).
    pub fn launch(
        id: usize,
        rack: usize,
        position: Distance,
        db_config: DbConfig,
    ) -> Result<Self, ClusterError> {
        let clock = Clock::new();
        let disk = HddDisk::barracuda_500gb(clock.clone());
        let vibration = disk.vibration();
        let db = Db::create_with(disk, clock.clone(), db_config)
            .map_err(|source| ClusterError::NodeLaunch { node: id, source })?;
        Ok(StorageNode {
            id,
            rack,
            position,
            clock,
            engine: Engine::Running(Box::new(db)),
            vibration,
            busy_until: SimTime::ZERO,
            db_config,
            counters: NodeCounters::default(),
        })
    }

    /// The node's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The rack this node sits in.
    pub fn rack(&self) -> usize {
        self.rack
    }

    /// Distance from the attack point.
    pub fn position(&self) -> Distance {
        self.position
    }

    /// The drive's vibration input (mount/stop attacks through this).
    pub fn vibration(&self) -> &VibrationInput {
        &self.vibration
    }

    /// Whether the engine process is alive.
    pub fn running(&self) -> bool {
        matches!(self.engine, Engine::Running(_))
    }

    /// Cluster-timeline instant until which the node is busy.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Lifecycle counters.
    pub fn counters(&self) -> NodeCounters {
        self.counters
    }

    /// Loads `(key, value)` pairs before the campaign starts: provisioning
    /// time is off the books (`busy_until` is untouched), but the data and
    /// its on-disk footprint are real.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NodeNotRunning`] on a stopped node;
    /// [`ClusterError::Provision`] if a write or the final flush fails.
    pub fn preload<'a>(
        &mut self,
        pairs: impl IntoIterator<Item = (&'a [u8], &'a [u8])>,
    ) -> Result<(), ClusterError> {
        let id = self.id;
        let Engine::Running(db) = &mut self.engine else {
            return Err(ClusterError::NodeNotRunning { node: id });
        };
        for (k, v) in pairs {
            db.put(k, v)
                .map_err(|source| ClusterError::Provision { node: id, source })?;
        }
        db.flush()
            .map_err(|source| ClusterError::Provision { node: id, source })
    }

    /// Serves a get dispatched at cluster time `at`.
    pub fn serve_get(&mut self, at: SimTime, key: &[u8]) -> ServiceResult {
        self.serve(at, |db| db.get(key))
    }

    /// Serves a put dispatched at cluster time `at`.
    pub fn serve_put(&mut self, at: SimTime, key: &[u8], value: &[u8]) -> ServiceResult {
        self.serve(at, |db| db.put(key, value).map(|()| None))
    }

    fn serve<F>(&mut self, at: SimTime, f: F) -> ServiceResult
    where
        F: FnOnce(&mut Db<HddDisk>) -> Result<Option<Vec<u8>>, deepnote_kv::DbError>,
    {
        let start = self.busy_until.max(at);
        let Engine::Running(db) = &mut self.engine else {
            // Process down: connection refused, a network round-trip.
            return ServiceResult {
                ok: false,
                fatal: false,
                value: None,
                done: at + RTT,
            };
        };
        let t0 = self.clock.now();
        let outcome = f(db);
        let service = self.clock.now().saturating_duration_since(t0);
        self.busy_until = start + service + RTT;
        match outcome {
            Ok(value) => ServiceResult {
                ok: true,
                fatal: false,
                value,
                done: self.busy_until,
            },
            Err(e) => {
                let fatal = e.is_fatal();
                if fatal {
                    self.crash_engine();
                }
                ServiceResult {
                    ok: false,
                    fatal,
                    value: None,
                    done: self.busy_until,
                }
            }
        }
    }

    /// Pulls the disk out of a dead engine so its platters survive the
    /// process crash. On a node that is not running there is nothing to
    /// crash and the call is a (debug-asserted) no-op.
    fn crash_engine(&mut self) {
        if !matches!(self.engine, Engine::Running(_)) {
            debug_assert!(false, "crash_engine on a node that is not running");
            return;
        }
        let Engine::Running(mut db) = std::mem::replace(&mut self.engine, Engine::Swapping) else {
            return; // checked above; keeps the move below panic-free
        };
        let mut disk = HddDisk::barracuda_500gb(self.clock.clone());
        std::mem::swap(db.filesystem_mut().device_mut(), &mut disk);
        // `disk` now holds the real device (and the wired vibration
        // input); the dummy drops with the dead Db.
        self.engine = Engine::Stopped(disk);
        self.counters.crashes += 1;
    }

    /// Attempts to reboot a crashed node at cluster time `at`.
    ///
    /// A raw boot probe (one sector read) checks whether the medium
    /// responds before the journal replay risks the disk: an open that
    /// dies half-way consumes the device, so a probe failure keeps the
    /// original platters for the next attempt. If the probe passes but
    /// recovery still fails, the drive is swapped for a blank unit and
    /// the node rejoins empty.
    /// Restarting a node that is not stopped is a (debug-asserted)
    /// no-op reported as [`RestartOutcome::StillDead`].
    pub fn try_restart(&mut self, at: SimTime) -> RestartOutcome {
        if !matches!(self.engine, Engine::Stopped(_)) {
            debug_assert!(false, "try_restart on a node that is not stopped");
            return RestartOutcome::StillDead;
        }
        let Engine::Stopped(mut disk) = std::mem::replace(&mut self.engine, Engine::Swapping)
        else {
            return RestartOutcome::StillDead; // checked above
        };
        let start = self.busy_until.max(at);
        let t0 = self.clock.now();
        let mut probe = [0u8; 512];
        if disk.read_blocks(0, &mut probe).is_err() {
            let spent = self.clock.now().saturating_duration_since(t0);
            self.busy_until = start + spent;
            self.engine = Engine::Stopped(disk);
            self.counters.failed_restarts += 1;
            return RestartOutcome::StillDead;
        }
        let outcome = match Db::open_with(disk, self.clock.clone(), self.db_config) {
            Ok(db) => {
                self.engine = Engine::Running(Box::new(db));
                RestartOutcome::Recovered
            }
            Err(_) => {
                // The open consumed the device; commission a blank drive.
                let blank = HddDisk::barracuda_500gb(self.clock.clone());
                self.vibration = blank.vibration();
                match Db::create_with(blank, self.clock.clone(), self.db_config) {
                    Ok(db) => {
                        self.engine = Engine::Running(Box::new(db));
                        RestartOutcome::RecoveredBlank
                    }
                    Err(_) => {
                        // Even the blank drive refuses (attack resumed
                        // mid-boot); stand the node down with it.
                        let blank = HddDisk::barracuda_500gb(self.clock.clone());
                        self.vibration = blank.vibration();
                        self.engine = Engine::Stopped(blank);
                        self.counters.failed_restarts += 1;
                        let spent = self.clock.now().saturating_duration_since(t0);
                        self.busy_until = start + spent;
                        return RestartOutcome::StillDead;
                    }
                }
            }
        };
        let spent = self.clock.now().saturating_duration_since(t0);
        self.busy_until = start + spent;
        self.counters.restarts += 1;
        outcome
    }
}

/// Modeled network round-trip added to every dispatched request.
const RTT: SimDuration = SimDuration::from_micros(200);

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_core::testbed::Testbed;
    use deepnote_core::threat::AttackParams;
    use deepnote_structures::Scenario;

    fn quick_config() -> DbConfig {
        DbConfig {
            wal_sync_every_ops: 8,
            wal_patience: SimDuration::from_secs(2),
            ..DbConfig::default()
        }
    }

    fn node() -> StorageNode {
        StorageNode::launch(0, 0, Distance::from_cm(1.0), quick_config()).expect("fresh launch")
    }

    #[test]
    fn serves_and_advances_busy_window() {
        let mut n = node();
        let w = n.serve_put(SimTime::ZERO, b"k", b"v");
        assert!(w.ok);
        assert!(w.done > SimTime::ZERO);
        let r = n.serve_get(w.done, b"k");
        assert!(r.ok);
        assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
        assert!(n.busy_until() >= r.done);
    }

    #[test]
    fn requests_queue_behind_busy_window() {
        let mut n = node();
        let first = n.serve_put(SimTime::ZERO, b"a", b"1");
        // Dispatched "in the past" relative to the busy window: the reply
        // cannot arrive before the earlier work finishes.
        let second = n.serve_put(SimTime::ZERO, b"b", b"2");
        assert!(second.done > first.done);
    }

    #[test]
    fn attack_crashes_engine_and_preserves_platters() {
        let mut n = node();
        n.preload([(b"stable".as_slice(), b"value".as_slice())])
            .expect("preload");
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        testbed.mount_attack(n.vibration(), AttackParams::paper_best());
        // Hammer writes until a WAL group sync trips and the store dies.
        let mut t = SimTime::ZERO;
        let mut crashed = false;
        for i in 0..64u32 {
            let r = n.serve_put(t, format!("k{i}").as_bytes(), b"v");
            t = r.done;
            if r.fatal {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "attack never tripped a fatal sync");
        assert!(!n.running());
        assert_eq!(n.counters().crashes, 1);

        // Still under attack: the boot probe refuses.
        assert_eq!(n.try_restart(t), RestartOutcome::StillDead);

        // Attack over: the node reboots and the preloaded key survived.
        testbed.stop_attack(n.vibration());
        let outcome = n.try_restart(t);
        assert_eq!(outcome, RestartOutcome::Recovered);
        assert!(n.running());
        let r = n.serve_get(n.busy_until(), b"stable");
        assert!(r.ok);
        assert_eq!(r.value.as_deref(), Some(&b"value"[..]));
    }

    #[test]
    fn stopped_node_refuses_fast() {
        let mut n = node();
        let testbed = Testbed::paper_default(Scenario::PlasticTower);
        testbed.mount_attack(n.vibration(), AttackParams::paper_best());
        let mut t = SimTime::ZERO;
        for i in 0..64u32 {
            let r = n.serve_put(t, format!("k{i}").as_bytes(), b"v");
            t = r.done;
            if r.fatal {
                break;
            }
        }
        assert!(!n.running());
        let at = n.busy_until() + SimDuration::from_secs(1);
        let refused = n.serve_get(at, b"k");
        assert!(!refused.ok && !refused.fatal);
        // Refusal is a round-trip, not a disk timeout.
        assert!(refused.done <= at + SimDuration::from_millis(1));
    }
}
