//! A sharded, replicated, traffic-serving storage cluster on virtual
//! time — the distributed-systems consequence of the paper's
//! single-drive findings.
//!
//! Deep Note (HotStorage '23) shows a 650 Hz tone at centimetres can
//! black out an HDD's I/O. One drive failing is a device story; what an
//! operator cares about is the *service*: does the key-value cluster
//! built on those drives keep answering? This crate builds that cluster
//! end to end on the workspace's virtual-time stacks:
//!
//! * [`node`] — a [`node::StorageNode`] is one enclosure/drive/LSM world
//!   ([`deepnote_kv::Db`] over [`deepnote_blockdev::HddDisk`]) at a tank
//!   position, bridged onto the shared cluster timeline through its busy
//!   window;
//! * [`placement`] — keys hash onto shards; shards replicate onto nodes
//!   either co-located in one rack or separated across acoustic fault
//!   domains;
//! * [`replication`] — quorum reads/writes with load shedding, plus the
//!   background repair queue that re-replicates through the real storage
//!   stacks (repair bandwidth is paid in virtual time and counted in
//!   bytes);
//! * [`health`] — probe-driven failure detection, restart backoff, and
//!   failover timing: the control plane sees round-trips, never physics;
//! * [`workload`] — a deterministic closed-loop client population;
//! * [`timeline`] — what the adversary transmits, phase by phase;
//! * [`metrics`] / [`report`] — per-phase goodput, tail latency, SLO and
//!   availability accounting, rendered as fixed-width reports;
//! * [`campaign`] — the event loop tying it together.
//!
//! The headline experiment ([`campaign::run_campaign`] with
//! [`campaign::CampaignConfig::paper_duel`]) runs the same attack
//! timeline against both placements: co-located replicas share the blast
//! radius and lose whole shards for the duration; separated replicas
//! keep serving quorum traffic and re-replicate around the damage.
//!
//! ```
//! use deepnote_cluster::prelude::*;
//! use deepnote_sim::SimDuration;
//!
//! let mut config = CampaignConfig::paper_duel(
//!     PlacementPolicy::Separated,
//!     SimDuration::from_secs(10),
//! );
//! config.workload.num_keys = 120; // keep the doctest quick
//! config.workload.clients = 2;
//! let report = run_campaign(&config).expect("launch and provision succeed");
//! assert!(report.metrics.phase("baseline").unwrap().success_ratio() > 0.99);
//! ```

pub mod campaign;
pub mod chaos;
pub mod client;
pub mod cluster;
pub mod error;
pub mod health;
pub mod integrity;
pub mod metrics;
pub mod node;
pub mod placement;
pub mod replication;
pub mod report;
pub mod timeline;
pub mod workload;

/// The common imports for driving cluster campaigns.
pub mod prelude {
    pub use crate::campaign::{run_campaign, run_matrix, CampaignConfig, TelemetryConfig};
    pub use crate::chaos::ChaosProfile;
    pub use crate::client::{ClientPolicy, ResilientClient};
    pub use crate::cluster::{Cluster, ClusterConfig};
    pub use crate::error::ClusterError;
    pub use crate::health::HealthConfig;
    pub use crate::integrity::IntegrityConfig;
    pub use crate::metrics::{ClusterMetrics, ResilienceStats};
    pub use crate::placement::{PlacementPolicy, RackSpec};
    pub use crate::replication::ReplicationConfig;
    pub use crate::report::{render_duel, CampaignReport, EarlyWarning};
    pub use crate::timeline::{AttackLoad, AttackTimeline, Phase};
    pub use crate::workload::{KeyDistribution, WorkloadSpec};
}
