//! Quorum replication and background re-replication.
//!
//! Writes go to every believed-up replica and succeed when a write
//! quorum acknowledges within the request timeout; reads are fanned out
//! the same way and succeed on a read quorum. Replicas whose busy window
//! is already deeper than the timeout are not dispatched to at all
//! (load shedding — the connection would time out anyway), which also
//! bounds how far a backlogged node can drift from the cluster timeline.
//!
//! Re-replication is a queue of [`RepairJob`]s drained in bounded steps:
//! each step copies a batch of keys from a live source replica to the
//! target, through the real storage stacks of both nodes, so repair
//! bandwidth is paid in virtual time and accounted in bytes.

use crate::node::StorageNode;
use crate::placement::{NodeId, ShardId, ShardMap};
use deepnote_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Replication tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Replicas per shard (R).
    pub replication: usize,
    /// Acks needed for a write to succeed (W).
    pub write_quorum: usize,
    /// Acks needed for a read to succeed.
    pub read_quorum: usize,
    /// Coordinator-side deadline for collecting acks.
    pub request_timeout: SimDuration,
}

impl ReplicationConfig {
    /// Majority quorums over `replication` replicas.
    pub fn majority(replication: usize) -> Self {
        assert!(replication > 0);
        let q = replication / 2 + 1;
        ReplicationConfig {
            replication,
            write_quorum: q,
            read_quorum: q,
            request_timeout: SimDuration::from_millis(250),
        }
    }
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self::majority(3)
    }
}

/// The kind of client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A quorum read.
    Read,
    /// A quorum write.
    Write,
}

/// The coordinator's verdict on one client operation.
#[derive(Debug, Clone, PartialEq)]
pub struct QuorumOutcome {
    /// Whether the quorum was reached within the timeout.
    pub ok: bool,
    /// Client-observed latency.
    pub latency: SimDuration,
    /// Replicas that acknowledged in time.
    pub acks: usize,
    /// Replicas the coordinator dispatched to.
    pub attempted: usize,
    /// Nodes that returned a fatal error (their process died).
    pub fatalities: Vec<NodeId>,
    /// Value from the first in-time ack that had one (reads).
    pub value: Option<Vec<u8>>,
    /// Every dispatched replica's individual reply, in completion order
    /// (feeds circuit breakers and end-to-end verification).
    pub replies: Vec<ReplicaReply>,
}

/// One replica's reply to a dispatched request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReply {
    /// The replica that was dispatched to.
    pub node: NodeId,
    /// Whether it served the request within the coordinator's deadline.
    pub ok: bool,
    /// When its reply arrived on the cluster timeline.
    pub done: SimTime,
    /// The value it returned, if any.
    pub value: Option<Vec<u8>>,
}

/// Modeled latency of an operation refused without any dispatch (all
/// replicas believed down): one coordinator round-trip.
const FAIL_FAST: SimDuration = SimDuration::from_millis(1);

/// Executes one operation against `shard`'s replica set at time `now`.
///
/// `up` is the health monitor's belief; replicas believed down or with a
/// busy window beyond the timeout are skipped. Every dispatched replica
/// executes (server work happens whether or not the client waits), but
/// only acks completing within the timeout count toward the quorum.
#[allow(clippy::too_many_arguments)] // one flat call per request on the hot path; a params struct would be rebuilt every op
pub fn quorum_execute(
    nodes: &mut [StorageNode],
    shard_replicas: &[NodeId],
    up: &[bool],
    kind: OpKind,
    key: &[u8],
    value: &[u8],
    now: SimTime,
    config: &ReplicationConfig,
) -> QuorumOutcome {
    let deadline = now + config.request_timeout;
    let quorum = match kind {
        OpKind::Read => config.read_quorum,
        OpKind::Write => config.write_quorum,
    };
    let mut replies: Vec<ReplicaReply> = Vec::new();
    let mut attempted = 0;
    let mut fatalities = Vec::new();
    for &n in shard_replicas {
        if !up[n] || nodes[n].busy_until() > deadline {
            continue;
        }
        attempted += 1;
        let r = match kind {
            OpKind::Read => nodes[n].serve_get(now, key),
            OpKind::Write => nodes[n].serve_put(now, key, value),
        };
        if r.fatal {
            fatalities.push(n);
        }
        replies.push(ReplicaReply {
            node: n,
            ok: r.ok && r.done <= deadline,
            done: r.done,
            value: r.value,
        });
    }
    replies.sort_by_key(|r| (r.done, r.node));
    let acks = replies.iter().filter(|r| r.ok).count();
    if acks >= quorum {
        let latency = replies
            .iter()
            .filter(|r| r.ok)
            .nth(quorum - 1)
            .map(|r| r.done.saturating_duration_since(now))
            .unwrap_or(config.request_timeout); // unreachable: acks >= quorum
        let value = replies
            .iter()
            .find_map(|r| if r.ok { r.value.clone() } else { None });
        QuorumOutcome {
            ok: true,
            latency,
            acks,
            attempted,
            fatalities,
            value,
            replies,
        }
    } else {
        let latency = if attempted == 0 {
            FAIL_FAST
        } else {
            config.request_timeout
        };
        QuorumOutcome {
            ok: false,
            latency,
            acks,
            attempted,
            fatalities,
            value: None,
            replies,
        }
    }
}

/// Why a repair job exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairReason {
    /// A down replica's slot was reassigned to a new node.
    Failover,
    /// A restarted replica is catching up on missed writes.
    CatchUp,
    /// The scrubber found a corrupt or missing copy on the target.
    Scrub,
}

/// One shard's pending re-replication onto a target node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairJob {
    /// Shard being repaired.
    pub shard: ShardId,
    /// Node receiving the copy.
    pub target: NodeId,
    /// Why the copy is needed.
    pub reason: RepairReason,
    /// Next index into the shard's key list.
    cursor: usize,
}

/// Totals for the repair subsystem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairStats {
    /// Jobs completed.
    pub jobs_done: u64,
    /// Keys copied.
    pub keys_copied: u64,
    /// Payload bytes moved (key + value, counted once per copy).
    pub bytes_copied: u64,
    /// Copy attempts that failed (source or target unavailable).
    pub copy_failures: u64,
}

/// The background re-replication queue.
#[derive(Debug, Clone, Default)]
pub struct RepairQueue {
    jobs: VecDeque<RepairJob>,
    stats: RepairStats,
}

impl RepairQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pending jobs.
    pub fn pending(&self) -> usize {
        self.jobs.len()
    }

    /// Totals so far.
    pub fn stats(&self) -> RepairStats {
        self.stats
    }

    /// Enqueues a copy of `shard` onto `target` unless an identical job
    /// is already pending; returns whether a new job was added.
    pub fn enqueue(&mut self, shard: ShardId, target: NodeId, reason: RepairReason) -> bool {
        if self
            .jobs
            .iter()
            .any(|j| j.shard == shard && j.target == target)
        {
            return false;
        }
        self.jobs.push_back(RepairJob {
            shard,
            target,
            reason,
            cursor: 0,
        });
        true
    }

    /// Drops any pending jobs targeting `node` (it went down again).
    pub fn cancel_target(&mut self, node: NodeId) {
        self.jobs.retain(|j| j.target != node);
    }

    /// Runs one bounded repair step at `now`: copies up to `batch` keys
    /// of the front job whose source and target are serviceable. Jobs
    /// without a live source replica stay queued (nothing to copy from
    /// yet — the co-located failure mode). With `checksums`, every copy
    /// is verified before it moves: a corrupt source copy is skipped in
    /// favour of any other replica holding a verified one, so repair
    /// never propagates corruption. Returns how many keys moved.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        nodes: &mut [StorageNode],
        map: &ShardMap,
        up: &[bool],
        shard_keys: &[Vec<Vec<u8>>],
        batch: usize,
        now: SimTime,
        config: &ReplicationConfig,
        checksums: bool,
    ) -> u64 {
        let deadline = now + config.request_timeout;
        // Find the first runnable job: target serviceable and some other
        // live replica to copy from.
        let runnable = (0..self.jobs.len()).find(|&i| {
            let j = &self.jobs[i];
            up[j.target]
                && nodes[j.target].busy_until() <= deadline
                && self.source_for(j, map, nodes, up, deadline).is_some()
        });
        let Some(idx) = runnable else {
            return 0;
        };
        // `idx` came from the scan above, so removal cannot miss; a
        // `None` here would mean the queue changed under us.
        let Some(mut job) = self.jobs.remove(idx) else {
            return 0;
        };
        let Some(source) = self.source_for(&job, map, nodes, up, deadline) else {
            self.jobs.push_back(job);
            return 0;
        };
        let keys = &shard_keys[job.shard];
        let mut moved = 0u64;
        let mut t = now;
        while moved < batch as u64 && job.cursor < keys.len() {
            let key = &keys[job.cursor];
            job.cursor += 1;
            let read = nodes[source].serve_get(t, key);
            if !read.ok {
                self.stats.copy_failures += 1;
                break;
            }
            t = read.done;
            let mut fetched = read.value;
            if checksums {
                if let Some(v) = &fetched {
                    if !crate::integrity::verify(key, v) {
                        // The designated source holds a corrupt copy:
                        // hunt the other replicas for a verified one.
                        let (alt, t2) =
                            fetch_verified(nodes, map, &job, up, key, source, t, deadline);
                        t = t2;
                        match alt {
                            Some(v) => fetched = Some(v),
                            None => {
                                // No clean copy anywhere right now; skip
                                // the key rather than spread corruption.
                                self.stats.copy_failures += 1;
                                continue;
                            }
                        }
                    }
                }
            }
            let Some(value) = fetched else {
                // Key never written (or deleted): nothing to copy.
                continue;
            };
            let write = nodes[job.target].serve_put(t, key, &value);
            if !write.ok {
                self.stats.copy_failures += 1;
                break;
            }
            t = write.done;
            moved += 1;
            self.stats.keys_copied += 1;
            self.stats.bytes_copied += (key.len() + value.len()) as u64;
        }
        if job.cursor >= keys.len() {
            self.stats.jobs_done += 1;
        } else {
            // More to do (or a transient failure): back of the queue.
            self.jobs.push_back(job);
        }
        moved
    }

    fn source_for(
        &self,
        job: &RepairJob,
        map: &ShardMap,
        nodes: &[StorageNode],
        up: &[bool],
        deadline: SimTime,
    ) -> Option<NodeId> {
        map.replicas(job.shard)
            .iter()
            .copied()
            .find(|&n| n != job.target && up[n] && nodes[n].busy_until() <= deadline)
    }
}

/// Reads `key` from the other serviceable replicas of `job`'s shard
/// until one returns a copy that passes end-to-end verification. The
/// extra reads are charged in virtual time (returned alongside the
/// value) — verified repair is not free.
#[allow(clippy::too_many_arguments)]
fn fetch_verified(
    nodes: &mut [StorageNode],
    map: &ShardMap,
    job: &RepairJob,
    up: &[bool],
    key: &[u8],
    tried: NodeId,
    mut t: SimTime,
    deadline: SimTime,
) -> (Option<Vec<u8>>, SimTime) {
    for &n in map.replicas(job.shard) {
        if n == job.target || n == tried || !up[n] || nodes[n].busy_until() > deadline {
            continue;
        }
        let read = nodes[n].serve_get(t, key);
        if !read.ok {
            continue;
        }
        t = read.done;
        if let Some(v) = read.value {
            if crate::integrity::verify(key, &v) {
                return (Some(v), t);
            }
        }
    }
    (None, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PlacementPolicy, RackSpec, ShardMap, Topology};
    use deepnote_acoustics::Distance;
    use deepnote_kv::DbConfig;

    fn nodes(n: usize) -> Vec<StorageNode> {
        (0..n)
            .map(|i| {
                StorageNode::launch(i, 0, Distance::from_cm(1.0), DbConfig::default())
                    .expect("fresh launch")
            })
            .collect()
    }

    #[test]
    fn quorum_write_then_read_roundtrip() {
        let mut ns = nodes(3);
        let up = vec![true; 3];
        let cfg = ReplicationConfig::majority(3);
        let replicas = vec![0, 1, 2];
        let w = quorum_execute(
            &mut ns,
            &replicas,
            &up,
            OpKind::Write,
            b"k",
            b"v",
            SimTime::ZERO,
            &cfg,
        );
        assert!(w.ok, "{w:?}");
        assert_eq!(w.attempted, 3);
        assert!(w.acks >= 2);
        let r = quorum_execute(
            &mut ns,
            &replicas,
            &up,
            OpKind::Read,
            b"k",
            b"",
            SimTime::ZERO + w.latency,
            &cfg,
        );
        assert!(r.ok);
        assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
    }

    #[test]
    fn down_replicas_are_skipped_but_quorum_survives_one_loss() {
        let mut ns = nodes(3);
        let up = vec![true, false, true];
        let cfg = ReplicationConfig::majority(3);
        let w = quorum_execute(
            &mut ns,
            &[0, 1, 2],
            &up,
            OpKind::Write,
            b"k",
            b"v",
            SimTime::ZERO,
            &cfg,
        );
        assert!(w.ok);
        assert_eq!(w.attempted, 2);
    }

    #[test]
    fn no_live_replica_fails_fast() {
        let mut ns = nodes(3);
        let up = vec![false; 3];
        let cfg = ReplicationConfig::majority(3);
        let w = quorum_execute(
            &mut ns,
            &[0, 1, 2],
            &up,
            OpKind::Write,
            b"k",
            b"v",
            SimTime::ZERO,
            &cfg,
        );
        assert!(!w.ok);
        assert_eq!(w.attempted, 0);
        assert!(w.latency < cfg.request_timeout);
    }

    #[test]
    fn minority_acks_fail_the_quorum() {
        let mut ns = nodes(3);
        let up = vec![true, false, false];
        let cfg = ReplicationConfig::majority(3);
        let w = quorum_execute(
            &mut ns,
            &[0, 1, 2],
            &up,
            OpKind::Write,
            b"k",
            b"v",
            SimTime::ZERO,
            &cfg,
        );
        assert!(!w.ok);
        assert_eq!(w.acks, 1);
        assert_eq!(w.latency, cfg.request_timeout);
    }

    #[test]
    fn repair_copies_a_shard_to_its_new_target() {
        let mut ns = nodes(3);
        let topo = Topology::build(&[RackSpec {
            distance_cm: 1.0,
            spacing_cm: 1.0,
            nodes: 3,
        }]);
        let map = ShardMap::build(&topo, 1, 2, PlacementPolicy::CoLocated);
        // Shard 0 lives on nodes 0 and 1; write some keys to node 0 only
        // (as if node 1 was a blank failover target... here we repair to
        // node 2 instead).
        let keys: Vec<Vec<u8>> = (0..10u32)
            .map(|i| format!("k{i:03}").into_bytes())
            .collect();
        let mut t = SimTime::ZERO;
        for k in &keys {
            let r = ns[0].serve_put(t, k, b"payload");
            assert!(r.ok);
            t = r.done;
        }
        let shard_keys = vec![keys.clone()];
        let mut q = RepairQueue::new();
        q.enqueue(0, 2, RepairReason::Failover);
        assert_eq!(q.pending(), 1);
        let up = vec![true; 3];
        let cfg = ReplicationConfig::majority(2);
        let mut total = 0;
        for _ in 0..8 {
            total += q.step(&mut ns, &map, &up, &shard_keys, 4, t, &cfg, false);
            t += SimDuration::from_millis(100);
        }
        assert_eq!(total, 10);
        assert_eq!(q.pending(), 0);
        let s = q.stats();
        assert_eq!(s.jobs_done, 1);
        assert_eq!(s.keys_copied, 10);
        assert!(s.bytes_copied > 10 * 7);
        // The copy really landed on node 2.
        let r = ns[2].serve_get(t, &keys[0]);
        assert_eq!(r.value.as_deref(), Some(&b"payload"[..]));
    }

    #[test]
    fn repair_waits_for_a_live_source() {
        let mut ns = nodes(2);
        let topo = Topology::build(&[RackSpec {
            distance_cm: 1.0,
            spacing_cm: 1.0,
            nodes: 2,
        }]);
        let map = ShardMap::build(&topo, 1, 1, PlacementPolicy::CoLocated);
        let shard_keys = vec![vec![b"k".to_vec()]];
        let mut q = RepairQueue::new();
        q.enqueue(0, 1, RepairReason::Failover);
        // The only source (node 0) is down: nothing moves, job stays.
        let up = vec![false, true];
        let cfg = ReplicationConfig::majority(1);
        let moved = q.step(
            &mut ns,
            &map,
            &up,
            &shard_keys,
            8,
            SimTime::ZERO,
            &cfg,
            false,
        );
        assert_eq!(moved, 0);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn checksummed_repair_refuses_a_corrupt_source() {
        use crate::integrity;
        // Three replicas of shard 0; node 0 (the preferred source) holds
        // a corrupt copy, node 1 a verified one, node 2 is the target.
        let mut ns = nodes(3);
        let topo = Topology::build(&[RackSpec {
            distance_cm: 1.0,
            spacing_cm: 1.0,
            nodes: 3,
        }]);
        let map = ShardMap::build(&topo, 1, 3, PlacementPolicy::CoLocated);
        let key = b"k".to_vec();
        let sealed = integrity::seal(&key, b"payload");
        let mut corrupt = sealed.clone();
        corrupt[0] ^= 0x01;
        assert!(ns[0].serve_put(SimTime::ZERO, &key, &corrupt).ok);
        assert!(ns[1].serve_put(SimTime::ZERO, &key, &sealed).ok);
        let shard_keys = vec![vec![key.clone()]];
        let mut q = RepairQueue::new();
        q.enqueue(0, 2, RepairReason::Scrub);
        let up = vec![true; 3];
        let cfg = ReplicationConfig::majority(3);
        let mut t = SimTime::from_secs(1);
        let mut moved = 0;
        for _ in 0..4 {
            moved += q.step(&mut ns, &map, &up, &shard_keys, 4, t, &cfg, true);
            t += SimDuration::from_millis(100);
        }
        assert_eq!(moved, 1);
        // The target received the verified copy, not the corrupt one.
        let r = ns[2].serve_get(t, &key);
        assert_eq!(r.value.as_deref(), Some(&sealed[..]));
    }

    #[test]
    fn duplicate_jobs_are_not_enqueued_and_targets_can_be_cancelled() {
        let mut q = RepairQueue::new();
        q.enqueue(0, 1, RepairReason::Failover);
        q.enqueue(0, 1, RepairReason::CatchUp);
        assert_eq!(q.pending(), 1);
        q.enqueue(1, 1, RepairReason::CatchUp);
        q.cancel_target(1);
        assert_eq!(q.pending(), 0);
    }
}
