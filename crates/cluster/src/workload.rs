//! The closed-loop client population.
//!
//! `clients` independent clients each run issue → wait-for-reply → think
//! → repeat on the cluster timeline, so offered load self-throttles when
//! the cluster slows down (goodput and latency degrade together, as they
//! do for real closed-loop benchmarks). Key choice is uniform or
//! YCSB-style Zipf; the read/write mix is a Bernoulli draw per
//! operation. Every client owns a forked [`SimRng`] stream, so the whole
//! population is deterministic for a fixed seed.

use deepnote_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// How clients pick keys.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniform over the keyspace.
    Uniform,
    /// Zipf-skewed with the given exponent in `(0, 1)`.
    Zipf {
        /// Skew exponent (YCSB's theta).
        theta: f64,
    },
}

/// Client population parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Distinct keys in the keyspace.
    pub num_keys: u64,
    /// Key size in bytes.
    pub key_size: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Think time between a reply and the client's next request.
    pub think_time: SimDuration,
    /// Key popularity model.
    pub distribution: KeyDistribution,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            clients: 6,
            read_fraction: 0.5,
            num_keys: 1_200,
            key_size: 16,
            value_size: 96,
            think_time: SimDuration::from_millis(100),
            distribution: KeyDistribution::Uniform,
        }
    }
}

impl WorkloadSpec {
    /// A read-heavy population (90% reads): the shape that makes read
    /// retries, hedges, and end-to-end read integrity earn their keep
    /// in chaos campaigns.
    pub fn read_mostly() -> Self {
        WorkloadSpec {
            read_fraction: 0.9,
            ..WorkloadSpec::default()
        }
    }

    /// Encodes key index `i` as a fixed-width key.
    pub fn key(&self, i: u64) -> Vec<u8> {
        let mut k = format!("{i:016}").into_bytes();
        k.resize(self.key_size.max(16), b'0');
        k
    }

    /// A deterministic value for key index `i`.
    pub fn value(&self, i: u64) -> Vec<u8> {
        let mut v = format!("v{i:015}").into_bytes();
        v.resize(self.value_size.max(16), b'x');
        v
    }
}

/// One operation a client decided to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOp {
    /// Key index in `[0, num_keys)`.
    pub key_index: u64,
    /// Whether this is a read.
    pub is_read: bool,
}

/// One closed-loop client.
#[derive(Debug, Clone)]
pub struct Client {
    rng: SimRng,
}

impl Client {
    /// Draws the client's next operation.
    pub fn next_op(&mut self, spec: &WorkloadSpec) -> ClientOp {
        let is_read = self.rng.chance(spec.read_fraction);
        let key_index = match spec.distribution {
            KeyDistribution::Uniform => self.rng.below(spec.num_keys),
            KeyDistribution::Zipf { theta } => self.rng.zipf(spec.num_keys, theta),
        };
        ClientOp { key_index, is_read }
    }
}

/// The whole client population.
#[derive(Debug, Clone)]
pub struct ClientPool {
    clients: Vec<Client>,
}

impl ClientPool {
    /// Forks one RNG stream per client off `root`.
    pub fn new(spec: &WorkloadSpec, root: &mut SimRng) -> Self {
        assert!(spec.clients > 0, "workload needs at least one client");
        assert!(spec.num_keys > 0, "workload needs a non-empty keyspace");
        assert!(
            (0.0..=1.0).contains(&spec.read_fraction),
            "read fraction must be in [0, 1]"
        );
        ClientPool {
            clients: (0..spec.clients)
                .map(|i| Client {
                    rng: root.fork(i as u64),
                })
                .collect(),
        }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the pool is empty (it never is; see [`ClientPool::new`]).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Draws client `i`'s next operation.
    pub fn next_op(&mut self, i: usize, spec: &WorkloadSpec) -> ClientOp {
        self.clients[i].next_op(spec)
    }

    /// Staggered first-issue time for client `i`, spreading the
    /// population over one think interval so requests do not arrive in
    /// lockstep.
    pub fn first_issue(&self, i: usize, spec: &WorkloadSpec) -> SimTime {
        let step = spec.think_time.as_nanos() / self.clients.len().max(1) as u64;
        SimTime::ZERO + SimDuration::from_nanos(step * i as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_and_values_are_fixed_width_and_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.key(7).len(), 16);
        assert_eq!(spec.value(7).len(), 96);
        assert_eq!(spec.key(7), spec.key(7));
        assert_ne!(spec.key(7), spec.key(8));
    }

    #[test]
    fn population_is_deterministic_per_seed() {
        let spec = WorkloadSpec::default();
        let mut a = ClientPool::new(&spec, &mut SimRng::seeded(9));
        let mut b = ClientPool::new(&spec, &mut SimRng::seeded(9));
        for i in 0..spec.clients {
            for _ in 0..50 {
                assert_eq!(a.next_op(i, &spec), b.next_op(i, &spec));
            }
        }
    }

    #[test]
    fn clients_have_independent_streams() {
        let spec = WorkloadSpec::default();
        let mut pool = ClientPool::new(&spec, &mut SimRng::seeded(9));
        let a: Vec<_> = (0..20).map(|_| pool.next_op(0, &spec)).collect();
        let b: Vec<_> = (0..20).map(|_| pool.next_op(1, &spec)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn read_fraction_is_respected() {
        let spec = WorkloadSpec {
            read_fraction: 0.8,
            ..WorkloadSpec::default()
        };
        let mut pool = ClientPool::new(&spec, &mut SimRng::seeded(4));
        let reads = (0..2000).filter(|_| pool.next_op(0, &spec).is_read).count();
        assert!((1_450..1_750).contains(&reads), "reads={reads}");
    }

    #[test]
    fn first_issues_are_staggered_within_one_think_time() {
        let spec = WorkloadSpec::default();
        let pool = ClientPool::new(&spec, &mut SimRng::seeded(1));
        let times: Vec<_> = (0..spec.clients)
            .map(|i| pool.first_issue(i, &spec))
            .collect();
        assert_eq!(times[0], SimTime::ZERO);
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*times.last().unwrap() < SimTime::ZERO + spec.think_time);
    }

    #[test]
    fn zipf_skews_toward_hot_keys() {
        let spec = WorkloadSpec {
            distribution: KeyDistribution::Zipf { theta: 0.9 },
            ..WorkloadSpec::default()
        };
        let mut pool = ClientPool::new(&spec, &mut SimRng::seeded(5));
        let low = (0..2000)
            .filter(|_| pool.next_op(0, &spec).key_index < spec.num_keys / 10)
            .count();
        assert!(low > 1000, "low-decile draws = {low}");
    }
}
