//! Failure detection: heartbeats, probe timeouts, and down-time tracking.
//!
//! The monitor never reads the physics — it infers node health the way a
//! real control plane does, from probe round-trips on the cluster
//! timeline. A node wedged in a blocked WAL sync answers its probe tens
//! of seconds late, which is indistinguishable from a dead process, so
//! consecutive probe misses mark it down; a crashed engine refuses
//! immediately, which marks it down too.

use deepnote_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Health-monitor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Interval between heartbeat rounds.
    pub heartbeat_every: SimDuration,
    /// A probe slower than this is a miss.
    pub probe_timeout: SimDuration,
    /// Consecutive misses before a node is marked down.
    pub miss_threshold: u32,
    /// Down-time after which a node's replica slots are failed over.
    pub failover_after: SimDuration,
    /// Minimum spacing between restart attempts on a crashed node.
    pub restart_backoff: SimDuration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            heartbeat_every: SimDuration::from_millis(500),
            probe_timeout: SimDuration::from_millis(250),
            miss_threshold: 2,
            failover_after: SimDuration::from_secs(10),
            restart_backoff: SimDuration::from_secs(5),
        }
    }
}

/// The monitor's belief about one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Answering probes on time.
    Up,
    /// Missing probes, not yet declared down.
    Suspect {
        /// Consecutive misses so far.
        misses: u32,
    },
    /// Declared down.
    Down {
        /// When the node was declared down.
        since: SimTime,
    },
}

/// What a heartbeat round decided about one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No change of state.
    None,
    /// The node was just declared down.
    WentDown,
    /// The node was just declared up again.
    CameUp,
}

/// Tracks probe history and health per node.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    states: Vec<NodeHealth>,
    last_restart_attempt: Vec<Option<SimTime>>,
}

impl HealthMonitor {
    /// A monitor that believes all `nodes` are up.
    pub fn new(nodes: usize, config: HealthConfig) -> Self {
        HealthMonitor {
            config,
            states: vec![NodeHealth::Up; nodes],
            last_restart_attempt: vec![None; nodes],
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Current belief about `node`.
    pub fn state(&self, node: usize) -> NodeHealth {
        self.states[node]
    }

    /// Whether `node` is believed serviceable.
    pub fn is_up(&self, node: usize) -> bool {
        !matches!(self.states[node], NodeHealth::Down { .. })
    }

    /// `is_up` for every node, as a mask.
    pub fn up_mask(&self) -> Vec<bool> {
        (0..self.states.len()).map(|n| self.is_up(n)).collect()
    }

    /// Records a probe outcome for `node`: the probe was issued at `now`
    /// and answered (or refused) with round-trip `rtt`; `ok` is whether
    /// the engine served it.
    pub fn observe_probe(
        &mut self,
        node: usize,
        now: SimTime,
        rtt: SimDuration,
        ok: bool,
    ) -> Transition {
        let missed = !ok || rtt > self.config.probe_timeout;
        let state = &mut self.states[node];
        if missed {
            match *state {
                NodeHealth::Down { .. } => Transition::None,
                NodeHealth::Up => {
                    *state = if self.config.miss_threshold <= 1 {
                        NodeHealth::Down { since: now }
                    } else {
                        NodeHealth::Suspect { misses: 1 }
                    };
                    if matches!(*state, NodeHealth::Down { .. }) {
                        Transition::WentDown
                    } else {
                        Transition::None
                    }
                }
                NodeHealth::Suspect { misses } => {
                    let misses = misses + 1;
                    if misses >= self.config.miss_threshold {
                        *state = NodeHealth::Down { since: now };
                        Transition::WentDown
                    } else {
                        *state = NodeHealth::Suspect { misses };
                        Transition::None
                    }
                }
            }
        } else {
            match *state {
                NodeHealth::Up => Transition::None,
                NodeHealth::Suspect { .. } => {
                    *state = NodeHealth::Up;
                    Transition::None
                }
                NodeHealth::Down { .. } => {
                    *state = NodeHealth::Up;
                    Transition::CameUp
                }
            }
        }
    }

    /// Marks `node` down immediately (a coordinator saw a fatal error
    /// from it — faster than waiting for probes to miss).
    pub fn mark_down(&mut self, node: usize, now: SimTime) -> Transition {
        match self.states[node] {
            NodeHealth::Down { .. } => Transition::None,
            _ => {
                self.states[node] = NodeHealth::Down { since: now };
                Transition::WentDown
            }
        }
    }

    /// How long `node` has been down at `now` (zero when up).
    pub fn down_for(&self, node: usize, now: SimTime) -> SimDuration {
        match self.states[node] {
            NodeHealth::Down { since } => now.saturating_duration_since(since),
            _ => SimDuration::ZERO,
        }
    }

    /// Whether the operator should try rebooting `node` at `now`, and if
    /// so, records the attempt.
    pub fn take_restart_slot(&mut self, node: usize, now: SimTime) -> bool {
        if !matches!(self.states[node], NodeHealth::Down { .. }) {
            return false;
        }
        let due = match self.last_restart_attempt[node] {
            None => self.down_for(node, now) >= self.config.restart_backoff,
            Some(last) => now.saturating_duration_since(last) >= self.config.restart_backoff,
        };
        if due {
            self.last_restart_attempt[node] = Some(now);
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(3, HealthConfig::default())
    }

    #[test]
    fn misses_accumulate_to_down() {
        let mut m = monitor();
        let t = SimTime::from_secs(1);
        let slow = SimDuration::from_secs(1);
        assert_eq!(m.observe_probe(0, t, slow, true), Transition::None);
        assert_eq!(m.state(0), NodeHealth::Suspect { misses: 1 });
        assert_eq!(m.observe_probe(0, t, slow, true), Transition::WentDown);
        assert!(!m.is_up(0));
        // Other nodes untouched.
        assert!(m.is_up(1));
    }

    #[test]
    fn fast_probe_clears_suspicion_and_down() {
        let mut m = monitor();
        let t = SimTime::from_secs(1);
        let fast = SimDuration::from_millis(1);
        let slow = SimDuration::from_secs(1);
        m.observe_probe(0, t, slow, true);
        assert_eq!(m.observe_probe(0, t, fast, true), Transition::None);
        assert_eq!(m.state(0), NodeHealth::Up);
        m.mark_down(0, t);
        assert_eq!(m.observe_probe(0, t, fast, true), Transition::CameUp);
        assert!(m.is_up(0));
    }

    #[test]
    fn refused_probe_is_a_miss_even_when_fast() {
        let mut m = monitor();
        let t = SimTime::from_secs(1);
        let fast = SimDuration::from_millis(1);
        m.observe_probe(0, t, fast, false);
        m.observe_probe(0, t, fast, false);
        assert!(!m.is_up(0));
    }

    #[test]
    fn down_for_measures_from_declaration() {
        let mut m = monitor();
        m.mark_down(2, SimTime::from_secs(10));
        assert_eq!(
            m.down_for(2, SimTime::from_secs(25)),
            SimDuration::from_secs(15)
        );
        assert_eq!(m.down_for(0, SimTime::from_secs(25)), SimDuration::ZERO);
    }

    #[test]
    fn restart_slots_respect_backoff() {
        let mut m = monitor();
        m.mark_down(1, SimTime::ZERO);
        // Too soon after going down.
        assert!(!m.take_restart_slot(1, SimTime::from_secs(1)));
        assert!(m.take_restart_slot(1, SimTime::from_secs(6)));
        // Backoff applies between attempts.
        assert!(!m.take_restart_slot(1, SimTime::from_secs(8)));
        assert!(m.take_restart_slot(1, SimTime::from_secs(12)));
        // Up nodes never get a slot.
        assert!(!m.take_restart_slot(0, SimTime::from_secs(60)));
    }
}
