//! The assembled cluster: nodes in a tank, a shard map, a health
//! monitor, and a repair queue, all driven from one control plane.
//!
//! [`Cluster`] owns the physics wiring — every node's drive hangs off
//! the same [`Testbed`], so mounting an attack frequency applies each
//! node's distance-specific vibration — and the distributed-systems
//! wiring: quorum dispatch, failure detection, failover, and
//! re-replication.

use crate::chaos::ChaosProfile;
use crate::error::ClusterError;
use crate::health::{HealthConfig, HealthMonitor, Transition};
use crate::integrity::{self, IntegrityConfig, IntegrityStats, ScrubStats, Scrubber};
use crate::node::{RestartOutcome, StorageNode};
use crate::placement::{shard_of, NodeId, PlacementPolicy, RackSpec, ShardId, ShardMap, Topology};
use crate::replication::{
    quorum_execute, OpKind, QuorumOutcome, RepairQueue, RepairReason, RepairStats,
    ReplicationConfig,
};
use crate::workload::WorkloadSpec;
use deepnote_acoustics::{Distance, Frequency, OperatingPoint};
use deepnote_blockdev::{ChaosEvent, ChaosStats};
use deepnote_core::testbed::Testbed;
use deepnote_core::threat::AttackParams;
use deepnote_hdd::VibrationState;
use deepnote_kv::DbConfig;
use deepnote_sim::{SimDuration, SimRng, SimTime};
use deepnote_structures::Scenario;
use deepnote_telemetry::{Layer, Tracer, Value, CONTROL_TRACK};
use serde::{Deserialize, Serialize};

/// Everything needed to stand a cluster up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Enclosure/mount scenario for the testbed physics.
    pub scenario: Scenario,
    /// Physical racks, nearest to the attack point first.
    pub racks: Vec<RackSpec>,
    /// Number of shards the keyspace hashes onto.
    pub num_shards: usize,
    /// Replica placement policy.
    pub placement: PlacementPolicy,
    /// Quorum settings.
    pub replication: ReplicationConfig,
    /// Failure-detection settings.
    pub health: HealthConfig,
    /// End-to-end integrity machinery (off by default).
    pub integrity: IntegrityConfig,
}

impl ClusterConfig {
    /// The standard three-rack duel layout: one rack inside the blast
    /// radius (1 cm) and two acoustically safe racks (60 cm, 120 cm),
    /// three nodes each, majority quorums over three replicas.
    pub fn three_racks(placement: PlacementPolicy) -> Self {
        ClusterConfig {
            scenario: Scenario::PlasticTower,
            racks: vec![
                RackSpec {
                    distance_cm: 1.0,
                    spacing_cm: 1.0,
                    nodes: 3,
                },
                RackSpec {
                    distance_cm: 60.0,
                    spacing_cm: 1.0,
                    nodes: 3,
                },
                RackSpec {
                    distance_cm: 120.0,
                    spacing_cm: 1.0,
                    nodes: 3,
                },
            ],
            num_shards: 12,
            placement,
            replication: ReplicationConfig::majority(3),
            health: HealthConfig::default(),
            integrity: IntegrityConfig::off(),
        }
    }

    /// Database tuning for serving nodes: small memtables and frequent
    /// group commits, like an online store rather than a bulk loader.
    pub fn node_db_config() -> DbConfig {
        DbConfig {
            memtable_limit_bytes: 64 << 10,
            wal_sync_every_ops: 128,
            ..DbConfig::default()
        }
    }
}

/// The running cluster.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    testbed: Testbed,
    topo: Topology,
    nodes: Vec<StorageNode>,
    map: ShardMap,
    monitor: HealthMonitor,
    repairs: RepairQueue,
    shard_keys: Vec<Vec<Vec<u8>>>,
    current_attack: Option<Frequency>,
    failovers: u64,
    events: Vec<String>,
    integrity: IntegrityStats,
    scrubber: Scrubber,
    tracer: Tracer,
    /// The first node the monitor ever marked down, and when — the
    /// incident report's "which replica degraded first".
    first_down: Option<(NodeId, SimTime)>,
}

/// Health probes read this key; it never collides with workload keys.
const PROBE_KEY: &[u8] = b"__health_probe__";

impl Cluster {
    /// Builds and launches every node, healthy and silent.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NodeLaunch`] if any node fails to format its
    /// fresh drive.
    pub fn new(config: ClusterConfig) -> Result<Self, ClusterError> {
        Self::with_chaos(config, &ChaosProfile::off(), &mut SimRng::seeded(0))
    }

    /// Builds and launches every node with `chaos` injected into its
    /// drive and serving path, forking one RNG stream per node off
    /// `rng`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NodeLaunch`] if any node fails to format its
    /// fresh drive.
    pub fn with_chaos(
        config: ClusterConfig,
        chaos: &ChaosProfile,
        rng: &mut SimRng,
    ) -> Result<Self, ClusterError> {
        let topo = Topology::build(&config.racks);
        let map = ShardMap::build(
            &topo,
            config.num_shards,
            config.replication.replication,
            config.placement,
        );
        let nodes: Vec<StorageNode> = (0..topo.nodes())
            .map(|n| {
                StorageNode::launch_with(
                    n,
                    topo.node_rack[n],
                    topo.node_distance[n],
                    ClusterConfig::node_db_config(),
                    chaos,
                    rng.fork(n as u64),
                )
            })
            .collect::<Result<_, _>>()?;
        let monitor = HealthMonitor::new(nodes.len(), config.health);
        Ok(Cluster {
            testbed: Testbed::paper_default(config.scenario),
            topo,
            nodes,
            map,
            monitor,
            repairs: RepairQueue::new(),
            shard_keys: vec![Vec::new(); config.num_shards],
            current_attack: None,
            failovers: 0,
            events: Vec::new(),
            integrity: IntegrityStats::default(),
            scrubber: Scrubber::default(),
            tracer: Tracer::disabled(),
            first_down: None,
            config,
        })
    }

    /// Attaches a tracer to the control plane and every node's stack.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for node in &mut self.nodes {
            node.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// A control-plane instant (cluster-timeline timestamps, never
    /// offset-shifted).
    fn trace_event(&self, name: &'static str, now: SimTime, args: Vec<(&'static str, Value)>) {
        self.tracer
            .instant(Layer::Cluster, CONTROL_TRACK, name, now, args);
    }

    /// The first node ever marked down and when, if any node was.
    pub fn first_down(&self) -> Option<(NodeId, SimTime)> {
        self.first_down
    }

    fn mark_first_down(&mut self, n: NodeId, now: SimTime) {
        if self.first_down.is_none() {
            self.first_down = Some((n, now));
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The nodes (report access).
    pub fn nodes(&self) -> &[StorageNode] {
        &self.nodes
    }

    /// The shard map (report access).
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The health monitor's current beliefs.
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// Failovers executed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Repair totals so far.
    pub fn repair_stats(&self) -> RepairStats {
        self.repairs.stats()
    }

    /// Control-plane event log (deterministic, human-readable).
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Routes a key to its shard.
    pub fn shard_for(&self, key: &[u8]) -> ShardId {
        shard_of(key, self.config.num_shards)
    }

    /// Loads the whole keyspace onto every replica before the campaign
    /// (provisioning time is off the cluster timeline) and memoizes the
    /// per-shard key lists the repair path copies from.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Provision`] if a preload write fails, or
    /// [`ClusterError::NodeNotRunning`] if a replica is already down.
    pub fn provision(&mut self, spec: &WorkloadSpec) -> Result<(), ClusterError> {
        let mut per_node: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); self.nodes.len()];
        for i in 0..spec.num_keys {
            let key = spec.key(i);
            let value = if self.config.integrity.checksums {
                integrity::seal(&key, &spec.value(i))
            } else {
                spec.value(i)
            };
            let shard = self.shard_for(&key);
            self.shard_keys[shard].push(key.clone());
            for &n in self.map.replicas(shard) {
                per_node[n].push((key.clone(), value.clone()));
            }
        }
        for (n, pairs) in per_node.iter().enumerate() {
            self.nodes[n].preload(pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))?;
        }
        Ok(())
    }

    /// Precomputes the acoustic transfer path for every steady-state
    /// tone in `frequencies`, at every node's position: the testbed gets
    /// a received-SPL/displacement table (so retunes, SPL queries, and
    /// trace annotations stop re-walking the physics chain), and every
    /// node's drive gets a servo-residual table (so metrics probes and
    /// degraded-I/O traces answer from a lookup). Tables store exactly
    /// what the uncached paths compute, so campaign reports are
    /// byte-identical with or without this call — it only changes how
    /// fast they are produced. Call after [`Cluster::with_chaos`] /
    /// [`Cluster::provision`], once the tone set is known.
    pub fn precompute_transfer(&mut self, frequencies: &[Frequency]) {
        if frequencies.is_empty() {
            return;
        }
        let distances: Vec<Distance> = self.nodes.iter().map(StorageNode::position).collect();
        self.testbed = self
            .testbed
            .clone()
            .with_transfer_cache(frequencies, &distances);
        for n in 0..self.nodes.len() {
            let position = self.nodes[n].position();
            // The template carries the position/water/scenario part of
            // the key; lookups mint per-tone keys by substituting the
            // live frequency.
            let template = self.testbed.operating_point(frequencies[0], position);
            let tones: Vec<(OperatingPoint, VibrationState)> = frequencies
                .iter()
                .map(|&f| {
                    (
                        self.testbed.operating_point(f, position),
                        self.testbed.vibration_at(f, position),
                    )
                })
                .collect();
            self.nodes[n].install_transfer_cache(template, &tones);
        }
    }

    /// Retunes (or silences) the speaker at cluster time `now`: every
    /// node receives the vibration for its own distance. With a tracer
    /// attached, each node's received tone (SPL, residual off-track)
    /// lands on the acoustics layer.
    pub fn set_attack(&mut self, frequency: Option<Frequency>, now: SimTime) {
        if frequency.map(|f| f.hz()) == self.current_attack.map(|f| f.hz()) {
            return;
        }
        self.current_attack = frequency;
        for n in 0..self.nodes.len() {
            let node = &self.nodes[n];
            match frequency {
                Some(f) => self.testbed.mount_attack(
                    node.vibration(),
                    AttackParams {
                        frequency: f,
                        distance: node.position(),
                    },
                ),
                None => self.testbed.stop_attack(node.vibration()),
            }
            if !self.tracer.enabled(Layer::Acoustics) {
                continue;
            }
            match frequency {
                Some(f) => {
                    let node = &self.nodes[n];
                    let spl = self.testbed.received_spl(AttackParams {
                        frequency: f,
                        distance: node.position(),
                    });
                    // The vibration input is already mounted: the probe
                    // reads the servo's response to this very tone.
                    let offtrack_nm = node.probe().offtrack_nm;
                    self.tracer.instant(
                        Layer::Acoustics,
                        CONTROL_TRACK,
                        "tone",
                        now,
                        vec![
                            ("node", Value::U64(n as u64)),
                            ("freq_hz", Value::F64(f.hz())),
                            ("spl_db", Value::F64(spl.db())),
                            ("offtrack_nm", Value::F64(offtrack_nm)),
                        ],
                    );
                }
                None => self.tracer.instant(
                    Layer::Acoustics,
                    CONTROL_TRACK,
                    "silence",
                    now,
                    vec![("node", Value::U64(n as u64))],
                ),
            }
        }
    }

    /// The frequency currently transmitted, if any.
    pub fn current_attack(&self) -> Option<Frequency> {
        self.current_attack
    }

    /// Received sound pressure level at node `n` under the current
    /// tone, in dB (0 when the speaker is silent).
    pub fn received_spl_db(&self, n: NodeId) -> f64 {
        match self.current_attack {
            Some(f) => self
                .testbed
                .received_spl(AttackParams {
                    frequency: f,
                    distance: self.nodes[n].position(),
                })
                .db(),
            None => 0.0,
        }
    }

    /// Executes one client operation through the quorum coordinator.
    pub fn execute(
        &mut self,
        is_read: bool,
        key: &[u8],
        value: &[u8],
        now: SimTime,
    ) -> QuorumOutcome {
        self.execute_masked(is_read, key, value, now, None)
    }

    /// [`Cluster::execute`] with an optional client-side deny mask
    /// (circuit breakers): `denied[n]` suppresses dispatch to node `n`
    /// on top of the health monitor's belief. With checksums on, writes
    /// are sealed and every read ack is verified end-to-end; corrupt
    /// acks are never served and (with read-repair on) are rewritten
    /// inline from the earliest verified copy.
    pub fn execute_masked(
        &mut self,
        is_read: bool,
        key: &[u8],
        value: &[u8],
        now: SimTime,
        denied: Option<&[bool]>,
    ) -> QuorumOutcome {
        let shard = self.shard_for(key);
        let mut up = self.monitor.up_mask();
        if let Some(denied) = denied {
            for (u, &d) in up.iter_mut().zip(denied) {
                if d {
                    *u = false;
                }
            }
        }
        let kind = if is_read { OpKind::Read } else { OpKind::Write };
        let sealed;
        let payload = if !is_read && self.config.integrity.checksums {
            sealed = integrity::seal(key, value);
            sealed.as_slice()
        } else {
            value
        };
        let mut outcome = quorum_execute(
            &mut self.nodes,
            self.map.replicas(shard),
            &up,
            kind,
            key,
            payload,
            now,
            &self.config.replication,
        );
        for &n in &outcome.fatalities.clone() {
            self.note_fatal(n, now);
        }
        if is_read && self.config.integrity.checksums {
            self.verify_read(key, now, &mut outcome);
        }
        if !outcome.ok && self.tracer.enabled(Layer::Cluster) {
            self.trace_event(
                "quorum_fail",
                now,
                vec![
                    ("shard", Value::U64(shard as u64)),
                    ("op", Value::Str(if is_read { "read" } else { "write" })),
                    ("acks", Value::U64(outcome.acks as u64)),
                ],
            );
        }
        outcome
    }

    fn note_fatal(&mut self, n: NodeId, now: SimTime) {
        if self.monitor.mark_down(n, now) == Transition::WentDown {
            self.note(now, format!("node {n} crashed (fatal storage error)"));
            self.mark_first_down(n, now);
            self.trace_event(
                "node_down",
                now,
                vec![
                    ("node", Value::U64(n as u64)),
                    ("reason", Value::Str("fatal_storage_error")),
                ],
            );
            self.repairs.cancel_target(n);
        }
    }

    /// End-to-end verification of a quorum read: serve only the
    /// earliest verified copy, count corrupt acks, and (optionally)
    /// rewrite them inline. A read that acked a quorum but produced no
    /// verifiable value is downgraded to a failure — serving bytes the
    /// checksum rejects is exactly what this layer exists to prevent.
    fn verify_read(&mut self, key: &[u8], now: SimTime, outcome: &mut QuorumOutcome) {
        if !outcome.ok {
            return;
        }
        let mut healthy: Option<Vec<u8>> = None;
        let mut corrupt: Vec<NodeId> = Vec::new();
        let mut saw_value = false;
        for r in &outcome.replies {
            if !r.ok {
                continue;
            }
            let Some(v) = &r.value else { continue };
            saw_value = true;
            if integrity::verify(key, v) {
                if healthy.is_none() {
                    healthy = Some(v.clone());
                }
            } else {
                corrupt.push(r.node);
            }
        }
        self.integrity.corrupt_acks += corrupt.len() as u64;
        match healthy {
            Some(sealed_copy) => {
                outcome.value = integrity::unseal(key, &sealed_copy).map(<[u8]>::to_vec);
                if self.config.integrity.read_repair {
                    for n in corrupt {
                        let w = self.nodes[n].serve_put(now, key, &sealed_copy);
                        if w.ok {
                            self.integrity.read_repairs += 1;
                        } else {
                            self.integrity.read_repair_failures += 1;
                            if w.fatal {
                                self.note_fatal(n, now);
                            }
                        }
                    }
                }
            }
            None if saw_value => {
                // Every ack with a value was corrupt: refuse the read.
                self.integrity.unserveable_reads += 1;
                outcome.ok = false;
                outcome.value = None;
            }
            None => {
                // A genuine miss (no replica holds the key): the quorum
                // stands, there is just nothing to serve.
                outcome.value = None;
            }
        }
    }

    /// Integrates a client-side circuit-breaker trip: evidence of
    /// repeated failures the heartbeat path may not have seen yet. The
    /// trip is fed to the monitor as a missed probe, so persistent
    /// tripping marks the node down without waiting for heartbeats.
    pub fn report_breaker_trip(&mut self, node: NodeId, now: SimTime) {
        let miss = self.monitor.config().probe_timeout + SimDuration::from_millis(1);
        if self.monitor.observe_probe(node, now, miss, false) == Transition::WentDown {
            self.note(now, format!("node {node} marked down (circuit breaker)"));
            self.mark_first_down(node, now);
            self.trace_event(
                "node_down",
                now,
                vec![
                    ("node", Value::U64(node as u64)),
                    ("reason", Value::Str("circuit_breaker")),
                ],
            );
            self.repairs.cancel_target(node);
        }
    }

    /// One heartbeat round: probe every node, integrate transitions,
    /// attempt reboots of crashed nodes, and fail over replicas that
    /// have been down too long.
    pub fn heartbeat(&mut self, now: SimTime) {
        for n in 0..self.nodes.len() {
            let r = self.nodes[n].serve_get(now, PROBE_KEY);
            let rtt = r.done.saturating_duration_since(now);
            match self.monitor.observe_probe(n, now, rtt, r.ok) {
                Transition::WentDown => {
                    self.note(now, format!("node {n} marked down (probe timeout)"));
                    self.mark_first_down(n, now);
                    self.trace_event(
                        "node_down",
                        now,
                        vec![
                            ("node", Value::U64(n as u64)),
                            ("reason", Value::Str("probe_timeout")),
                        ],
                    );
                    self.repairs.cancel_target(n);
                }
                Transition::CameUp => {
                    self.note(now, format!("node {n} back up"));
                    self.trace_event("node_up", now, vec![("node", Value::U64(n as u64))]);
                    self.enqueue_catch_up(n);
                }
                Transition::None => {}
            }
        }
        self.attempt_restarts(now);
        self.attempt_failovers(now);
    }

    fn attempt_restarts(&mut self, now: SimTime) {
        for n in 0..self.nodes.len() {
            if self.nodes[n].running()
                || self.nodes[n].busy_until() > now
                || !self.monitor.take_restart_slot(n, now)
            {
                continue;
            }
            match self.nodes[n].try_restart(now) {
                RestartOutcome::StillDead => {
                    self.note(now, format!("node {n} reboot failed (medium unresponsive)"));
                    self.trace_event(
                        "reboot",
                        now,
                        vec![
                            ("node", Value::U64(n as u64)),
                            ("outcome", Value::Str("failed")),
                        ],
                    );
                }
                outcome => {
                    if outcome == RestartOutcome::RecoveredBlank {
                        self.note(now, format!("node {n} rebooted on a blank drive"));
                    } else {
                        self.note(now, format!("node {n} rebooted"));
                    }
                    self.trace_event(
                        "reboot",
                        now,
                        vec![
                            ("node", Value::U64(n as u64)),
                            (
                                "outcome",
                                Value::Str(if outcome == RestartOutcome::RecoveredBlank {
                                    "blank_drive"
                                } else {
                                    "ok"
                                }),
                            ),
                        ],
                    );
                    // A swapped drive carries a fresh vibration input:
                    // re-mount the ongoing attack, if any.
                    if let Some(f) = self.current_attack {
                        self.testbed.mount_attack(
                            self.nodes[n].vibration(),
                            AttackParams {
                                frequency: f,
                                distance: self.nodes[n].position(),
                            },
                        );
                    }
                    if self.monitor.observe_probe(n, now, SimDuration::ZERO, true)
                        == Transition::CameUp
                    {
                        self.enqueue_catch_up(n);
                    }
                }
            }
        }
    }

    fn attempt_failovers(&mut self, now: SimTime) {
        let failover_after = self.monitor.config().failover_after;
        for n in 0..self.nodes.len() {
            if self.monitor.down_for(n, now) < failover_after {
                continue;
            }
            let up = self.monitor.up_mask();
            for shard in self.map.shards_on(n) {
                // A replacement replica can only be built from a live
                // peer; a shard whose whole replica set is dead stays
                // pinned to its nodes until they come back (failing over
                // to blank drives would "restore" availability by
                // silently losing the data).
                if !self.map.replicas(shard).iter().any(|&m| m != n && up[m]) {
                    continue;
                }
                let Some(target) = self.map.failover_target(shard, n, &self.topo, &up) else {
                    continue;
                };
                if !self.map.reassign(shard, n, target) {
                    continue;
                }
                self.repairs.enqueue(shard, target, RepairReason::Failover);
                self.failovers += 1;
                self.note(
                    now,
                    format!("shard {shard} failed over from node {n} to node {target}"),
                );
                self.trace_event(
                    "failover",
                    now,
                    vec![
                        ("shard", Value::U64(shard as u64)),
                        ("from", Value::U64(n as u64)),
                        ("to", Value::U64(target as u64)),
                    ],
                );
            }
        }
    }

    /// A rejoined node catches up on every shard it still replicates,
    /// copying from a peer that stayed up.
    fn enqueue_catch_up(&mut self, n: NodeId) {
        for shard in self.map.shards_on(n) {
            self.repairs.enqueue(shard, n, RepairReason::CatchUp);
        }
    }

    /// Runs one bounded repair step; returns keys moved.
    pub fn repair_step(&mut self, now: SimTime, batch: usize) -> u64 {
        let up = self.monitor.up_mask();
        self.repairs.step(
            &mut self.nodes,
            &self.map,
            &up,
            &self.shard_keys,
            batch,
            now,
            &self.config.replication,
            self.config.integrity.checksums,
        )
    }

    /// Pending repair jobs.
    pub fn pending_repairs(&self) -> usize {
        self.repairs.pending()
    }

    /// Advances the background scrubber by up to `budget` keys at `now`:
    /// each key's live replicas are read through the real storage stacks
    /// (bandwidth is paid and accounted), corrupt or missing copies are
    /// classified against a verified sibling, and repair jobs are
    /// enqueued for the damage. Returns keys examined. No-op unless the
    /// cluster runs checksums with scrubbing enabled.
    pub fn scrub_step(&mut self, now: SimTime, budget: usize) -> u64 {
        if !self.config.integrity.scrub || !self.config.integrity.checksums {
            return 0;
        }
        let total_keys: usize = self.shard_keys.iter().map(Vec::len).sum();
        if total_keys == 0 {
            return 0;
        }
        let deadline = now + self.config.replication.request_timeout;
        let mut t = now;
        let mut scanned = 0u64;
        while scanned < budget as u64 {
            // Skip empty shards (the cursor always lands on a real key).
            while self.shard_keys[self.scrubber.shard].is_empty() {
                self.scrubber.advance(1, self.config.num_shards);
            }
            let shard = self.scrubber.shard;
            let key = self.shard_keys[shard][self.scrubber.key].clone();
            let replicas = self.map.replicas(shard).to_vec();
            let mut reads: Vec<(NodeId, Option<Vec<u8>>)> = Vec::new();
            for n in replicas {
                if !self.monitor.is_up(n) || self.nodes[n].busy_until() > deadline {
                    continue;
                }
                let r = self.nodes[n].serve_get(t, &key);
                t = r.done;
                self.scrubber.stats.replicas_read += 1;
                if !r.ok {
                    continue; // transient failure: next pass retries
                }
                if let Some(v) = &r.value {
                    self.scrubber.stats.bytes_read += v.len() as u64;
                }
                reads.push((n, r.value));
            }
            let verdict = Scrubber::classify(&key, &reads);
            self.scrubber.stats.corrupt_found += verdict.corrupt.len() as u64;
            if verdict.healthy.is_some() {
                // Only count/repair missing copies when a sibling proves
                // the key exists; and only enqueue repairs when there is
                // something verified to copy from.
                self.scrubber.stats.missing_found += verdict.missing.len() as u64;
                for n in verdict.corrupt.iter().chain(verdict.missing.iter()) {
                    if self.repairs.enqueue(shard, *n, RepairReason::Scrub) {
                        self.scrubber.stats.repairs_enqueued += 1;
                        self.trace_event(
                            "scrub_repair",
                            t,
                            vec![
                                ("shard", Value::U64(shard as u64)),
                                ("node", Value::U64(*n as u64)),
                            ],
                        );
                    }
                }
            }
            scanned += 1;
            self.scrubber.stats.keys_scanned += 1;
            let keys_in_shard = self.shard_keys[shard].len();
            self.scrubber.advance(keys_in_shard, self.config.num_shards);
        }
        scanned
    }

    /// Scrubber work and findings so far.
    pub fn scrub_stats(&self) -> ScrubStats {
        self.scrubber.stats
    }

    /// End-to-end integrity outcomes so far.
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.integrity
    }

    /// Adds campaign-level oracle outcomes to the integrity counters.
    pub fn record_oracle(&mut self, checked: u64, wrong: u64) {
        self.integrity.oracle_checked += checked;
        self.integrity.oracle_wrong += wrong;
    }

    /// Per-node device chaos counters (drives since retired included).
    pub fn chaos_stats(&self) -> Vec<ChaosStats> {
        self.nodes.iter().map(StorageNode::chaos_stats).collect()
    }

    /// Per-node device fault traces, in request order.
    pub fn fault_traces(&self) -> Vec<Vec<ChaosEvent>> {
        self.nodes.iter().map(StorageNode::fault_trace).collect()
    }

    /// Shards currently below their write quorum (no write can succeed).
    pub fn unavailable_shards(&self, now: SimTime) -> usize {
        let deadline = now + self.config.replication.request_timeout;
        (0..self.map.shards())
            .filter(|&s| {
                let serviceable = self
                    .map
                    .replicas(s)
                    .iter()
                    .filter(|&&n| self.monitor.is_up(n) && self.nodes[n].busy_until() <= deadline)
                    .count();
                serviceable < self.config.replication.write_quorum
            })
            .count()
    }

    fn note(&mut self, now: SimTime, what: String) {
        self.events
            .push(format!("t={:7.1}s  {what}", now.as_secs_f64()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            num_keys: 120,
            ..WorkloadSpec::default()
        }
    }

    fn cluster(placement: PlacementPolicy) -> Cluster {
        let mut c = Cluster::new(ClusterConfig::three_racks(placement)).expect("launch");
        c.provision(&small_spec()).expect("provision");
        c
    }

    #[test]
    fn provision_makes_every_key_readable_by_quorum() {
        let mut c = cluster(PlacementPolicy::Separated);
        let spec = small_spec();
        let mut t = SimTime::ZERO;
        for i in (0..spec.num_keys).step_by(17) {
            let key = spec.key(i);
            let r = c.execute(true, &key, b"", t);
            assert!(r.ok, "key {i}: {r:?}");
            assert_eq!(r.value, Some(spec.value(i)), "key {i}");
            t += r.latency;
        }
    }

    #[test]
    fn quiet_cluster_reports_no_unavailable_shards() {
        let c = cluster(PlacementPolicy::CoLocated);
        assert_eq!(c.unavailable_shards(SimTime::ZERO), 0);
        assert_eq!(c.failovers(), 0);
        assert_eq!(c.pending_repairs(), 0);
    }

    #[test]
    fn attack_kills_near_rack_quorums_for_colocated_only() {
        let spec = small_spec();
        for (placement, expect_unavailable) in [
            (PlacementPolicy::CoLocated, true),
            (PlacementPolicy::Separated, false),
        ] {
            let mut c = cluster(placement);
            c.set_attack(Some(Frequency::from_hz(650.0)), SimTime::ZERO);
            // Drive writes until the near-rack engines die, with
            // heartbeats so the monitor notices.
            let mut t = SimTime::ZERO;
            for i in 0..600u64 {
                let key = spec.key(i % spec.num_keys);
                let r = c.execute(false, &key, b"update", t);
                t = t + r.latency + SimDuration::from_millis(20);
                if i % 25 == 0 {
                    c.heartbeat(t);
                }
            }
            c.heartbeat(t);
            let unavailable = c.unavailable_shards(t);
            if expect_unavailable {
                assert!(unavailable > 0, "{placement:?} kept all shards available");
            } else {
                assert_eq!(unavailable, 0, "{placement:?} lost shards");
            }
            let crashes: u64 = c.nodes().iter().map(|n| n.counters().crashes).sum();
            assert!(crashes >= 1, "{placement:?}: no node crashed");
        }
    }

    #[test]
    fn events_are_recorded_with_timestamps() {
        let mut c = cluster(PlacementPolicy::CoLocated);
        c.set_attack(Some(Frequency::from_hz(650.0)), SimTime::ZERO);
        let spec = small_spec();
        let mut t = SimTime::ZERO;
        for i in 0..400u64 {
            let key = spec.key(i % spec.num_keys);
            let r = c.execute(false, &key, b"x", t);
            t = t + r.latency + SimDuration::from_millis(10);
        }
        c.heartbeat(t);
        assert!(
            c.events()
                .iter()
                .any(|e| e.contains("crashed") || e.contains("down")),
            "events: {:?}",
            c.events()
        );
    }
}
