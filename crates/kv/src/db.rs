//! The database: open/recover, reads, writes, flush, and compaction.

use crate::error::DbError;
use crate::memtable::Memtable;
use crate::record::Record;
use crate::sstable::{merge_runs, split_into_files, SsTable};
use crate::wal::Wal;
use deepnote_blockdev::BlockDevice;
use deepnote_fs::{Filesystem, FsError, JournalConfig};
use deepnote_sim::{Clock, SimDuration};
use deepnote_telemetry::{Layer, Tracer, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An owned key-value pair, as returned by [`Db::scan`].
pub type KvPair = (Vec<u8>, Vec<u8>);

const DB_DIR: &str = "/db";
const WAL_PATH: &str = "/db/wal";
const MANIFEST_PATH: &str = "/db/MANIFEST";

/// Database tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbConfig {
    /// Memtable flush threshold in bytes.
    pub memtable_limit_bytes: usize,
    /// L0 file count that triggers compaction into L1.
    pub l0_compaction_trigger: usize,
    /// Group-commit size: WAL is synced every this many mutations.
    pub wal_sync_every_ops: u64,
    /// How long WAL persistence may stay blocked before the store dies
    /// with [`DbError::WalSyncFailed`]. Calibrated to the paper's
    /// Table 3 (RocksDB crashes ≈ 81 s into the attack).
    pub wal_patience: SimDuration,
    /// CPU cost charged per public operation (the in-memory work).
    pub cpu_op_cost: SimDuration,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            memtable_limit_bytes: 256 << 10,
            l0_compaction_trigger: 4,
            // db_bench runs with sync=0: the WAL is written but only
            // group-synced occasionally, so syncs amortize over many ops.
            wal_sync_every_ops: 1024,
            wal_patience: SimDuration::from_secs(81),
            cpu_op_cost: SimDuration::from_micros(8),
        }
    }
}

/// Operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DbStats {
    /// Puts applied.
    pub puts: u64,
    /// Gets served.
    pub gets: u64,
    /// Deletes applied.
    pub deletes: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// L0→L1 compactions.
    pub compactions: u64,
    /// WAL group syncs.
    pub wal_syncs: u64,
    /// Payload bytes accepted from the application (keys + values).
    pub user_bytes: u64,
    /// Bytes written to SSTables by memtable flushes.
    pub flush_bytes: u64,
    /// Bytes rewritten by compactions.
    pub compaction_bytes: u64,
}

impl DbStats {
    /// Write amplification: bytes the storage engine wrote (flushes +
    /// compactions; the WAL roughly doubles it again) per byte the
    /// application handed in. `None` before any user writes.
    pub fn write_amplification(&self) -> Option<f64> {
        (self.user_bytes > 0).then(|| {
            (self.user_bytes + self.flush_bytes + self.compaction_bytes) as f64
                / self.user_bytes as f64
        })
    }
}

/// A RocksDB-style LSM store on the journaling filesystem.
///
/// See the crate docs for an example.
#[derive(Debug)]
pub struct Db<D: BlockDevice> {
    fs: Filesystem<D>,
    clock: Clock,
    config: DbConfig,
    memtable: Memtable,
    wal: Wal,
    /// L0 file paths, oldest first (lookup scans newest first).
    level0: Vec<String>,
    /// L1 file paths, sorted by key range, non-overlapping.
    level1: Vec<String>,
    table_cache: BTreeMap<String, SsTable>,
    next_file_no: u64,
    ops_since_sync: u64,
    crashed: bool,
    stats: DbStats,
    tracer: Tracer,
    track: u32,
}

impl<D: BlockDevice> Db<D> {
    /// Formats `dev` with a fresh filesystem and creates an empty store.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn create(dev: D, clock: Clock) -> Result<Self, DbError> {
        Self::create_with(dev, clock, DbConfig::default())
    }

    /// Creates with an explicit configuration.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn create_with(dev: D, clock: Clock, config: DbConfig) -> Result<Self, DbError> {
        // The store's availability is bounded by how long its WAL can
        // stay unpersisted, so the filesystem journal inherits the WAL
        // patience budget.
        let jcfg = JournalConfig {
            patience: config.wal_patience,
            ..JournalConfig::default()
        };
        let mut fs = Filesystem::format_with_config(dev, clock.clone(), jcfg)?;
        fs.create(DB_DIR)?;
        fs.create_file(WAL_PATH)?;
        fs.create_file(MANIFEST_PATH)?;
        fs.commit()?;
        let mut db = Db {
            fs,
            clock,
            config,
            memtable: Memtable::new(),
            wal: Wal::new(WAL_PATH, 0, config.wal_patience),
            level0: Vec::new(),
            level1: Vec::new(),
            table_cache: BTreeMap::new(),
            next_file_no: 1,
            ops_since_sync: 0,
            crashed: false,
            stats: DbStats::default(),
            tracer: Tracer::disabled(),
            track: 0,
        };
        db.write_manifest()?;
        Ok(db)
    }

    /// Opens an existing store, replaying the filesystem journal and the
    /// WAL.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] for a damaged manifest; filesystem errors.
    pub fn open(dev: D, clock: Clock) -> Result<Self, DbError> {
        Self::open_with(dev, clock, DbConfig::default())
    }

    /// Opens with an explicit configuration.
    ///
    /// # Errors
    ///
    /// As for [`Db::open`].
    pub fn open_with(dev: D, clock: Clock, config: DbConfig) -> Result<Self, DbError> {
        let jcfg = JournalConfig {
            patience: config.wal_patience,
            ..JournalConfig::default()
        };
        let (mut fs, _replayed) = Filesystem::mount_with(dev, clock.clone(), jcfg)?;
        let (level0, level1, next_file_no) = Self::read_manifest(&mut fs)?;
        let (records, durable_len) = Wal::load(WAL_PATH, &mut fs)?;
        let mut memtable = Memtable::new();
        for rec in records {
            memtable.apply(rec);
        }
        Ok(Db {
            fs,
            clock,
            config,
            memtable,
            wal: Wal::new(WAL_PATH, durable_len, config.wal_patience),
            level0,
            level1,
            table_cache: BTreeMap::new(),
            next_file_no,
            ops_since_sync: 0,
            crashed: false,
            stats: DbStats::default(),
            tracer: Tracer::disabled(),
            track: 0,
        })
    }

    /// Whether the store has died (WAL persistence failure).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Operation counters.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The clock the store runs on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Attaches a tracer to the store and its filesystem; WAL syncs,
    /// memtable flushes, and compactions become kv-layer spans on
    /// `track`, journal commits fs-layer spans.
    pub fn set_tracer(&mut self, tracer: Tracer, track: u32) {
        self.fs.set_tracer(tracer.clone(), track);
        self.tracer = tracer;
        self.track = track;
    }

    /// One background-work span on this store's clock.
    fn trace_span(&self, name: &'static str, t0: deepnote_sim::SimTime, ok: bool, bytes: u64) {
        if !self.tracer.enabled(Layer::Kv) {
            return;
        }
        self.tracer.span(
            Layer::Kv,
            self.track,
            name,
            t0,
            self.clock.now().saturating_duration_since(t0),
            vec![
                ("outcome", Value::Str(if ok { "ok" } else { "error" })),
                ("bytes", Value::U64(bytes)),
            ],
        );
    }

    /// The underlying filesystem (diagnostics, device counters).
    pub fn filesystem(&self) -> &Filesystem<D> {
        &self.fs
    }

    /// The underlying filesystem (attack wiring, diagnostics).
    pub fn filesystem_mut(&mut self) -> &mut Filesystem<D> {
        &mut self.fs
    }

    fn check_alive(&self) -> Result<(), DbError> {
        if self.crashed {
            Err(DbError::Closed)
        } else {
            Ok(())
        }
    }

    fn fatal<T>(&mut self, e: DbError) -> Result<T, DbError> {
        if e.is_fatal() {
            self.crashed = true;
        }
        Err(e)
    }

    // ----- manifest ----------------------------------------------------

    fn write_manifest(&mut self) -> Result<(), DbError> {
        let mut text = String::new();
        for p in &self.level0 {
            text.push_str(&format!("0 {p}\n"));
        }
        for p in &self.level1 {
            text.push_str(&format!("1 {p}\n"));
        }
        text.push_str(&format!("next {}\n", self.next_file_no));
        if self.fs.exists(MANIFEST_PATH) {
            self.fs.unlink(MANIFEST_PATH)?;
        }
        self.fs.create_file(MANIFEST_PATH)?;
        self.fs.write_file(MANIFEST_PATH, 0, text.as_bytes())?;
        Ok(())
    }

    fn read_manifest(fs: &mut Filesystem<D>) -> Result<(Vec<String>, Vec<String>, u64), DbError> {
        let size = fs.stat(MANIFEST_PATH)?.size;
        let raw = fs.read_file(MANIFEST_PATH, 0, size as usize)?;
        let text = String::from_utf8(raw).map_err(|_| DbError::Corruption {
            what: "manifest is not UTF-8".into(),
        })?;
        let mut level0 = Vec::new();
        let mut level1 = Vec::new();
        let mut next = 1;
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("0"), Some(p)) => level0.push(p.to_string()),
                (Some("1"), Some(p)) => level1.push(p.to_string()),
                (Some("next"), Some(n)) => {
                    next = n.parse().map_err(|_| DbError::Corruption {
                        what: "bad manifest next-file number".into(),
                    })?;
                }
                (None, _) => {}
                _ => {
                    return Err(DbError::Corruption {
                        what: format!("bad manifest line: {line}"),
                    })
                }
            }
        }
        Ok((level0, level1, next))
    }

    // ----- table cache ---------------------------------------------------

    fn table(&mut self, path: &str) -> Result<&SsTable, DbError> {
        if !self.table_cache.contains_key(path) {
            let table = SsTable::load(&mut self.fs, path)?;
            self.table_cache.insert(path.to_string(), table);
        }
        Ok(&self.table_cache[path])
    }

    // ----- public API ---------------------------------------------------

    /// Inserts or overwrites a key.
    ///
    /// # Errors
    ///
    /// [`DbError::WalSyncFailed`] (fatal) when the WAL cannot be
    /// persisted; [`DbError::Closed`] after a crash; size/space errors.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), DbError> {
        self.mutate(Record::put(key, value))?;
        self.stats.puts += 1;
        Ok(())
    }

    /// Deletes a key (writes a tombstone).
    ///
    /// # Errors
    ///
    /// As for [`Db::put`].
    pub fn delete(&mut self, key: &[u8]) -> Result<(), DbError> {
        self.mutate(Record::delete(key))?;
        self.stats.deletes += 1;
        Ok(())
    }

    /// Applies a [`WriteBatch`](crate::WriteBatch) atomically: all
    /// records enter the WAL as one group, so a crash preserves either
    /// the whole batch or none of it.
    ///
    /// # Errors
    ///
    /// As for [`Db::put`].
    pub fn write(&mut self, batch: crate::WriteBatch) -> Result<(), DbError> {
        self.check_alive()?;
        if batch.is_empty() {
            return Ok(());
        }
        self.clock.advance(self.config.cpu_op_cost);
        let records = batch.into_records();
        for rec in &records {
            self.stats.user_bytes += rec.payload_len() as u64;
            self.wal.append(rec)?;
        }
        let n = records.len() as u64;
        for rec in records {
            match &rec.value {
                Some(_) => self.stats.puts += 1,
                None => self.stats.deletes += 1,
            }
            self.memtable.apply(rec);
        }
        self.ops_since_sync += n;
        if self.ops_since_sync >= self.config.wal_sync_every_ops {
            self.sync_wal()?;
        }
        if self.memtable.approx_bytes() >= self.config.memtable_limit_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Returns all live key-value pairs with `start <= key < end`, in
    /// ascending key order, merged across the memtable and every level
    /// (newest version wins, tombstones excluded).
    ///
    /// # Errors
    ///
    /// [`DbError::Closed`] after a crash; I/O errors faulting tables in.
    pub fn scan(&mut self, start: &[u8], end: &[u8]) -> Result<Vec<KvPair>, DbError> {
        self.check_alive()?;
        self.clock.advance(self.config.cpu_op_cost);
        let mut merged: std::collections::BTreeMap<Vec<u8>, Option<Vec<u8>>> =
            std::collections::BTreeMap::new();
        // Oldest first so newer versions overwrite: L1, then L0 in age
        // order, then the memtable.
        for path in self.level1.clone() {
            for rec in self.table(&path)?.records().to_vec() {
                if rec.key.as_slice() >= start && rec.key.as_slice() < end {
                    merged.insert(rec.key, rec.value);
                }
            }
        }
        for path in self.level0.clone() {
            for rec in self.table(&path)?.records().to_vec() {
                if rec.key.as_slice() >= start && rec.key.as_slice() < end {
                    merged.insert(rec.key, rec.value);
                }
            }
        }
        let mem: Vec<Record> = {
            let mut snapshot = self.memtable.clone();
            snapshot.drain_sorted()
        };
        for rec in mem {
            if rec.key.as_slice() >= start && rec.key.as_slice() < end {
                merged.insert(rec.key, rec.value);
            }
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    fn mutate(&mut self, rec: Record) -> Result<(), DbError> {
        self.check_alive()?;
        self.clock.advance(self.config.cpu_op_cost);
        self.stats.user_bytes += rec.payload_len() as u64;
        self.wal.append(&rec)?;
        self.memtable.apply(rec);
        self.ops_since_sync += 1;
        if self.ops_since_sync >= self.config.wal_sync_every_ops {
            self.sync_wal()?;
        }
        if self.memtable.approx_bytes() >= self.config.memtable_limit_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Forces the WAL group buffer to disk.
    ///
    /// # Errors
    ///
    /// [`DbError::WalSyncFailed`] (fatal) past the patience budget.
    pub fn sync_wal(&mut self) -> Result<(), DbError> {
        self.check_alive()?;
        let t0 = self.clock.now();
        match self.wal.sync(&mut self.fs, &self.clock) {
            Ok(()) => {
                self.ops_since_sync = 0;
                self.stats.wal_syncs += 1;
                self.trace_span("wal_sync", t0, true, 0);
                Ok(())
            }
            Err(e) => {
                self.trace_span("wal_sync", t0, false, 0);
                self.fatal(e)
            }
        }
    }

    /// Reads a key.
    ///
    /// # Errors
    ///
    /// [`DbError::Closed`] after a crash; I/O or corruption errors while
    /// faulting in an SSTable.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        self.check_alive()?;
        self.clock.advance(self.config.cpu_op_cost);
        self.stats.gets += 1;
        if let Some(hit) = self.memtable.get(key) {
            return Ok(hit.map(|v| v.to_vec()));
        }
        for path in self.level0.clone().iter().rev() {
            if let Some(hit) = self.table(path)?.get(key) {
                return Ok(hit.map(|v| v.to_vec()));
            }
        }
        for path in self.level1.clone() {
            let t = self.table(&path)?;
            if t.min_key().is_some_and(|mk| key >= mk) && t.max_key().is_some_and(|mk| key <= mk) {
                if let Some(hit) = t.get(key) {
                    return Ok(hit.map(|v| v.to_vec()));
                }
            }
        }
        Ok(None)
    }

    /// Flushes the memtable to a new L0 SSTable, resets the WAL, and
    /// compacts if L0 is full.
    ///
    /// # Errors
    ///
    /// Fatal WAL/flush persistence failures crash the store.
    pub fn flush(&mut self) -> Result<(), DbError> {
        self.check_alive()?;
        if self.memtable.is_empty() {
            return Ok(());
        }
        self.sync_wal()?;
        let t0 = self.clock.now();
        let records = self.memtable.drain_sorted();
        let flush_bytes = records.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
        self.stats.flush_bytes += flush_bytes;
        let path = format!("{DB_DIR}/sst_0_{}", self.next_file_no);
        self.next_file_no += 1;
        let result: Result<(), DbError> = (|| {
            let table = SsTable::write(&mut self.fs, path.clone(), records)?;
            self.table_cache.insert(path.clone(), table);
            self.level0.push(path.clone());
            self.write_manifest()?;
            self.fs.commit().map_err(DbError::from)?;
            self.wal.reset(&mut self.fs)?;
            Ok(())
        })();
        self.trace_span("memtable_flush", t0, result.is_ok(), flush_bytes);
        match result {
            Ok(()) => {
                self.stats.flushes += 1;
                if self.level0.len() > self.config.l0_compaction_trigger {
                    self.compact()?;
                }
                Ok(())
            }
            // Background flush failure is a hard error in RocksDB too.
            Err(e) => {
                let e = if e.is_fatal() || matches!(e, DbError::Fs(FsError::Io(_))) {
                    self.crashed = true;
                    if matches!(e, DbError::Fs(FsError::Io(_))) {
                        DbError::WalSyncFailed
                    } else {
                        e
                    }
                } else {
                    e
                };
                Err(e)
            }
        }
    }

    /// Merges all of L0 and L1 into a fresh, non-overlapping L1.
    ///
    /// # Errors
    ///
    /// As for [`Db::flush`].
    pub fn compact(&mut self) -> Result<(), DbError> {
        self.check_alive()?;
        let t0 = self.clock.now();
        // Gather runs newest-first: L0 newest→oldest, then L1.
        let mut runs: Vec<Vec<Record>> = Vec::new();
        for path in self.level0.clone().iter().rev() {
            runs.push(self.table(path)?.records().to_vec());
        }
        for path in self.level1.clone() {
            runs.push(self.table(&path)?.records().to_vec());
        }
        let run_refs: Vec<&[Record]> = runs.iter().map(|r| r.as_slice()).collect();
        // L1 is the bottom level: tombstones can be dropped.
        let merged = merge_runs(&run_refs, false);
        let compaction_bytes = merged.iter().map(|r| r.encoded_len() as u64).sum::<u64>();
        self.stats.compaction_bytes += compaction_bytes;

        let old_files: Vec<String> = self.level0.drain(..).chain(self.level1.drain(..)).collect();
        let result: Result<(), DbError> = (|| {
            for chunk in split_into_files(merged) {
                let path = format!("{DB_DIR}/sst_1_{}", self.next_file_no);
                self.next_file_no += 1;
                let table = SsTable::write(&mut self.fs, path.clone(), chunk)?;
                self.table_cache.insert(path.clone(), table);
                self.level1.push(path);
            }
            self.write_manifest()?;
            self.fs.commit().map_err(DbError::from)?;
            for old in &old_files {
                self.table_cache.remove(old);
                self.fs.unlink(old)?;
            }
            Ok(())
        })();
        self.trace_span("compaction", t0, result.is_ok(), compaction_bytes);
        match result {
            Ok(()) => {
                self.stats.compactions += 1;
                Ok(())
            }
            Err(e) => self.fatal(if matches!(e, DbError::Fs(FsError::Io(_))) {
                DbError::WalSyncFailed
            } else {
                e
            }),
        }
    }

    /// Drives periodic background work (filesystem journal commits).
    ///
    /// # Errors
    ///
    /// Fatal filesystem errors crash the store.
    pub fn tick(&mut self) -> Result<(), DbError> {
        self.check_alive()?;
        match self.fs.tick(self.clock.now()) {
            Ok(()) => Ok(()),
            Err(e @ FsError::JournalAborted { .. }) => self.fatal(DbError::Fs(e)),
            Err(e) => Err(DbError::Fs(e)),
        }
    }

    /// Gracefully shuts down: flush + unmount, returning the device.
    ///
    /// # Errors
    ///
    /// Anything the final flush/unmount hits.
    pub fn close(mut self) -> Result<D, DbError> {
        self.flush()?;
        self.sync_wal()?;
        Ok(self.fs.unmount()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_blockdev::{FaultInjector, FaultPlan, IoError, MemDisk};

    fn small_config() -> DbConfig {
        DbConfig {
            memtable_limit_bytes: 4 << 10,
            l0_compaction_trigger: 2,
            wal_sync_every_ops: 8,
            ..DbConfig::default()
        }
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:08}").into_bytes()
    }

    fn val(i: u32) -> Vec<u8> {
        format!("value-{i:08}").into_bytes()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut db = Db::create(MemDisk::new(1 << 17), Clock::new()).unwrap();
        db.put(b"k", b"v").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v".to_vec()));
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        assert_eq!(db.get(b"absent").unwrap(), None);
        let s = db.stats();
        assert_eq!((s.puts, s.deletes, s.gets), (1, 1, 3));
    }

    #[test]
    fn flush_and_compaction_preserve_data() {
        let mut db = Db::create_with(MemDisk::new(1 << 18), Clock::new(), small_config()).unwrap();
        for i in 0..1_000 {
            db.put(&key(i), &val(i)).unwrap();
        }
        assert!(db.stats().flushes > 0, "{:?}", db.stats());
        assert!(db.stats().compactions > 0, "{:?}", db.stats());
        for i in (0..1_000).step_by(97) {
            assert_eq!(db.get(&key(i)).unwrap(), Some(val(i)), "key {i}");
        }
    }

    #[test]
    fn overwrites_and_deletes_survive_compaction() {
        let mut db = Db::create_with(MemDisk::new(1 << 18), Clock::new(), small_config()).unwrap();
        for i in 0..300 {
            db.put(&key(i), &val(i)).unwrap();
        }
        for i in 0..300 {
            if i % 3 == 0 {
                db.delete(&key(i)).unwrap();
            } else if i % 3 == 1 {
                db.put(&key(i), b"updated").unwrap();
            }
        }
        db.flush().unwrap();
        db.compact().unwrap();
        for i in 0..300 {
            let got = db.get(&key(i)).unwrap();
            match i % 3 {
                0 => assert_eq!(got, None, "key {i}"),
                1 => assert_eq!(got, Some(b"updated".to_vec()), "key {i}"),
                _ => assert_eq!(got, Some(val(i)), "key {i}"),
            }
        }
    }

    #[test]
    fn recovery_replays_wal_and_manifest() {
        let clock = Clock::new();
        let mut db = Db::create_with(MemDisk::new(1 << 18), clock.clone(), small_config()).unwrap();
        for i in 0..500 {
            db.put(&key(i), &val(i)).unwrap();
        }
        // Synced-but-unflushed tail lives only in the WAL.
        db.sync_wal().unwrap();
        let dev = db.close().unwrap();
        let mut db2 = Db::open(dev, clock).unwrap();
        for i in (0..500).step_by(41) {
            assert_eq!(db2.get(&key(i)).unwrap(), Some(val(i)), "key {i}");
        }
    }

    #[test]
    fn crash_recovery_without_close() {
        let clock = Clock::new();
        let mut db = Db::create_with(MemDisk::new(1 << 18), clock.clone(), small_config()).unwrap();
        for i in 0..100 {
            db.put(&key(i), &val(i)).unwrap();
        }
        db.sync_wal().unwrap();
        // Unsynced writes after the sync may be lost on crash.
        db.put(b"maybe-lost", b"x").unwrap();
        // Steal the device (process crash).
        let dev = {
            let mut out = MemDisk::new(1);
            std::mem::swap(&mut out, db.filesystem_mut().device_mut());
            out
        };
        let mut db2 = Db::open_with(dev, clock, small_config()).unwrap();
        for i in 0..100 {
            assert_eq!(db2.get(&key(i)).unwrap(), Some(val(i)), "key {i}");
        }
    }

    #[test]
    fn blocked_wal_crashes_store_with_paper_signature() {
        let clock = Clock::new();
        let disk = FaultInjector::new(MemDisk::new(1 << 18), FaultPlan::None);
        let mut db = Db::create_with(disk, clock.clone(), small_config()).unwrap();
        db.put(b"before", b"attack").unwrap();
        db.sync_wal().unwrap();

        db.filesystem_mut()
            .device_mut()
            .set_plan(FaultPlan::FailWritesFrom {
                start: 0,
                error: IoError::NoResponse,
            });
        let t0 = clock.now();
        let mut crash = None;
        for i in 0..10_000u32 {
            if let Err(e) = db.put(&key(i), &val(i)) {
                crash = Some(e);
                break;
            }
        }
        let err = crash.expect("store should crash under blocked WAL");
        assert_eq!(err, DbError::WalSyncFailed);
        assert!(err.to_string().contains("sync_without_flush"));
        assert!(db.crashed());
        let waited = (clock.now() - t0).as_secs_f64();
        assert!((80.0..86.0).contains(&waited), "crashed after {waited}s");
        // Everything afterwards is refused.
        assert_eq!(db.get(b"before"), Err(DbError::Closed));
        assert_eq!(db.put(b"x", b"y"), Err(DbError::Closed));
    }

    #[test]
    fn stats_count_background_work() {
        let mut db = Db::create_with(MemDisk::new(1 << 18), Clock::new(), small_config()).unwrap();
        for i in 0..400 {
            db.put(&key(i), &val(i)).unwrap();
        }
        let s = db.stats();
        assert!(s.wal_syncs >= s.flushes);
        assert!(s.flushes >= 1);
    }

    #[test]
    fn write_batch_is_atomic_across_crash_recovery() {
        let clock = Clock::new();
        let mut db = Db::create_with(MemDisk::new(1 << 18), clock.clone(), small_config()).unwrap();
        let mut batch = crate::WriteBatch::new();
        batch
            .put(b"alice", b"90")
            .put(b"bob", b"110")
            .delete(b"pending");
        db.put(b"pending", b"transfer").unwrap();
        db.write(batch).unwrap();
        db.sync_wal().unwrap();
        // Crash without close.
        let dev = {
            let mut out = MemDisk::new(1);
            std::mem::swap(&mut out, db.filesystem_mut().device_mut());
            out
        };
        let mut db2 = Db::open_with(dev, clock, small_config()).unwrap();
        assert_eq!(db2.get(b"alice").unwrap(), Some(b"90".to_vec()));
        assert_eq!(db2.get(b"bob").unwrap(), Some(b"110".to_vec()));
        assert_eq!(db2.get(b"pending").unwrap(), None);
        let s = db2.stats();
        assert_eq!((s.puts, s.deletes), (0, 0)); // fresh stats after open
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut db = Db::create(MemDisk::new(1 << 17), Clock::new()).unwrap();
        db.write(crate::WriteBatch::new()).unwrap();
        assert_eq!(db.stats().puts, 0);
    }

    #[test]
    fn scan_merges_all_levels_newest_wins() {
        let mut db = Db::create_with(MemDisk::new(1 << 18), Clock::new(), small_config()).unwrap();
        // Enough keys to force flushes and a compaction.
        for i in 0..300 {
            db.put(&key(i), &val(i)).unwrap();
        }
        // Overwrites and deletes living in newer levels / the memtable.
        db.put(&key(10), b"newest").unwrap();
        db.delete(&key(11)).unwrap();

        let results = db.scan(&key(5), &key(15)).unwrap();
        let keys: Vec<&[u8]> = results.iter().map(|(k, _)| k.as_slice()).collect();
        // 5..15 minus the deleted 11 = 9 keys, sorted.
        assert_eq!(results.len(), 9, "{keys:?}");
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let v10 = results.iter().find(|(k, _)| k == &key(10)).unwrap();
        assert_eq!(v10.1, b"newest");
        assert!(!results.iter().any(|(k, _)| k == &key(11)));
    }

    #[test]
    fn scan_empty_range() {
        let mut db = Db::create(MemDisk::new(1 << 17), Clock::new()).unwrap();
        db.put(b"k", b"v").unwrap();
        assert!(db.scan(b"x", b"z").unwrap().is_empty());
        assert!(db.scan(b"k", b"k").unwrap().is_empty()); // end-exclusive
    }

    #[test]
    fn write_amplification_accounted() {
        let mut db = Db::create_with(MemDisk::new(1 << 18), Clock::new(), small_config()).unwrap();
        assert_eq!(db.stats().write_amplification(), None);
        for i in 0..500 {
            db.put(&key(i), &val(i)).unwrap();
        }
        let s = db.stats();
        assert_eq!(s.user_bytes, 500 * (key(0).len() + val(0).len()) as u64);
        assert!(s.flush_bytes > 0, "{s:?}");
        assert!(s.compaction_bytes > 0, "{s:?}");
        let wa = s.write_amplification().unwrap();
        // Flushes + compactions rewrite data at least once on top of the
        // user's own bytes.
        assert!(wa > 2.0, "write amplification = {wa}");
    }

    #[test]
    fn tick_advances_journal() {
        let clock = Clock::new();
        let mut db = Db::create_with(MemDisk::new(1 << 18), clock.clone(), small_config()).unwrap();
        db.put(b"a", b"b").unwrap();
        clock.advance(SimDuration::from_secs(6));
        db.tick().unwrap();
        assert!(!db.crashed());
    }
}
