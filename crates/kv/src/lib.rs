//! A RocksDB-style LSM key-value store for the Deep Note reproduction.
//!
//! The paper's application victim is RocksDB running `db_bench` with the
//! `readwhilewriting` workload (§4.3); under a sustained acoustic attack
//! "the newly arrived key-value pairs written into the write-ahead log
//! (WAL) cannot be persisted into the drive, leading to a crash" with a
//! `sync_without_flush`-style failure (§4.4). This crate implements the
//! LSM machinery for those behaviours to emerge:
//!
//! * [`Memtable`] — an ordered in-memory write buffer with tombstones
//!   ([`memtable`]).
//! * [`Wal`] — a checksummed write-ahead log stored as files on the
//!   journaling filesystem, group-synced like RocksDB's group commit
//!   ([`wal`]).
//! * [`SsTable`] — immutable sorted runs with an in-memory table cache
//!   ([`sstable`]).
//! * [`Db`] — open/recover, `put`/`get`/`delete`, memtable flush, L0→L1
//!   compaction, and crash semantics: when WAL persistence stays blocked
//!   past a patience budget the database dies with
//!   [`DbError::WalSyncFailed`] ([`db`]).
//! * the [mod@bench] module — `db_bench`-style workloads (`fillseq`,
//!   `readwhilewriting`) reporting MB/s and ops/s like Table 2.
//!
//! # Example
//!
//! ```
//! use deepnote_blockdev::MemDisk;
//! use deepnote_kv::Db;
//! use deepnote_sim::Clock;
//!
//! let clock = Clock::new();
//! let mut db = Db::create(MemDisk::new(1 << 17), clock)?;
//! db.put(b"key", b"value")?;
//! assert_eq!(db.get(b"key")?, Some(b"value".to_vec()));
//! db.delete(b"key")?;
//! assert_eq!(db.get(b"key")?, None);
//! # Ok::<(), deepnote_kv::DbError>(())
//! ```

pub mod batch;
pub mod bench;
pub mod db;
pub mod error;
pub mod memtable;
pub mod record;
pub mod sstable;
pub mod wal;

pub use batch::WriteBatch;
pub use bench::{BenchReport, BenchSpec};
pub use db::{Db, DbConfig, DbStats};
pub use error::DbError;
pub use memtable::Memtable;
pub use record::Record;
pub use sstable::SsTable;
pub use wal::Wal;
