//! Immutable sorted string tables.
//!
//! An SSTable is a file of concatenated [`Record`]s in ascending key
//! order. Files are small (≤ 1 MiB of encoded records per file, within
//! the filesystem's file-size limit), fully loaded on first access, and
//! served from an in-memory table cache thereafter — standing in for
//! RocksDB's block cache + the OS page cache, which is what lets
//! `readwhilewriting` sustain ~10⁵ ops/s on a disk that can only do ~10³.

use crate::error::DbError;
use crate::record::Record;
use deepnote_blockdev::BlockDevice;
use deepnote_fs::Filesystem;

/// Target maximum encoded size of one SSTable file.
pub const TARGET_FILE_BYTES: usize = 1 << 20;

/// A loaded, immutable sorted run.
#[derive(Debug, Clone, PartialEq)]
pub struct SsTable {
    path: String,
    records: Vec<Record>,
}

impl SsTable {
    /// Writes `records` (must be sorted by key, unique) to `path` and
    /// returns the loaded table. The caller is responsible for making the
    /// write durable (commit).
    ///
    /// # Errors
    ///
    /// Filesystem errors; [`DbError::Corruption`] is never returned here.
    ///
    /// # Panics
    ///
    /// Panics (debug) if records are not strictly sorted by key.
    pub fn write<D: BlockDevice>(
        fs: &mut Filesystem<D>,
        path: impl Into<String>,
        records: Vec<Record>,
    ) -> Result<SsTable, DbError> {
        debug_assert!(
            records.windows(2).all(|w| w[0].key < w[1].key),
            "SSTable records must be strictly sorted"
        );
        let path = path.into();
        let mut buf = Vec::new();
        for rec in &records {
            rec.encode_into(&mut buf)?;
        }
        if fs.exists(&path) {
            fs.unlink(&path)?;
        }
        fs.create_file(&path)?;
        fs.write_file(&path, 0, &buf)?;
        Ok(SsTable { path, records })
    }

    /// Loads the table at `path`.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on a malformed file; filesystem errors
    /// otherwise.
    pub fn load<D: BlockDevice>(
        fs: &mut Filesystem<D>,
        path: impl Into<String>,
    ) -> Result<SsTable, DbError> {
        let path = path.into();
        let size = fs.stat(&path)?.size;
        let raw = fs.read_file(&path, 0, size as usize)?;
        let records = Record::decode_all(&raw)?;
        if !records.windows(2).all(|w| w[0].key < w[1].key) {
            return Err(DbError::Corruption {
                what: format!("SSTable {path} keys out of order"),
            });
        }
        Ok(SsTable { path, records })
    }

    /// The file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Number of records (including tombstones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, sorted.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// First key, if any.
    pub fn min_key(&self) -> Option<&[u8]> {
        self.records.first().map(|r| r.key.as_slice())
    }

    /// Last key, if any.
    pub fn max_key(&self) -> Option<&[u8]> {
        self.records.last().map(|r| r.key.as_slice())
    }

    /// Binary-searches for a key. `Some(None)` is a tombstone hit.
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.records
            .binary_search_by(|r| r.key.as_slice().cmp(key))
            .ok()
            .map(|i| self.records[i].value.as_deref())
    }
}

/// Merges multiple sorted runs (newest first) into one deduplicated,
/// sorted record stream. Tombstones are retained when `keep_tombstones`
/// (needed unless merging into the bottom level).
pub fn merge_runs(runs: &[&[Record]], keep_tombstones: bool) -> Vec<Record> {
    // Newest-wins: later runs in `runs` are older.
    let mut map = std::collections::BTreeMap::new();
    for run in runs.iter().rev() {
        for rec in *run {
            map.insert(rec.key.clone(), rec.value.clone());
        }
    }
    map.into_iter()
        .filter(|(_, v)| keep_tombstones || v.is_some())
        .map(|(key, value)| Record { key, value })
        .collect()
}

/// Splits a sorted record stream into chunks of at most
/// [`TARGET_FILE_BYTES`] encoded bytes each.
pub fn split_into_files(records: Vec<Record>) -> Vec<Vec<Record>> {
    let mut files = Vec::new();
    let mut current = Vec::new();
    let mut bytes = 0usize;
    for rec in records {
        let len = rec.encoded_len();
        if bytes + len > TARGET_FILE_BYTES && !current.is_empty() {
            files.push(std::mem::take(&mut current));
            bytes = 0;
        }
        bytes += len;
        current.push(rec);
    }
    if !current.is_empty() {
        files.push(current);
    }
    files
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_blockdev::MemDisk;
    use deepnote_sim::Clock;

    fn fs() -> Filesystem<MemDisk> {
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), Clock::new()).unwrap();
        fs.create("/db").unwrap();
        fs
    }

    fn rec(k: &str, v: &str) -> Record {
        Record::put(k, v)
    }

    #[test]
    fn write_load_get() {
        let mut fs = fs();
        let records = vec![rec("a", "1"), Record::delete("b"), rec("c", "3")];
        let written = SsTable::write(&mut fs, "/db/sst_0_1", records.clone()).unwrap();
        assert_eq!(written.len(), 3);
        let loaded = SsTable::load(&mut fs, "/db/sst_0_1").unwrap();
        assert_eq!(loaded.records(), records.as_slice());
        assert_eq!(loaded.get(b"a"), Some(Some(b"1".as_ref())));
        assert_eq!(loaded.get(b"b"), Some(None)); // tombstone
        assert_eq!(loaded.get(b"x"), None);
        assert_eq!(loaded.min_key(), Some(b"a".as_ref()));
        assert_eq!(loaded.max_key(), Some(b"c".as_ref()));
    }

    #[test]
    fn overwrite_replaces_file() {
        let mut fs = fs();
        SsTable::write(&mut fs, "/db/s", vec![rec("old", "x")]).unwrap();
        SsTable::write(&mut fs, "/db/s", vec![rec("new", "y")]).unwrap();
        let loaded = SsTable::load(&mut fs, "/db/s").unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.get(b"new"), Some(Some(b"y".as_ref())));
    }

    #[test]
    fn merge_newest_wins_and_drops_tombstones_at_bottom() {
        let newest = vec![rec("a", "new"), Record::delete("b")];
        let oldest = vec![rec("a", "old"), rec("b", "old"), rec("c", "keep")];
        let with_tombs = merge_runs(&[&newest, &oldest], true);
        assert_eq!(
            with_tombs,
            vec![rec("a", "new"), Record::delete("b"), rec("c", "keep")]
        );
        let bottom = merge_runs(&[&newest, &oldest], false);
        assert_eq!(bottom, vec![rec("a", "new"), rec("c", "keep")]);
    }

    #[test]
    fn split_respects_target_size() {
        let big_val = "v".repeat(300_000);
        let records: Vec<Record> = (0..8).map(|i| rec(&format!("k{i}"), &big_val)).collect();
        let files = split_into_files(records);
        assert!(files.len() >= 3, "files = {}", files.len());
        for f in &files {
            let bytes: usize = f.iter().map(|r| r.encoded_len()).sum();
            assert!(bytes <= TARGET_FILE_BYTES + 300_020);
            assert!(!f.is_empty());
        }
    }

    #[test]
    fn corrupt_file_detected() {
        let mut fs = fs();
        SsTable::write(&mut fs, "/db/s", vec![rec("a", "1")]).unwrap();
        // Flip a byte in place.
        let mut raw = fs.read_file("/db/s", 0, 4096).unwrap();
        raw[8] ^= 0x55;
        fs.write_file("/db/s", 0, &raw).unwrap();
        assert!(matches!(
            SsTable::load(&mut fs, "/db/s"),
            Err(DbError::Corruption { .. })
        ));
    }
}
