//! Key-value record encoding shared by the WAL and SSTables.
//!
//! Wire format per record:
//!
//! ```text
//! | checksum: u32 | klen: u32 | vlen_tag: u32 | key | value |
//! ```
//!
//! `vlen_tag` is `value.len()` for a put and `u32::MAX` for a delete
//! (tombstone). The checksum is an FNV-1a over everything after it.

use crate::error::DbError;
use serde::{Deserialize, Serialize};

/// Maximum key or value length (1 MiB — matches practical LSM limits).
pub const MAX_LEN: usize = 1 << 20;

const TOMBSTONE_TAG: u32 = u32::MAX;

/// One logical mutation: a put or a delete.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// The key.
    pub key: Vec<u8>,
    /// The value; `None` is a tombstone.
    pub value: Option<Vec<u8>>,
}

impl Record {
    /// A put record.
    pub fn put(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Self {
        Record {
            key: key.into(),
            value: Some(value.into()),
        }
    }

    /// A delete (tombstone) record.
    pub fn delete(key: impl Into<Vec<u8>>) -> Self {
        Record {
            key: key.into(),
            value: None,
        }
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        12 + self.key.len() + self.value.as_ref().map_or(0, |v| v.len())
    }

    /// Bytes of useful payload (key + value), the unit Table 2's MB/s
    /// metric counts.
    pub fn payload_len(&self) -> usize {
        self.key.len() + self.value.as_ref().map_or(0, |v| v.len())
    }

    /// Appends the encoded record to `out`.
    ///
    /// # Errors
    ///
    /// [`DbError::TooLarge`] if key or value exceeds [`MAX_LEN`].
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), DbError> {
        if self.key.len() > MAX_LEN || self.value.as_ref().is_some_and(|v| v.len() > MAX_LEN) {
            return Err(DbError::TooLarge);
        }
        let vlen_tag = match &self.value {
            Some(v) => v.len() as u32,
            None => TOMBSTONE_TAG,
        };
        let body_start = out.len() + 4;
        out.extend_from_slice(&[0u8; 4]); // checksum placeholder
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        out.extend_from_slice(&vlen_tag.to_le_bytes());
        out.extend_from_slice(&self.key);
        if let Some(v) = &self.value {
            out.extend_from_slice(v);
        }
        let sum = fnv1a(&out[body_start..]);
        out[body_start - 4..body_start].copy_from_slice(&sum.to_le_bytes());
        Ok(())
    }

    /// Decodes one record from the front of `buf`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on truncation or checksum mismatch.
    pub fn decode_from(buf: &[u8]) -> Result<(Record, usize), DbError> {
        let corrupt = |what: &str| DbError::Corruption { what: what.into() };
        if buf.len() < 12 {
            return Err(corrupt("truncated record header"));
        }
        let le_u32 = |at: usize| -> Result<u32, DbError> {
            buf.get(at..at + 4)
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or_else(|| corrupt("truncated record header"))
        };
        let stored_sum = le_u32(0)?;
        let klen = le_u32(4)? as usize;
        let vlen_tag = le_u32(8)?;
        if klen > MAX_LEN {
            return Err(corrupt("key length out of range"));
        }
        let vlen = if vlen_tag == TOMBSTONE_TAG {
            0
        } else {
            vlen_tag as usize
        };
        if vlen > MAX_LEN {
            return Err(corrupt("value length out of range"));
        }
        let total = 12 + klen + vlen;
        if buf.len() < total {
            return Err(corrupt("truncated record body"));
        }
        if fnv1a(&buf[4..total]) != stored_sum {
            return Err(corrupt("record checksum mismatch"));
        }
        let key = buf[12..12 + klen].to_vec();
        let value = if vlen_tag == TOMBSTONE_TAG {
            None
        } else {
            Some(buf[12 + klen..total].to_vec())
        };
        Ok((Record { key, value }, total))
    }

    /// Decodes a whole buffer of concatenated records.
    ///
    /// # Errors
    ///
    /// [`DbError::Corruption`] on any malformed record.
    pub fn decode_all(mut buf: &[u8]) -> Result<Vec<Record>, DbError> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            let (rec, used) = Record::decode_from(buf)?;
            out.push(rec);
            buf = &buf[used..];
        }
        Ok(out)
    }
}

/// FNV-1a 32-bit hash.
pub(crate) fn fnv1a(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in data {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_put_and_delete() {
        let mut buf = Vec::new();
        Record::put("alpha", "one").encode_into(&mut buf).unwrap();
        Record::delete("beta").encode_into(&mut buf).unwrap();
        let recs = Record::decode_all(&buf).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], Record::put("alpha", "one"));
        assert_eq!(recs[1], Record::delete("beta"));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = Vec::new();
        Record::put("key", "value").encode_into(&mut buf).unwrap();
        buf[14] ^= 0xFF; // flip a body byte
        assert!(matches!(
            Record::decode_from(&buf),
            Err(DbError::Corruption { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        Record::put("key", "value").encode_into(&mut buf).unwrap();
        assert!(Record::decode_from(&buf[..buf.len() - 1]).is_err());
        assert!(Record::decode_from(&buf[..5]).is_err());
    }

    #[test]
    fn oversized_rejected() {
        let big = vec![0u8; MAX_LEN + 1];
        let mut buf = Vec::new();
        assert_eq!(
            Record::put(big.clone(), "v").encode_into(&mut buf),
            Err(DbError::TooLarge)
        );
        assert_eq!(
            Record::put("k", big).encode_into(&mut buf),
            Err(DbError::TooLarge)
        );
    }

    #[test]
    fn lengths_accounted() {
        let r = Record::put("1234", "567890");
        assert_eq!(r.payload_len(), 10);
        assert_eq!(r.encoded_len(), 22);
        let d = Record::delete("1234");
        assert_eq!(d.payload_len(), 4);
        assert_eq!(d.encoded_len(), 16);
    }

    proptest! {
        /// Arbitrary records round-trip through encode/decode.
        #[test]
        fn roundtrip_arbitrary(
            key in proptest::collection::vec(any::<u8>(), 0..100),
            value in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..200)),
        ) {
            let rec = Record { key, value };
            let mut buf = Vec::new();
            rec.encode_into(&mut buf).unwrap();
            let (back, used) = Record::decode_from(&buf).unwrap();
            prop_assert_eq!(back, rec);
            prop_assert_eq!(used, buf.len());
        }
    }
}
