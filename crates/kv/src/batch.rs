//! Atomic write batches, RocksDB-style.

use crate::record::Record;
use serde::{Deserialize, Serialize};

/// A group of mutations applied atomically: either every record reaches
/// the WAL (and therefore survives a crash together) or none do.
///
/// # Example
///
/// ```
/// use deepnote_kv::WriteBatch;
///
/// let mut batch = WriteBatch::new();
/// batch.put(b"account:alice", b"90");
/// batch.put(b"account:bob", b"110");
/// batch.delete(b"pending:transfer");
/// assert_eq!(batch.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WriteBatch {
    records: Vec<Record>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Adds a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.records.push(Record::put(key, value));
        self
    }

    /// Adds a delete.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.records.push(Record::delete(key));
        self
    }

    /// Number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the batch into its records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_order() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1").delete(b"b").put(b"c", b"3");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.records()[0], Record::put("a", "1"));
        assert_eq!(b.records()[1], Record::delete("b"));
        let records = b.into_records();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn empty_batch() {
        assert!(WriteBatch::new().is_empty());
        assert_eq!(WriteBatch::default().len(), 0);
    }
}
