//! The in-memory write buffer.

use crate::record::Record;
use std::collections::BTreeMap;

/// An ordered in-memory buffer of the latest mutations, including
/// tombstones, with approximate size accounting for flush triggering.
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    approx_bytes: usize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Applies a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.apply(Record::put(key, value));
    }

    /// Applies a delete (records a tombstone).
    pub fn delete(&mut self, key: &[u8]) {
        self.apply(Record::delete(key));
    }

    /// Applies a record.
    pub fn apply(&mut self, rec: Record) {
        self.approx_bytes += rec.encoded_len();
        if let Some(old) = self.entries.insert(rec.key, rec.value) {
            // Rough accounting: drop the replaced value's weight.
            self.approx_bytes = self.approx_bytes.saturating_sub(old.map_or(0, |v| v.len()));
        }
    }

    /// Looks up a key. `Some(None)` means "deleted here" (tombstone);
    /// `None` means "not present in this memtable".
    pub fn get(&self, key: &[u8]) -> Option<Option<&[u8]>> {
        self.entries.get(key).map(|v| v.as_deref())
    }

    /// Number of distinct keys (including tombstones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memtable holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint, for flush triggering.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Drains the memtable into sorted records for an SSTable flush.
    pub fn drain_sorted(&mut self) -> Vec<Record> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.entries)
            .into_iter()
            .map(|(key, value)| Record { key, value })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut m = Memtable::new();
        m.put(b"a", b"1");
        assert_eq!(m.get(b"a"), Some(Some(b"1".as_ref())));
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Some(None)); // tombstone
        assert_eq!(m.get(b"b"), None); // unknown
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = Memtable::new();
        m.put(b"k", b"old");
        m.put(b"k", b"new");
        assert_eq!(m.get(b"k"), Some(Some(b"new".as_ref())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let mut m = Memtable::new();
        m.put(b"c", b"3");
        m.put(b"a", b"1");
        m.delete(b"b");
        let recs = m.drain_sorted();
        let keys: Vec<&[u8]> = recs.iter().map(|r| r.key.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"b".as_ref(), b"c".as_ref()]);
        assert_eq!(recs[1].value, None);
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }

    #[test]
    fn size_accounting_grows() {
        let mut m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(b"key", &[0u8; 100]);
        assert!(m.approx_bytes() >= 100);
    }
}
