//! `db_bench`-style workloads.
//!
//! The paper runs RocksDB's `db_bench` with the `readwhilewriting`
//! workload and reports throughput (MB/s of key+value payload) and I/O
//! rate (operations per second) — Table 2. This module reproduces that
//! harness: a `fillseq` loading phase and a `readwhilewriting` phase
//! interleaving one writer with several readers on the virtual timeline.

use crate::db::Db;
use crate::error::DbError;
use deepnote_blockdev::BlockDevice;
use deepnote_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Workload parameters, mirroring `db_bench` flags.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchSpec {
    /// Number of distinct keys (`--num`).
    pub num_keys: u64,
    /// Key size in bytes (`--key_size`).
    pub key_size: usize,
    /// Value size in bytes (`--value_size`).
    pub value_size: usize,
    /// Reader ops issued per writer op (`readwhilewriting` ratio).
    pub readers_per_writer: u32,
    /// Virtual duration of the measured phase.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BenchSpec {
    fn default() -> Self {
        BenchSpec {
            num_keys: 100_000,
            key_size: 16,
            value_size: 64,
            readers_per_writer: 4,
            duration: SimDuration::from_secs(10),
            seed: 42,
        }
    }
}

impl BenchSpec {
    /// Encodes key index `i` as a fixed-width key.
    pub fn key(&self, i: u64) -> Vec<u8> {
        let mut k = format!("{i:016}").into_bytes();
        k.resize(self.key_size, b'0');
        k
    }

    /// A deterministic value for key index `i`.
    pub fn value(&self, i: u64) -> Vec<u8> {
        let mut v = format!("v{i:015}").into_bytes();
        v.resize(self.value_size, b'x');
        v
    }
}

/// The measurements `db_bench` prints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Completed operations (reads + writes).
    pub ops: u64,
    /// Failed operations before a crash stopped the run (if any).
    pub failed_ops: u64,
    /// Payload bytes processed (key+value per completed op).
    pub bytes: u64,
    /// Virtual elapsed seconds.
    pub elapsed_s: f64,
    /// Payload throughput in MB/s (Table 2's "Throughput").
    pub throughput_mb_s: f64,
    /// Operations per second (Table 2's "I/O Rate").
    pub ops_per_s: f64,
    /// Whether the store crashed during the run, and when (virtual
    /// seconds from the start of the measured phase).
    pub crashed_at_s: Option<f64>,
}

impl BenchReport {
    /// Table 2 renders the I/O rate in units of 100 000 ops/s.
    pub fn ops_per_s_x100k(&self) -> f64 {
        self.ops_per_s / 1e5
    }
}

/// Loads `spec.num_keys` sequential keys (db_bench `fillseq`).
///
/// # Errors
///
/// Fatal store errors (e.g. WAL failure mid-load).
pub fn fill_seq<D: BlockDevice>(db: &mut Db<D>, spec: &BenchSpec) -> Result<(), DbError> {
    for i in 0..spec.num_keys {
        db.put(&spec.key(i), &spec.value(i))?;
    }
    db.flush()?;
    Ok(())
}

/// Runs the `readwhilewriting` phase: one writer op (overwrite of a random
/// key) per `readers_per_writer` random reads, until `spec.duration` of
/// virtual time elapses or the store crashes.
pub fn read_while_writing<D: BlockDevice>(db: &mut Db<D>, spec: &BenchSpec) -> BenchReport {
    let clock = db.clock().clone();
    let start: SimTime = clock.now();
    let deadline = start + spec.duration;
    let mut rng = SimRng::seeded(spec.seed);

    let mut ops = 0u64;
    let mut failed = 0u64;
    let mut bytes = 0u64;
    let mut crashed_at = None;
    let payload = (spec.key_size + spec.value_size) as u64;

    'outer: while clock.now() < deadline {
        // One writer op.
        let i = rng.below(spec.num_keys);
        match db.put(&spec.key(i), &spec.value(i)) {
            Ok(()) => {
                ops += 1;
                bytes += payload;
            }
            Err(e) => {
                failed += 1;
                if e.is_fatal() {
                    crashed_at = Some((clock.now() - start).as_secs_f64());
                    break 'outer;
                }
            }
        }
        // A batch of reader ops.
        for _ in 0..spec.readers_per_writer {
            let i = rng.below(spec.num_keys);
            match db.get(&spec.key(i)) {
                Ok(_) => {
                    ops += 1;
                    bytes += payload;
                }
                Err(e) => {
                    failed += 1;
                    if e.is_fatal() {
                        crashed_at = Some((clock.now() - start).as_secs_f64());
                        break 'outer;
                    }
                }
            }
        }
        // Background work (journal commit timer).
        if db.tick().is_err() {
            crashed_at = Some((clock.now() - start).as_secs_f64());
            break 'outer;
        }
    }

    let elapsed_s = (clock.now() - start).as_secs_f64().max(1e-9);
    // A crashed run is reported over the intended window (the bench tool
    // keeps waiting and prints zeros), matching Table 2's 0-rows.
    let window_s = if crashed_at.is_some() {
        spec.duration.as_secs_f64()
    } else {
        elapsed_s
    };
    BenchReport {
        ops,
        failed_ops: failed,
        bytes,
        elapsed_s,
        throughput_mb_s: bytes as f64 / 1e6 / window_s,
        ops_per_s: ops as f64 / window_s,
        crashed_at_s: crashed_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_blockdev::{FaultInjector, FaultPlan, IoError, MemDisk};
    use deepnote_sim::Clock;

    fn quick_spec() -> BenchSpec {
        BenchSpec {
            num_keys: 2_000,
            duration: SimDuration::from_secs(1),
            ..BenchSpec::default()
        }
    }

    #[test]
    fn fillseq_then_read_back() {
        let mut db = Db::create(MemDisk::new(1 << 19), Clock::new()).unwrap();
        let spec = quick_spec();
        fill_seq(&mut db, &spec).unwrap();
        assert_eq!(db.get(&spec.key(0)).unwrap(), Some(spec.value(0)));
        assert_eq!(
            db.get(&spec.key(spec.num_keys - 1)).unwrap(),
            Some(spec.value(spec.num_keys - 1))
        );
    }

    #[test]
    fn read_while_writing_healthy_reports_rates() {
        let mut db = Db::create(MemDisk::new(1 << 19), Clock::new()).unwrap();
        let spec = quick_spec();
        fill_seq(&mut db, &spec).unwrap();
        let report = read_while_writing(&mut db, &spec);
        assert!(report.crashed_at_s.is_none());
        assert!(report.ops > 10_000, "ops = {}", report.ops);
        assert!(report.throughput_mb_s > 1.0, "{report:?}");
        assert!((report.elapsed_s - 1.0).abs() < 0.05);
        assert_eq!(report.failed_ops, 0);
        assert!((report.ops_per_s_x100k() - report.ops_per_s / 1e5).abs() < 1e-12);
    }

    #[test]
    fn keys_are_fixed_width_and_deterministic() {
        let spec = BenchSpec::default();
        assert_eq!(spec.key(7).len(), 16);
        assert_eq!(spec.value(7).len(), 64);
        assert_eq!(spec.key(7), spec.key(7));
        assert_ne!(spec.key(7), spec.key(8));
    }

    #[test]
    fn blocked_device_crashes_run_and_reports_zero_class_rates() {
        let clock = Clock::new();
        let disk = FaultInjector::new(MemDisk::new(1 << 19), FaultPlan::None);
        let mut db = Db::create(disk, clock.clone()).unwrap();
        let spec = BenchSpec {
            num_keys: 2_000,
            duration: SimDuration::from_secs(120),
            ..BenchSpec::default()
        };
        fill_seq(&mut db, &spec).unwrap();
        db.filesystem_mut()
            .device_mut()
            .set_plan(FaultPlan::FailWritesFrom {
                start: 0,
                error: IoError::NoResponse,
            });
        let report = read_while_writing(&mut db, &spec);
        let crashed_at = report.crashed_at_s.expect("must crash");
        assert!(
            (79.0..92.0).contains(&crashed_at),
            "crashed at {crashed_at}"
        );
        // Rates over the full window are a small fraction of healthy.
        assert!(report.throughput_mb_s < 2.0, "{report:?}");
    }
}
