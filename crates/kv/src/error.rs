//! Database errors.

use deepnote_fs::FsError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by the key-value store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbError {
    /// An error from the filesystem layer.
    Fs(FsError),
    /// The WAL could not be persisted within the store's patience budget.
    /// This is the paper's RocksDB crash: the process dies with a
    /// `sync_without_flush` failure because incoming key-value pairs can
    /// no longer be made durable.
    WalSyncFailed,
    /// A checksum mismatch while reading the WAL or an SSTable.
    Corruption {
        /// Human-readable context.
        what: String,
    },
    /// The database has crashed (a previous fatal error); all further
    /// operations are refused.
    Closed,
    /// Key or value exceeds the supported size.
    TooLarge,
}

impl DbError {
    /// Whether this error means the database process is dead.
    pub fn is_fatal(&self) -> bool {
        match self {
            DbError::WalSyncFailed | DbError::Closed => true,
            DbError::Fs(e) => e.is_fatal(),
            _ => false,
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Fs(e) => write!(f, "filesystem error: {e}"),
            DbError::WalSyncFailed => {
                write!(f, "sync_without_flush failed: WAL cannot be persisted")
            }
            DbError::Corruption { what } => write!(f, "corruption detected: {what}"),
            DbError::Closed => write!(f, "database is closed after a fatal error"),
            DbError::TooLarge => write!(f, "key or value too large"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<FsError> for DbError {
    fn from(e: FsError) -> Self {
        DbError::Fs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fatal_classification() {
        assert!(DbError::WalSyncFailed.is_fatal());
        assert!(DbError::Closed.is_fatal());
        assert!(DbError::Fs(FsError::JournalAborted { errno: -5 }).is_fatal());
        assert!(!DbError::Fs(FsError::NotFound).is_fatal());
        assert!(!DbError::Corruption { what: "x".into() }.is_fatal());
    }

    #[test]
    fn crash_message_matches_paper() {
        assert!(DbError::WalSyncFailed
            .to_string()
            .contains("sync_without_flush"));
    }
}
