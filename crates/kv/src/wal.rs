//! The write-ahead log.
//!
//! Mutations are appended to an in-memory group buffer and made durable by
//! [`Wal::sync`], which writes the buffered bytes to the WAL file and
//! forces a filesystem commit (fsync). Sync failures are retried until a
//! patience budget is exhausted; then the WAL reports
//! [`DbError::WalSyncFailed`] — the paper's RocksDB crash cause.

use crate::error::DbError;
use crate::record::Record;
use deepnote_blockdev::BlockDevice;
use deepnote_fs::{Filesystem, FsError};
use deepnote_sim::{Clock, SimDuration};

/// The write-ahead log for one database.
#[derive(Debug)]
pub struct Wal {
    path: String,
    /// Bytes already durable in the file.
    synced_len: u64,
    /// Encoded records not yet durable.
    buffer: Vec<u8>,
    /// Records represented in `buffer` (for accounting).
    buffered_records: u64,
    patience: SimDuration,
}

impl Wal {
    /// Opens (or adopts) the WAL at `path`; `existing_len` is the durable
    /// length discovered during recovery (0 for a fresh log).
    pub fn new(path: impl Into<String>, existing_len: u64, patience: SimDuration) -> Self {
        Wal {
            path: path.into(),
            synced_len: existing_len,
            buffer: Vec::new(),
            buffered_records: 0,
            patience,
        }
    }

    /// The WAL file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Bytes buffered but not yet durable.
    pub fn unsynced_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Durable length of the log file.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Appends a record to the group buffer (no I/O).
    ///
    /// # Errors
    ///
    /// [`DbError::TooLarge`] for oversized records.
    pub fn append(&mut self, rec: &Record) -> Result<(), DbError> {
        rec.encode_into(&mut self.buffer)?;
        self.buffered_records += 1;
        Ok(())
    }

    /// Makes all buffered records durable: file write + filesystem commit,
    /// retried until the patience budget runs out.
    ///
    /// # Errors
    ///
    /// [`DbError::WalSyncFailed`] when persistence stays blocked past the
    /// patience budget, or when the filesystem journal has aborted.
    pub fn sync<D: BlockDevice>(
        &mut self,
        fs: &mut Filesystem<D>,
        clock: &Clock,
    ) -> Result<(), DbError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let deadline = clock.now() + self.patience;
        // Phase 1: get the bytes into the file (ordered-mode data write).
        loop {
            let before = clock.now();
            match fs.write_file(&self.path, self.synced_len, &self.buffer) {
                Ok(()) => break,
                Err(FsError::JournalAborted { .. }) => return Err(DbError::WalSyncFailed),
                Err(_) if clock.now() < deadline => {
                    // If the device failed without burning time (ideal
                    // device + injected fault), model the requeue delay.
                    if clock.now() == before {
                        clock.advance(SimDuration::from_millis(10));
                    }
                }
                Err(_) => return Err(DbError::WalSyncFailed),
            }
        }
        // Phase 2: commit the metadata (fsync).
        loop {
            let before = clock.now();
            match fs.commit() {
                Ok(()) => break,
                Err(FsError::JournalAborted { .. }) => return Err(DbError::WalSyncFailed),
                Err(_) if clock.now() < deadline => {
                    if clock.now() == before {
                        clock.advance(SimDuration::from_millis(10));
                    }
                }
                Err(_) => return Err(DbError::WalSyncFailed),
            }
        }
        self.synced_len += self.buffer.len() as u64;
        self.buffer.clear();
        self.buffered_records = 0;
        Ok(())
    }

    /// Resets the log after a successful memtable flush: the old records
    /// are superseded by the SSTable, so the file is recreated empty.
    ///
    /// # Errors
    ///
    /// Filesystem errors (fatal ones should crash the caller).
    pub fn reset<D: BlockDevice>(&mut self, fs: &mut Filesystem<D>) -> Result<(), DbError> {
        if fs.exists(&self.path) {
            fs.unlink(&self.path)?;
        }
        fs.create_file(&self.path)?;
        self.synced_len = 0;
        self.buffer.clear();
        self.buffered_records = 0;
        Ok(())
    }

    /// Reads back all complete records in the durable log (recovery).
    /// Decoding stops cleanly at the first torn/corrupt record, like
    /// RocksDB's WAL reader.
    ///
    /// # Errors
    ///
    /// Filesystem errors while reading.
    pub fn load<D: BlockDevice>(
        path: &str,
        fs: &mut Filesystem<D>,
    ) -> Result<(Vec<Record>, u64), DbError> {
        let size = fs.stat(path)?.size;
        let raw = fs.read_file(path, 0, size as usize)?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        while offset < raw.len() {
            match Record::decode_from(&raw[offset..]) {
                Ok((rec, used)) => {
                    records.push(rec);
                    offset += used;
                }
                Err(_) => break, // torn tail: stop replay here
            }
        }
        Ok((records, offset as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_blockdev::{FaultInjector, FaultPlan, IoError, MemDisk};

    fn fs_with_wal() -> (Filesystem<MemDisk>, Wal, Clock) {
        let clock = Clock::new();
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock.clone()).unwrap();
        fs.create("/db").unwrap();
        fs.create_file("/db/wal").unwrap();
        (
            fs,
            Wal::new("/db/wal", 0, SimDuration::from_secs(81)),
            clock,
        )
    }

    #[test]
    fn append_sync_load_roundtrip() {
        let (mut fs, mut wal, clock) = fs_with_wal();
        wal.append(&Record::put("k1", "v1")).unwrap();
        wal.append(&Record::delete("k2")).unwrap();
        assert!(wal.unsynced_bytes() > 0);
        wal.sync(&mut fs, &clock).unwrap();
        assert_eq!(wal.unsynced_bytes(), 0);
        let (records, len) = Wal::load("/db/wal", &mut fs).unwrap();
        assert_eq!(records, vec![Record::put("k1", "v1"), Record::delete("k2")]);
        assert_eq!(len, wal.synced_len());
    }

    #[test]
    fn sync_of_empty_buffer_is_noop() {
        let (mut fs, mut wal, clock) = fs_with_wal();
        let t0 = clock.now();
        wal.sync(&mut fs, &clock).unwrap();
        assert_eq!(clock.now(), t0);
    }

    #[test]
    fn reset_truncates() {
        let (mut fs, mut wal, clock) = fs_with_wal();
        wal.append(&Record::put("k", "v")).unwrap();
        wal.sync(&mut fs, &clock).unwrap();
        wal.reset(&mut fs).unwrap();
        assert_eq!(wal.synced_len(), 0);
        let (records, _) = Wal::load("/db/wal", &mut fs).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored_on_load() {
        let (mut fs, mut wal, clock) = fs_with_wal();
        wal.append(&Record::put("good", "record")).unwrap();
        wal.sync(&mut fs, &clock).unwrap();
        // Simulate a torn append: garbage bytes after the good record.
        fs.write_file("/db/wal", wal.synced_len(), &[0xFF, 0x00, 0x13])
            .unwrap();
        let (records, len) = Wal::load("/db/wal", &mut fs).unwrap();
        assert_eq!(records, vec![Record::put("good", "record")]);
        assert_eq!(len, wal.synced_len());
    }

    #[test]
    fn blocked_sync_crashes_after_patience() {
        let clock = Clock::new();
        let jcfg = deepnote_fs::JournalConfig {
            patience: SimDuration::from_secs(81),
            ..Default::default()
        };
        let mut fs = Filesystem::format_with_config(
            FaultInjector::new(MemDisk::new(1 << 17), FaultPlan::None),
            clock.clone(),
            jcfg,
        )
        .unwrap();
        fs.create("/db").unwrap();
        fs.create_file("/db/wal").unwrap();
        let mut wal = Wal::new("/db/wal", 0, SimDuration::from_secs(81));
        wal.append(&Record::put("k", "v")).unwrap();
        fs.device_mut().set_plan(FaultPlan::FailWritesFrom {
            start: 0,
            error: IoError::NoResponse,
        });
        let t0 = clock.now();
        assert_eq!(wal.sync(&mut fs, &clock), Err(DbError::WalSyncFailed));
        let waited = (clock.now() - t0).as_secs_f64();
        assert!((80.0..85.0).contains(&waited), "waited {waited}");
    }
}
