//! Model-based property testing for the LSM store: random mutation/query
//! sequences against a `BTreeMap` model, across flushes, compactions,
//! batches, scans, and a full sync + crash + reopen cycle.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_blockdev::MemDisk;
use deepnote_kv::{Db, DbConfig, WriteBatch};
use deepnote_sim::{Clock, SimDuration};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Delete(u8),
    Get(u8),
    Batch(Vec<(u8, Option<Vec<u8>>)>),
    Scan(u8, u8),
    Flush,
    Compact,
}

fn key(k: u8) -> Vec<u8> {
    format!("key{k:03}").into_bytes()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Delete),
        any::<u8>().prop_map(Op::Get),
        proptest::collection::vec(
            (
                any::<u8>(),
                proptest::option::of(proptest::collection::vec(any::<u8>(), 0..32))
            ),
            1..8
        )
        .prop_map(Op::Batch),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
        Just(Op::Flush),
        Just(Op::Compact),
    ]
}

fn tight_config() -> DbConfig {
    DbConfig {
        memtable_limit_bytes: 2 << 10, // flush constantly
        l0_compaction_trigger: 2,
        wal_sync_every_ops: 16,
        wal_patience: SimDuration::from_secs(81),
        cpu_op_cost: SimDuration::from_micros(1),
    }
}

fn apply(db: &mut Db<MemDisk>, model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &Op) {
    match op {
        Op::Put(k, v) => {
            db.put(&key(*k), v).unwrap();
            model.insert(key(*k), v.clone());
        }
        Op::Delete(k) => {
            db.delete(&key(*k)).unwrap();
            model.remove(&key(*k));
        }
        Op::Get(k) => {
            let got = db.get(&key(*k)).unwrap();
            assert_eq!(got.as_ref(), model.get(&key(*k)), "get({k})");
        }
        Op::Batch(entries) => {
            let mut batch = WriteBatch::new();
            for (k, v) in entries {
                match v {
                    Some(v) => {
                        batch.put(&key(*k), v);
                        model.insert(key(*k), v.clone());
                    }
                    None => {
                        batch.delete(&key(*k));
                        model.remove(&key(*k));
                    }
                }
            }
            db.write(batch).unwrap();
        }
        Op::Scan(lo, hi) => {
            let got = db.scan(&key(*lo), &key(*hi)).unwrap();
            let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                .range(key(*lo)..key(*hi))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            assert_eq!(got, expected, "scan({lo}, {hi})");
        }
        Op::Flush => db.flush().unwrap(),
        Op::Compact => db.compact().unwrap(),
    }
}

fn check_all(db: &mut Db<MemDisk>, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    for (k, v) in model {
        assert_eq!(db.get(k).unwrap().as_ref(), Some(v), "final get {k:?}");
    }
    // Full scan equals the model.
    let got = db.scan(b"key000", b"key999").unwrap();
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got, expected, "full scan");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The store agrees with a BTreeMap through arbitrary op sequences,
    /// and again after sync + crash + reopen.
    #[test]
    fn store_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let clock = Clock::new();
        let mut db = Db::create_with(MemDisk::new(1 << 19), clock.clone(), tight_config()).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&mut db, &mut model, op);
        }
        check_all(&mut db, &model);

        // Make the tail durable, then crash (no close) and reopen.
        db.sync_wal().unwrap();
        let dev = {
            let mut out = MemDisk::new(1);
            std::mem::swap(&mut out, db.filesystem_mut().device_mut());
            out
        };
        let mut db2 = Db::open_with(dev, clock, tight_config()).unwrap();
        check_all(&mut db2, &model);
    }
}

#[test]
fn regression_delete_survives_compaction_and_reopen() {
    let clock = Clock::new();
    let mut db = Db::create_with(MemDisk::new(1 << 19), clock.clone(), tight_config()).unwrap();
    db.put(&key(1), b"v1").unwrap();
    db.flush().unwrap();
    db.delete(&key(1)).unwrap();
    db.flush().unwrap();
    db.compact().unwrap();
    assert_eq!(db.get(&key(1)).unwrap(), None);
    db.sync_wal().unwrap();
    let dev = db.close().unwrap();
    let mut db2 = Db::open_with(dev, clock, tight_config()).unwrap();
    assert_eq!(db2.get(&key(1)).unwrap(), None);
}
