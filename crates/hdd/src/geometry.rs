//! Drive geometry.
//!
//! Enough physical layout to derive seek distances, rotational timing, and
//! the track pitch that the off-track tolerance thresholds are measured
//! against.

use serde::{Deserialize, Serialize};

/// Bytes in one sector.
pub const SECTOR_SIZE: u64 = 512;

/// The physical layout of a drive.
///
/// # Example
///
/// ```
/// use deepnote_hdd::DriveGeometry;
///
/// let geo = DriveGeometry::barracuda_500gb();
/// assert_eq!(geo.rpm(), 7200);
/// assert!(geo.total_sectors() * 512 >= 500_000_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriveGeometry {
    name: String,
    rpm: u32,
    platters: u32,
    heads: u32,
    sectors_per_track: u64,
    tracks_per_surface: u64,
    track_pitch_nm: f64,
}

impl DriveGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the track pitch is not positive.
    pub fn new(
        name: impl Into<String>,
        rpm: u32,
        platters: u32,
        heads: u32,
        sectors_per_track: u64,
        tracks_per_surface: u64,
        track_pitch_nm: f64,
    ) -> Self {
        assert!(rpm > 0, "rpm must be positive");
        assert!(platters > 0 && heads > 0, "platters/heads must be positive");
        assert!(heads <= platters * 2, "at most two heads per platter");
        assert!(
            sectors_per_track > 0 && tracks_per_surface > 0,
            "sector/track counts must be positive"
        );
        assert!(track_pitch_nm > 0.0, "track pitch must be positive");
        DriveGeometry {
            name: name.into(),
            rpm,
            platters,
            heads,
            sectors_per_track,
            tracks_per_surface,
            track_pitch_nm,
        }
    }

    /// The paper's victim drive: a Seagate Barracuda 500 GB desktop drive
    /// (7200 RPM, one platter, two heads, ~100 nm track pitch class).
    pub fn barracuda_500gb() -> Self {
        // 500 GB / 512 B = ~976.6 M sectors over 2 surfaces:
        // 1_200_000 sectors/track-cylinder ≈ realistic zoned average of
        // ~2000 sectors/track × 245k tracks/surface.
        DriveGeometry::new(
            "Seagate Barracuda 500GB (ST500DM002 class)",
            7_200,
            1,
            2,
            2_000,
            245_000,
            100.0,
        )
    }

    /// A nearline enterprise drive of the class actually racked in
    /// data-center JBODs: 4 TB, four platters, higher areal density
    /// (tighter 70 nm track pitch), zoned at ~2500 sectors/track average.
    pub fn nearline_4tb() -> Self {
        DriveGeometry::new(
            "4TB nearline enterprise (Exos class)",
            7_200,
            4,
            8,
            2_500,
            390_000,
            70.0,
        )
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Spindle speed in revolutions per minute.
    pub fn rpm(&self) -> u32 {
        self.rpm
    }

    /// Number of platters.
    pub fn platters(&self) -> u32 {
        self.platters
    }

    /// Number of read/write heads (recording surfaces).
    pub fn heads(&self) -> u32 {
        self.heads
    }

    /// Average sectors per track.
    pub fn sectors_per_track(&self) -> u64 {
        self.sectors_per_track
    }

    /// Tracks per recording surface.
    pub fn tracks_per_surface(&self) -> u64 {
        self.tracks_per_surface
    }

    /// Track-to-track pitch in nanometres.
    pub fn track_pitch_nm(&self) -> f64 {
        self.track_pitch_nm
    }

    /// Total addressable sectors.
    pub fn total_sectors(&self) -> u64 {
        self.sectors_per_track * self.tracks_per_surface * self.heads as u64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors() * SECTOR_SIZE
    }

    /// One full revolution, in seconds.
    pub fn revolution_s(&self) -> f64 {
        60.0 / self.rpm as f64
    }

    /// The cylinder (track index) containing an LBA, serpentine layout:
    /// consecutive LBAs fill a whole cylinder (all heads) before seeking.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range.
    pub fn cylinder_of(&self, lba: u64) -> u64 {
        assert!(lba < self.total_sectors(), "LBA {lba} out of range");
        lba / (self.sectors_per_track * self.heads as u64)
    }

    /// Media transfer rate in bytes/second, from rotation and linear
    /// density: one track passes the head per revolution.
    pub fn media_rate_bytes_per_s(&self) -> f64 {
        self.sectors_per_track as f64 * SECTOR_SIZE as f64 / self.revolution_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barracuda_capacity_is_500gb_class() {
        let geo = DriveGeometry::barracuda_500gb();
        let gb = geo.capacity_bytes() as f64 / 1e9;
        assert!((490.0..520.0).contains(&gb), "capacity = {gb} GB");
    }

    #[test]
    fn nearline_capacity_is_4tb_class() {
        let geo = DriveGeometry::nearline_4tb();
        let tb = geo.capacity_bytes() as f64 / 1e12;
        assert!((3.8..4.2).contains(&tb), "capacity = {tb} TB");
        assert!(geo.track_pitch_nm() < DriveGeometry::barracuda_500gb().track_pitch_nm());
    }

    #[test]
    fn revolution_time_at_7200rpm() {
        let geo = DriveGeometry::barracuda_500gb();
        assert!((geo.revolution_s() - 8.333e-3).abs() < 1e-6);
    }

    #[test]
    fn media_rate_is_plausible() {
        // ~2000 sectors × 512 B per 8.33 ms ≈ 123 MB/s: desktop class.
        let rate = DriveGeometry::barracuda_500gb().media_rate_bytes_per_s();
        assert!((100e6..160e6).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn cylinder_mapping_is_serpentine() {
        let geo = DriveGeometry::barracuda_500gb();
        let per_cyl = geo.sectors_per_track() * geo.heads() as u64;
        assert_eq!(geo.cylinder_of(0), 0);
        assert_eq!(geo.cylinder_of(per_cyl - 1), 0);
        assert_eq!(geo.cylinder_of(per_cyl), 1);
        assert_eq!(
            geo.cylinder_of(geo.total_sectors() - 1),
            geo.tracks_per_surface() - 1
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cylinder_of_bad_lba_panics() {
        let geo = DriveGeometry::barracuda_500gb();
        geo.cylinder_of(geo.total_sectors());
    }

    #[test]
    #[should_panic(expected = "heads")]
    fn too_many_heads_rejected() {
        DriveGeometry::new("x", 7200, 1, 3, 100, 100, 100.0);
    }
}
