//! Closed-form steady-state throughput under vibration.
//!
//! The frequency and distance sweeps (Fig. 2, Tables 1–2) evaluate
//! hundreds of operating points; rather than simulate each op-by-op, this
//! module computes the *expected* sequential throughput and latency
//! directly from the per-attempt success probability, matching the op
//! engine in expectation (verified by tests).

use crate::drive::{attempt_probability, DiskOpKind};
use crate::geometry::DriveGeometry;
use crate::servo::ServoModel;
use crate::timing::TimingModel;
use crate::vibration::{ToleranceModel, VibrationState};
use serde::{Deserialize, Serialize};

/// The expected steady-state behaviour of sequential I/O at one operating
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyState {
    /// Expected throughput in decimal MB/s. Zero when unresponsive.
    pub throughput_mb_s: f64,
    /// Expected per-op completion latency in ms, or `None` when the drive
    /// never completes ops ("-" in the paper's tables).
    pub mean_latency_ms: Option<f64>,
    /// Per-attempt success probability (1.0 when quiescent, 0.0 when
    /// escalated).
    pub attempt_probability: f64,
}

impl SteadyState {
    /// Whether the drive is still serving any I/O at this point.
    pub fn responsive(&self) -> bool {
        self.throughput_mb_s > 0.0
    }
}

/// Computes the expected steady state of 4 KiB-class sequential I/O.
///
/// `vibration = None` is the quiescent baseline.
///
/// # Example
///
/// ```
/// use deepnote_hdd::prelude::*;
/// use deepnote_acoustics::Frequency;
///
/// let geo = DriveGeometry::barracuda_500gb();
/// let timing = TimingModel::barracuda_500gb();
/// let servo = ServoModel::typical();
/// let tol = ToleranceModel::typical();
///
/// let base = steady_state(&geo, &timing, &servo, &tol, None, 8, DiskOpKind::Write);
/// assert!((base.throughput_mb_s - 22.7).abs() < 0.1);
///
/// let attack = VibrationState::new(Frequency::from_hz(650.0), 0.6);
/// let hit = steady_state(&geo, &timing, &servo, &tol, Some(&attack), 8, DiskOpKind::Write);
/// assert_eq!(hit.throughput_mb_s, 0.0);
/// assert_eq!(hit.mean_latency_ms, None);
/// ```
pub fn steady_state(
    geometry: &DriveGeometry,
    timing: &TimingModel,
    servo: &ServoModel,
    tolerance: &ToleranceModel,
    vibration: Option<&VibrationState>,
    sectors: u64,
    kind: DiskOpKind,
) -> SteadyState {
    assert!(sectors > 0, "sectors must be positive");
    let read = kind.is_read();
    let p = match vibration {
        None => Some(1.0),
        Some(v) => attempt_probability(geometry, timing, servo, tolerance, v, kind),
    };
    let Some(p) = p else {
        return SteadyState {
            throughput_mb_s: 0.0,
            mean_latency_ms: None,
            attempt_probability: 0.0,
        };
    };
    if p <= 0.0 {
        return SteadyState {
            throughput_mb_s: 0.0,
            mean_latency_ms: None,
            attempt_probability: 0.0,
        };
    }

    let base = timing.sequential_op_s(geometry, sectors, read);
    // Expected retries: attempts are geometric with success p, truncated
    // at max_retries. If success within the horizon is too unlikely the
    // device is effectively unresponsive.
    let max = timing.max_retries() as f64;
    let p_success_within_horizon = 1.0 - (1.0 - p).powf(max);
    if p_success_within_horizon < 0.5 {
        return SteadyState {
            throughput_mb_s: 0.0,
            mean_latency_ms: None,
            attempt_probability: p,
        };
    }
    let expected_failures = (1.0 - p) / p;
    let op_s = base + expected_failures * timing.retry_delay_s(read);
    let bytes = sectors as f64 * crate::geometry::SECTOR_SIZE as f64;
    SteadyState {
        throughput_mb_s: bytes / op_s / 1e6,
        mean_latency_ms: Some(op_s * 1e3),
        attempt_probability: p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::Frequency;
    use deepnote_sim::Clock;
    use proptest::prelude::*;

    fn parts() -> (DriveGeometry, TimingModel, ServoModel, ToleranceModel) {
        (
            DriveGeometry::barracuda_500gb(),
            TimingModel::barracuda_500gb(),
            ServoModel::typical(),
            ToleranceModel::typical(),
        )
    }

    #[test]
    fn baseline_matches_paper() {
        let (geo, t, s, tol) = parts();
        let read = steady_state(&geo, &t, &s, &tol, None, 8, DiskOpKind::Read);
        let write = steady_state(&geo, &t, &s, &tol, None, 8, DiskOpKind::Write);
        assert!((read.throughput_mb_s - 18.0).abs() < 0.05, "{read:?}");
        assert!((write.throughput_mb_s - 22.7).abs() < 0.05, "{write:?}");
        assert!((read.mean_latency_ms.unwrap() - 0.228).abs() < 0.01);
        assert!((write.mean_latency_ms.unwrap() - 0.180).abs() < 0.01);
    }

    #[test]
    fn strong_vibration_unresponsive() {
        let (geo, t, s, tol) = parts();
        let v = VibrationState::new(Frequency::from_hz(650.0), 1.0);
        for kind in [DiskOpKind::Read, DiskOpKind::Write] {
            let ss = steady_state(&geo, &t, &s, &tol, Some(&v), 8, kind);
            assert!(!ss.responsive(), "{kind}: {ss:?}");
            assert_eq!(ss.mean_latency_ms, None);
        }
    }

    #[test]
    fn moderate_vibration_degrades_writes_more_than_reads() {
        let (geo, t, s, tol) = parts();
        // Residual ≈ 16 nm at 650 Hz.
        let amp_um = 16.0 / s.rejection(Frequency::from_hz(650.0)) / 1000.0;
        let v = VibrationState::new(Frequency::from_hz(650.0), amp_um);
        let read = steady_state(&geo, &t, &s, &tol, Some(&v), 8, DiskOpKind::Read);
        let write = steady_state(&geo, &t, &s, &tol, Some(&v), 8, DiskOpKind::Write);
        assert!(read.responsive() && write.responsive());
        assert!(read.throughput_mb_s > 10.0, "{read:?}");
        assert!(write.throughput_mb_s < 3.0, "{write:?}");
        assert!(write.mean_latency_ms.unwrap() > read.mean_latency_ms.unwrap());
    }

    #[test]
    fn out_of_band_vibration_is_harmless() {
        let (geo, t, s, tol) = parts();
        // Strong displacement at 30 Hz: the servo tracks it out.
        let v = VibrationState::new(Frequency::from_hz(30.0), 2.0);
        let write = steady_state(&geo, &t, &s, &tol, Some(&v), 8, DiskOpKind::Write);
        assert!((write.throughput_mb_s - 22.7).abs() < 0.1, "{write:?}");
    }

    #[test]
    fn analytic_matches_op_engine_in_expectation() {
        use crate::drive::{DiskOp, HardDiskDrive};
        let (geo, t, s, tol) = parts();
        let amp_um = 14.0 / s.rejection(Frequency::from_hz(650.0)) / 1000.0;
        let v = VibrationState::new(Frequency::from_hz(650.0), amp_um);
        let predicted = steady_state(&geo, &t, &s, &tol, Some(&v), 8, DiskOpKind::Write);

        let clock = Clock::new();
        let mut drive = HardDiskDrive::barracuda_500gb(clock.clone());
        drive.vibration().set(Some(v));
        let t0 = clock.now();
        let n = 3000u64;
        let mut completed = 0u64;
        let mut lba = 0;
        for _ in 0..n {
            if drive.execute(DiskOp::write(lba, 8)).is_ok() {
                completed += 1;
            }
            lba += 8;
        }
        let elapsed = (clock.now() - t0).as_secs_f64();
        let measured = completed as f64 * 4096.0 / elapsed / 1e6;
        let rel = (measured - predicted.throughput_mb_s).abs() / predicted.throughput_mb_s;
        assert!(
            rel < 0.15,
            "measured = {measured}, predicted = {}",
            predicted.throughput_mb_s
        );
    }

    proptest! {
        /// More displacement never helps throughput.
        #[test]
        fn monotone_in_displacement(a in 0.0f64..0.5, da in 0.001f64..0.5) {
            let (geo, t, s, tol) = parts();
            let f = Frequency::from_hz(650.0);
            let lo = steady_state(&geo, &t, &s, &tol, Some(&VibrationState::new(f, a)), 8, DiskOpKind::Write);
            let hi = steady_state(&geo, &t, &s, &tol, Some(&VibrationState::new(f, a + da)), 8, DiskOpKind::Write);
            prop_assert!(hi.throughput_mb_s <= lo.throughput_mb_s + 1e-9);
        }

        /// Reads always beat (or match) writes under the same vibration —
        /// the paper's core asymmetry.
        #[test]
        fn reads_geq_writes(a in 0.0f64..2.0, hz in 100.0f64..5_000.0) {
            let (geo, t, s, tol) = parts();
            let v = VibrationState::new(Frequency::from_hz(hz), a);
            let r = steady_state(&geo, &t, &s, &tol, Some(&v), 8, DiskOpKind::Read);
            let w = steady_state(&geo, &t, &s, &tol, Some(&v), 8, DiskOpKind::Write);
            // Compare degradation fractions relative to each baseline.
            let rb = steady_state(&geo, &t, &s, &tol, None, 8, DiskOpKind::Read).throughput_mb_s;
            let wb = steady_state(&geo, &t, &s, &tol, None, 8, DiskOpKind::Write).throughput_mb_s;
            prop_assert!(r.throughput_mb_s / rb >= w.throughput_mb_s / wb - 1e-9);
        }
    }
}
