//! Per-operation service times.
//!
//! The paper's FIO baseline (Table 1, "No Attack") measures 4 KiB
//! synchronous sequential I/O at 18.0 MB/s read / 22.7 MB/s write with
//! 0.2 ms mean latency. Those numbers are dominated by per-command
//! overhead (interface round trip, cache handling, servo settle), not the
//! media rate, so [`TimingModel`] carries explicit per-command overheads
//! calibrated to hit that operating point, plus a conventional
//! seek/rotation model for random access.

use crate::geometry::{DriveGeometry, SECTOR_SIZE};
use deepnote_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Raw service-time inputs for [`TimingModel::new`], named so call sites
/// cannot transpose the six per-command delays (they are all seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Fixed per-command overhead for a read, seconds.
    pub read_overhead_s: f64,
    /// Fixed per-command overhead for a write, seconds.
    pub write_overhead_s: f64,
    /// Track-to-track seek time, seconds.
    pub seek_base_s: f64,
    /// Full-stroke seek time, seconds.
    pub seek_full_stroke_s: f64,
    /// Delay before retrying a failed read, seconds.
    pub retry_delay_read_s: f64,
    /// Delay before retrying a failed write, seconds.
    pub retry_delay_write_s: f64,
    /// Attempts before the drive gives up on an op.
    pub max_retries: u32,
}

/// Service-time parameters for a drive.
///
/// # Example
///
/// ```
/// use deepnote_hdd::{DriveGeometry, TimingModel};
///
/// let geo = DriveGeometry::barracuda_500gb();
/// let t = TimingModel::barracuda_500gb();
/// // Calibration: sequential 4 KiB ops land at the paper's baseline.
/// let read = t.sequential_op_s(&geo, 8, true);
/// let write = t.sequential_op_s(&geo, 8, false);
/// assert!((4096.0 / read / 1e6 - 18.0).abs() < 0.5);
/// assert!((4096.0 / write / 1e6 - 22.7).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    read_overhead_s: f64,
    write_overhead_s: f64,
    seek_base_s: f64,
    seek_full_stroke_s: f64,
    retry_delay_read_s: f64,
    retry_delay_write_s: f64,
    max_retries: u32,
    write_cache: bool,
}

impl TimingModel {
    /// Creates a timing model.
    ///
    /// # Panics
    ///
    /// Panics if any time is negative/non-finite or `max_retries` is zero.
    pub fn new(p: TimingParams) -> Self {
        for (v, what) in [
            (p.read_overhead_s, "read overhead"),
            (p.write_overhead_s, "write overhead"),
            (p.seek_base_s, "seek base"),
            (p.seek_full_stroke_s, "full-stroke seek"),
            (p.retry_delay_read_s, "read retry delay"),
            (p.retry_delay_write_s, "write retry delay"),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{what} must be finite and >= 0");
        }
        assert!(
            p.seek_full_stroke_s >= p.seek_base_s,
            "full-stroke seek cannot be shorter than track-to-track"
        );
        assert!(p.max_retries > 0, "max_retries must be positive");
        TimingModel {
            read_overhead_s: p.read_overhead_s,
            write_overhead_s: p.write_overhead_s,
            seek_base_s: p.seek_base_s,
            seek_full_stroke_s: p.seek_full_stroke_s,
            retry_delay_read_s: p.retry_delay_read_s,
            retry_delay_write_s: p.retry_delay_write_s,
            max_retries: p.max_retries,
            write_cache: true,
        }
    }

    /// Whether the drive acknowledges writes from its cache (desktop
    /// default). Cached writes do not charge the host for positioning;
    /// the media write still happens (and can still fail under
    /// vibration) — the cache hides latency, not errors.
    pub fn write_cache(&self) -> bool {
        self.write_cache
    }

    /// Returns a copy with write caching disabled (enterprise
    /// write-through configuration).
    pub fn with_write_cache_disabled(mut self) -> Self {
        self.write_cache = false;
        self
    }

    /// Timing calibrated for the paper's Barracuda under 4 KiB sync FIO:
    /// 18.0 MB/s sequential read, 22.7 MB/s sequential write, 0.2 ms
    /// per-op latency.
    pub fn barracuda_500gb() -> Self {
        let geo = DriveGeometry::barracuda_500gb();
        let xfer_4k = 4_096.0 / geo.media_rate_bytes_per_s();
        // Solve overhead so that overhead + transfer hits the target.
        let read_total = 4_096.0 / 18.0e6;
        let write_total = 4_096.0 / 22.7e6;
        TimingModel::new(TimingParams {
            read_overhead_s: read_total - xfer_4k,
            write_overhead_s: write_total - xfer_4k,
            seek_base_s: 0.8e-3,
            seek_full_stroke_s: 17.0e-3,
            // Read retry: next servo opportunity; write retry: full
            // rotational realign.
            retry_delay_read_s: 0.25e-3,
            retry_delay_write_s: geo.revolution_s(),
            max_retries: 24,
        })
    }

    /// Timing for the nearline enterprise drive: lower command overhead
    /// (no desktop power-saving stalls), faster actuator.
    pub fn nearline_4tb() -> Self {
        let geo = DriveGeometry::nearline_4tb();
        let xfer_4k = 4_096.0 / geo.media_rate_bytes_per_s();
        // 4 KiB sync targets: 24 MB/s read, 30 MB/s write.
        TimingModel::new(TimingParams {
            read_overhead_s: 4_096.0 / 24.0e6 - xfer_4k,
            write_overhead_s: 4_096.0 / 30.0e6 - xfer_4k,
            seek_base_s: 0.6e-3,
            seek_full_stroke_s: 14.0e-3,
            retry_delay_read_s: 0.25e-3,
            retry_delay_write_s: geo.revolution_s(),
            max_retries: 24,
        })
    }

    /// Fixed per-command overhead for a read or write.
    pub fn overhead_s(&self, read: bool) -> f64 {
        if read {
            self.read_overhead_s
        } else {
            self.write_overhead_s
        }
    }

    /// Media transfer time for `sectors` sectors.
    pub fn transfer_s(&self, geo: &DriveGeometry, sectors: u64) -> f64 {
        sectors as f64 * SECTOR_SIZE as f64 / geo.media_rate_bytes_per_s()
    }

    /// Service time of a sequential op (no seek, no rotational miss).
    pub fn sequential_op_s(&self, geo: &DriveGeometry, sectors: u64, read: bool) -> f64 {
        self.overhead_s(read) + self.transfer_s(geo, sectors)
    }

    /// Seek time between two cylinders: `base + (full − base)·sqrt(d/D)`,
    /// the standard concave seek curve. Zero when staying on-cylinder.
    pub fn seek_s(&self, geo: &DriveGeometry, from_cyl: u64, to_cyl: u64) -> f64 {
        if from_cyl == to_cyl {
            return 0.0;
        }
        let d = from_cyl.abs_diff(to_cyl) as f64;
        let full = geo.tracks_per_surface() as f64;
        self.seek_base_s + (self.seek_full_stroke_s - self.seek_base_s) * (d / full).sqrt()
    }

    /// Mean rotational latency (half a revolution).
    pub fn rotational_latency_s(&self, geo: &DriveGeometry) -> f64 {
        geo.revolution_s() / 2.0
    }

    /// Delay before re-attempting a failed op.
    pub fn retry_delay_s(&self, read: bool) -> f64 {
        if read {
            self.retry_delay_read_s
        } else {
            self.retry_delay_write_s
        }
    }

    /// Maximum attempts before the drive gives up on an op.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Worst-case op duration (all retries exhausted), used as the
    /// timeout horizon.
    pub fn timeout_s(&self, geo: &DriveGeometry, sectors: u64, read: bool) -> f64 {
        self.sequential_op_s(geo, sectors, read)
            + self.max_retries as f64 * self.retry_delay_s(read)
    }

    /// Convenience: a [`SimDuration`] from fractional seconds.
    pub fn duration(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (DriveGeometry, TimingModel) {
        (
            DriveGeometry::barracuda_500gb(),
            TimingModel::barracuda_500gb(),
        )
    }

    #[test]
    fn calibrated_sequential_throughput() {
        let (geo, t) = setup();
        let read_mb_s = 4_096.0 / t.sequential_op_s(&geo, 8, true) / 1e6;
        let write_mb_s = 4_096.0 / t.sequential_op_s(&geo, 8, false) / 1e6;
        assert!((read_mb_s - 18.0).abs() < 0.01, "read = {read_mb_s}");
        assert!((write_mb_s - 22.7).abs() < 0.01, "write = {write_mb_s}");
    }

    #[test]
    fn calibrated_latency_rounds_to_200us() {
        let (geo, t) = setup();
        let read_ms = t.sequential_op_s(&geo, 8, true) * 1e3;
        let write_ms = t.sequential_op_s(&geo, 8, false) * 1e3;
        assert!(
            ((read_ms * 10.0).round() / 10.0 - 0.2).abs() < 1e-12,
            "read = {read_ms} ms"
        );
        assert!(
            ((write_ms * 10.0).round() / 10.0 - 0.2).abs() < 1e-12,
            "write = {write_ms} ms"
        );
    }

    #[test]
    fn seek_zero_on_same_cylinder() {
        let (geo, t) = setup();
        assert_eq!(t.seek_s(&geo, 42, 42), 0.0);
    }

    #[test]
    fn seek_grows_with_distance_and_caps_at_full_stroke() {
        let (geo, t) = setup();
        let near = t.seek_s(&geo, 0, 10);
        let mid = t.seek_s(&geo, 0, geo.tracks_per_surface() / 4);
        let full = t.seek_s(&geo, 0, geo.tracks_per_surface());
        assert!(near < mid && mid < full);
        assert!((full - 17.0e-3).abs() < 1e-6);
        assert!(near >= 0.8e-3);
    }

    #[test]
    fn rotational_latency_half_rev() {
        let (geo, t) = setup();
        assert!((t.rotational_latency_s(&geo) - 4.1667e-3).abs() < 1e-5);
    }

    #[test]
    fn write_retry_costlier_than_read_retry() {
        let (_, t) = setup();
        assert!(t.retry_delay_s(false) > 4.0 * t.retry_delay_s(true));
    }

    #[test]
    fn timeout_includes_all_retries() {
        let (geo, t) = setup();
        let to = t.timeout_s(&geo, 8, false);
        assert!(
            (to - (t.sequential_op_s(&geo, 8, false) + 24.0 * geo.revolution_s())).abs() < 1e-9
        );
    }

    proptest! {
        /// Seek time is symmetric and monotone in distance.
        #[test]
        fn seek_symmetric_monotone(a in 0u64..245_000, b in 0u64..245_000) {
            let (geo, t) = setup();
            prop_assert!((t.seek_s(&geo, a, b) - t.seek_s(&geo, b, a)).abs() < 1e-12);
            if a != b {
                let further = if b > a { b.saturating_add(1_000).min(244_999) } else { b.saturating_sub(1_000) };
                if further.abs_diff(a) > b.abs_diff(a) {
                    prop_assert!(t.seek_s(&geo, a, further) >= t.seek_s(&geo, a, b));
                }
            }
        }
    }
}
