//! Externally imposed vibration and off-track tolerances.
//!
//! The attack's mechanical endpoint: a sinusoidal chassis vibration
//! ([`VibrationState`]) shared with the drive through a [`VibrationInput`]
//! handle, and the asymmetric read/write off-track tolerances
//! ([`ToleranceModel`]) that Bolton et al. identified (writes have the
//! tighter threshold, which is why Fig. 2 shows writes dying over a wider
//! band than reads).

use deepnote_acoustics::Frequency;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Standard gravity, m/s².
pub const G: f64 = 9.80665;

/// A sinusoidal vibration imposed on the drive chassis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VibrationState {
    frequency: Frequency,
    displacement_um: f64,
}

impl VibrationState {
    /// Creates a vibration of `displacement_um` µm amplitude at
    /// `frequency`.
    ///
    /// # Panics
    ///
    /// Panics if the displacement is negative or non-finite.
    pub fn new(frequency: Frequency, displacement_um: f64) -> Self {
        assert!(
            displacement_um.is_finite() && displacement_um >= 0.0,
            "displacement must be finite and non-negative, got {displacement_um}"
        );
        VibrationState {
            frequency,
            displacement_um,
        }
    }

    /// Vibration frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Displacement amplitude in micrometres.
    pub fn displacement_um(&self) -> f64 {
        self.displacement_um
    }

    /// Displacement amplitude in nanometres.
    pub fn displacement_nm(&self) -> f64 {
        self.displacement_um * 1_000.0
    }

    /// Peak acceleration `ω²·A` in units of g — what the drive's shock
    /// sensor responds to.
    pub fn acceleration_g(&self) -> f64 {
        let omega = self.frequency.angular();
        omega * omega * self.displacement_um * 1e-6 / G
    }

    /// Combines several simultaneous tones into one effective vibration:
    /// RMS-summed displacement (independent sinusoids add in power)
    /// reported at the frequency of the strongest component. An
    /// approximation — the duty-cycle model then treats the combination
    /// as a single tone — adequate for comparing tone vs. spread-spectrum
    /// attacks.
    ///
    /// Returns `None` for an empty set.
    pub fn combined(tones: &[VibrationState]) -> Option<VibrationState> {
        let dominant = tones
            .iter()
            .max_by(|a, b| a.displacement_um.total_cmp(&b.displacement_um))?;
        let rms_sum = tones
            .iter()
            .map(|t| t.displacement_um * t.displacement_um)
            .sum::<f64>()
            .sqrt();
        Some(VibrationState::new(dominant.frequency, rms_sum))
    }
}

/// A shared, cheaply cloneable handle through which the attack updates the
/// vibration seen by a drive.
///
/// # Example
///
/// ```
/// use deepnote_hdd::{VibrationInput, VibrationState};
/// use deepnote_acoustics::Frequency;
///
/// let input = VibrationInput::quiescent();
/// let observer = input.clone();
/// input.set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.1)));
/// assert!(observer.current().is_some());
/// input.clear();
/// assert!(observer.current().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct VibrationInput {
    state: Arc<RwLock<Option<VibrationState>>>,
}

impl VibrationInput {
    /// A handle with no vibration applied.
    pub fn quiescent() -> Self {
        VibrationInput::default()
    }

    /// Sets (or clears, with `None`) the current vibration.
    pub fn set(&self, state: Option<VibrationState>) {
        *self.state.write() = state;
    }

    /// Clears any vibration.
    pub fn clear(&self) {
        self.set(None);
    }

    /// The vibration currently applied, if any.
    pub fn current(&self) -> Option<VibrationState> {
        *self.state.read()
    }

    /// Returns `true` if `other` shares the same underlying state.
    pub fn same_input(&self, other: &VibrationInput) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }
}

/// Read/write off-track tolerance thresholds, as fractions of the track
/// pitch.
///
/// Reads tolerate more off-track displacement than writes: a misplaced
/// read just re-reads, while a misplaced write would destroy the adjacent
/// track, so drives abort writes much earlier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceModel {
    read_fraction: f64,
    write_fraction: f64,
}

impl ToleranceModel {
    /// Creates a tolerance model from track-pitch fractions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < write_fraction <= read_fraction <= 1`.
    // deepnote-lint: allow(raw-f64-params): dimensionless track-pitch fractions; the write<=read assert makes swapped (distinct) arguments fail fast at construction
    pub fn new(read_fraction: f64, write_fraction: f64) -> Self {
        assert!(
            write_fraction > 0.0 && write_fraction <= read_fraction && read_fraction <= 1.0,
            "need 0 < write ({write_fraction}) <= read ({read_fraction}) <= 1"
        );
        ToleranceModel {
            read_fraction,
            write_fraction,
        }
    }

    /// Industry-typical thresholds: reads fault beyond ~15% of track
    /// pitch, writes beyond ~10%.
    pub fn typical() -> Self {
        ToleranceModel::new(0.15, 0.10)
    }

    /// Read tolerance as a fraction of track pitch.
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }

    /// Write tolerance as a fraction of track pitch.
    pub fn write_fraction(&self) -> f64 {
        self.write_fraction
    }

    /// Absolute tolerance in nm for the given track pitch.
    pub fn tolerance_nm(&self, track_pitch_nm: f64, read: bool) -> f64 {
        assert!(track_pitch_nm > 0.0, "track pitch must be positive");
        track_pitch_nm
            * if read {
                self.read_fraction
            } else {
                self.write_fraction
            }
    }

    /// The fraction of each vibration cycle during which a sinusoidal
    /// off-track displacement of amplitude `offtrack_nm` stays inside the
    /// tolerance: 1 if the amplitude is within tolerance, otherwise
    /// `(2/π)·asin(tol/A)`.
    // deepnote-lint: allow(raw-f64-params): both lengths are nanometres by crate-wide convention; a shared Nm newtype would not stop a transposition, and the _nm suffixes name the roles at every call site
    pub fn on_track_duty(&self, track_pitch_nm: f64, offtrack_nm: f64, read: bool) -> f64 {
        assert!(
            offtrack_nm.is_finite() && offtrack_nm >= 0.0,
            "off-track amplitude must be finite and non-negative"
        );
        let tol = self.tolerance_nm(track_pitch_nm, read);
        if offtrack_nm <= tol {
            1.0
        } else {
            (2.0 / std::f64::consts::PI) * (tol / offtrack_nm).asin()
        }
    }
}

impl Default for ToleranceModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn acceleration_of_known_vibration() {
        // 1 µm at 5 kHz: ω = 31416 rad/s, a = ω²·1e-6 ≈ 987 m/s² ≈ 100 g.
        let v = VibrationState::new(Frequency::from_khz(5.0), 1.0);
        assert!(
            (v.acceleration_g() - 100.6).abs() < 1.0,
            "{}",
            v.acceleration_g()
        );
    }

    #[test]
    fn input_shares_state_between_clones() {
        let a = VibrationInput::quiescent();
        let b = a.clone();
        assert!(a.same_input(&b));
        a.set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.2)));
        assert_eq!(b.current().unwrap().displacement_um(), 0.2);
        b.clear();
        assert!(a.current().is_none());
        assert!(!a.same_input(&VibrationInput::quiescent()));
    }

    #[test]
    fn combined_tones_rms_sum_at_dominant_frequency() {
        let tones = [
            VibrationState::new(Frequency::from_hz(400.0), 0.3),
            VibrationState::new(Frequency::from_hz(650.0), 0.4),
        ];
        let c = VibrationState::combined(&tones).unwrap();
        assert_eq!(c.frequency().hz(), 650.0);
        assert!((c.displacement_um() - 0.5).abs() < 1e-12); // 3-4-5
        assert!(VibrationState::combined(&[]).is_none());
        // A single tone combines to itself.
        let single = VibrationState::combined(&tones[..1]).unwrap();
        assert_eq!(single, tones[0]);
    }

    #[test]
    fn tolerances_read_wider_than_write() {
        let t = ToleranceModel::typical();
        assert!(t.tolerance_nm(100.0, true) > t.tolerance_nm(100.0, false));
        assert_eq!(t.tolerance_nm(100.0, true), 15.0);
        assert_eq!(t.tolerance_nm(100.0, false), 10.0);
    }

    #[test]
    fn duty_is_one_within_tolerance() {
        let t = ToleranceModel::typical();
        assert_eq!(t.on_track_duty(100.0, 9.9, false), 1.0);
        assert_eq!(t.on_track_duty(100.0, 0.0, true), 1.0);
    }

    #[test]
    fn duty_known_value() {
        // A = 2·tol: duty = (2/π)·asin(0.5) = 1/3.
        let t = ToleranceModel::typical();
        let duty = t.on_track_duty(100.0, 20.0, false);
        assert!((duty - 1.0 / 3.0).abs() < 1e-12, "duty = {duty}");
    }

    #[test]
    #[should_panic(expected = "write")]
    fn tolerance_ordering_enforced() {
        ToleranceModel::new(0.05, 0.10);
    }

    proptest! {
        /// Duty decreases as amplitude grows; reads always have at least
        /// the write duty.
        #[test]
        fn duty_monotone_and_read_geq_write(a in 0.0f64..500.0, da in 0.1f64..100.0) {
            let t = ToleranceModel::typical();
            let d1 = t.on_track_duty(100.0, a, false);
            let d2 = t.on_track_duty(100.0, a + da, false);
            prop_assert!(d2 <= d1);
            prop_assert!(t.on_track_duty(100.0, a, true) >= d1);
        }

        /// Duty is a valid probability.
        #[test]
        fn duty_in_unit_interval(a in 0.0f64..10_000.0) {
            let t = ToleranceModel::typical();
            let d = t.on_track_duty(100.0, a, true);
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }
}
