//! A mechanical hard disk drive model for the Deep Note reproduction.
//!
//! The model implements the attack mechanism established by Bolton et al.
//! (Blue Note, S&P '18) and relied on by the paper: externally induced
//! vibration displaces the read/write head relative to the track centre;
//! when the displacement exceeds the (asymmetric) read/write off-track
//! tolerances, operations fail and are retried, collapsing throughput and
//! eventually timing out entirely.
//!
//! * [`DriveGeometry`] — platters, tracks, zones, spindle speed, track
//!   pitch; preset for the paper's Seagate Barracuda 500 GB ([`geometry`]).
//! * [`TimingModel`] — per-operation service times (command overhead,
//!   seek, rotation, media transfer), calibrated to the paper's no-attack
//!   FIO numbers ([`timing`]).
//! * [`ServoModel`] — track-following servo rejection vs. frequency plus
//!   the shock-sensor head-parking mechanism ([`servo`]).
//! * [`VibrationState`] / [`VibrationInput`] — the externally imposed
//!   chassis vibration, shared with whatever drives the attack
//!   ([`vibration`]).
//! * [`HardDiskDrive`] — the op-level engine: submit reads/writes, get
//!   durations or errors on virtual time ([`drive`]).
//! * [`throughput`] — closed-form steady-state throughput/latency under a
//!   given vibration, used by the fast experiment sweeps.
//!
//! # Example
//!
//! ```
//! use deepnote_hdd::prelude::*;
//! use deepnote_sim::Clock;
//!
//! let clock = Clock::new();
//! let mut drive = HardDiskDrive::barracuda_500gb(clock.clone());
//! let report = drive.execute(DiskOp::read(0, 8)).unwrap();
//! assert!(report.duration.as_micros() > 0);
//! ```

pub mod drive;
pub mod geometry;
pub mod servo;
pub mod throughput;
pub mod timing;
pub mod vibration;

pub use drive::{DiskOp, DiskOpKind, DriveError, HardDiskDrive, OpReport};
pub use geometry::DriveGeometry;
pub use servo::ServoModel;
pub use throughput::{steady_state, SteadyState};
pub use timing::{TimingModel, TimingParams};
pub use vibration::{ToleranceModel, VibrationInput, VibrationState};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::drive::{DiskOp, DiskOpKind, DriveError, HardDiskDrive, OpReport};
    pub use crate::geometry::DriveGeometry;
    pub use crate::servo::ServoModel;
    pub use crate::throughput::{steady_state, SteadyState};
    pub use crate::timing::{TimingModel, TimingParams};
    pub use crate::vibration::{ToleranceModel, VibrationInput, VibrationState};
}
