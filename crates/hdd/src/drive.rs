//! The op-level drive engine.
//!
//! [`HardDiskDrive`] services [`DiskOp`]s on virtual time. Each operation:
//!
//! 1. pays seek + rotational latency if it moved the actuator,
//! 2. pays the fixed command overhead,
//! 3. attempts the media transfer; under vibration each attempt succeeds
//!    with the on-track probability derived from the duty-cycle model,
//!    failed attempts pay the retry delay,
//! 4. gives up after `max_retries`, reporting [`DriveError::Unresponsive`].
//!
//! Two additional failure escalations reproduce the paper's observed
//! "no response" regime:
//!
//! * **Recovery escalation** — when the on-track duty falls below an
//!   empirical floor ([`RECOVERY_ESCALATION_DUTY`]) the drive's error
//!   recovery spirals (the servo's own position bursts are corrupted) and
//!   ops of both kinds are treated as guaranteed failures.
//! * **Shock parking** — accelerations above the shock-sensor threshold
//!   park the heads for the servo model's park duration.

use crate::geometry::DriveGeometry;
use crate::servo::ServoModel;
use crate::timing::TimingModel;
use crate::vibration::{ToleranceModel, VibrationInput, VibrationState};
use deepnote_sim::{Clock, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Below this on-track duty (evaluated at the *read* tolerance, because
/// the servo's position bursts are themselves read like data) the drive's
/// error recovery escalates into recalibration storms and no operation of
/// either kind completes. Calibrated to Table 1's 1–5 cm blackout.
pub const RECOVERY_ESCALATION_DUTY: f64 = 0.55;

/// Kind of a disk operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskOpKind {
    /// Read sectors.
    Read,
    /// Write sectors.
    Write,
}

impl DiskOpKind {
    /// `true` for reads.
    pub fn is_read(self) -> bool {
        matches!(self, DiskOpKind::Read)
    }
}

impl fmt::Display for DiskOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskOpKind::Read => write!(f, "read"),
            DiskOpKind::Write => write!(f, "write"),
        }
    }
}

/// A disk operation: kind, starting LBA, sector count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DiskOp {
    /// Read or write.
    pub kind: DiskOpKind,
    /// Starting logical block address (sector index).
    pub lba: u64,
    /// Number of sectors.
    pub sectors: u64,
}

impl DiskOp {
    /// A read of `sectors` sectors starting at `lba`.
    pub fn read(lba: u64, sectors: u64) -> Self {
        DiskOp {
            kind: DiskOpKind::Read,
            lba,
            sectors,
        }
    }

    /// A write of `sectors` sectors starting at `lba`.
    pub fn write(lba: u64, sectors: u64) -> Self {
        DiskOp {
            kind: DiskOpKind::Write,
            lba,
            sectors,
        }
    }
}

/// Why a disk operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriveError {
    /// The op exhausted all retries (or recovery escalated); the host sees
    /// no completion within the drive's internal deadline.
    Unresponsive {
        /// Virtual time burned before giving up.
        after_ms_x1000: u64,
    },
    /// The heads are parked after a shock event.
    HeadsParked,
    /// The LBA range does not exist on this drive.
    OutOfRange,
    /// Zero-length operation.
    EmptyOp,
}

impl fmt::Display for DriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Unresponsive { after_ms_x1000 } => {
                write!(
                    f,
                    "drive unresponsive (gave up after {:.3} ms)",
                    *after_ms_x1000 as f64 / 1_000.0
                )
            }
            DriveError::HeadsParked => write!(f, "heads parked by shock sensor"),
            DriveError::OutOfRange => write!(f, "LBA range beyond end of device"),
            DriveError::EmptyOp => write!(f, "zero-length operation"),
        }
    }
}

impl std::error::Error for DriveError {}

/// A successful operation's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpReport {
    /// Total service time.
    pub duration: SimDuration,
    /// Number of failed attempts before success.
    pub retries: u32,
}

/// The mechanical drive: geometry + timing + servo + tolerances, driven by
/// a shared clock and an externally imposed vibration.
///
/// # Example
///
/// ```
/// use deepnote_hdd::prelude::*;
/// use deepnote_sim::Clock;
/// use deepnote_acoustics::Frequency;
///
/// let clock = Clock::new();
/// let mut drive = HardDiskDrive::barracuda_500gb(clock.clone());
///
/// // Healthy drive: ops complete.
/// assert!(drive.execute(DiskOp::write(0, 8)).is_ok());
///
/// // Massive in-band vibration: the drive stops responding.
/// drive.vibration().set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.5)));
/// assert!(drive.execute(DiskOp::write(0, 8)).is_err());
/// ```
#[derive(Debug)]
pub struct HardDiskDrive {
    geometry: DriveGeometry,
    timing: TimingModel,
    servo: ServoModel,
    tolerance: ToleranceModel,
    clock: Clock,
    vibration: VibrationInput,
    rng: SimRng,
    current_cylinder: u64,
    last_lba_end: Option<u64>,
    parked_until: Option<SimTime>,
    ops_completed: u64,
    ops_failed: u64,
    retries_total: u64,
}

impl HardDiskDrive {
    /// Builds a drive from parts.
    pub fn new(
        geometry: DriveGeometry,
        timing: TimingModel,
        servo: ServoModel,
        tolerance: ToleranceModel,
        clock: Clock,
        rng: SimRng,
    ) -> Self {
        HardDiskDrive {
            geometry,
            timing,
            servo,
            tolerance,
            clock,
            vibration: VibrationInput::quiescent(),
            rng,
            current_cylinder: 0,
            last_lba_end: None,
            parked_until: None,
            ops_completed: 0,
            ops_failed: 0,
            retries_total: 0,
        }
    }

    /// The paper's victim drive with typical servo and tolerances.
    pub fn barracuda_500gb(clock: Clock) -> Self {
        HardDiskDrive::new(
            DriveGeometry::barracuda_500gb(),
            TimingModel::barracuda_500gb(),
            ServoModel::typical(),
            ToleranceModel::typical(),
            clock,
            SimRng::new(),
        )
    }

    /// A nearline enterprise drive with RV-compensating servo — the §5
    /// "HDD types" comparison point. Data-center JBOD drives are built to
    /// tolerate the rotational vibration of 90 neighbours, which also
    /// blunts acoustic attacks.
    pub fn nearline_4tb(clock: Clock) -> Self {
        HardDiskDrive::new(
            DriveGeometry::nearline_4tb(),
            TimingModel::nearline_4tb(),
            ServoModel::enterprise_rv(),
            ToleranceModel::typical(),
            clock,
            SimRng::new(),
        )
    }

    /// Drive geometry.
    pub fn geometry(&self) -> &DriveGeometry {
        &self.geometry
    }

    /// Timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Servo model.
    pub fn servo(&self) -> &ServoModel {
        &self.servo
    }

    /// Replaces the servo (e.g. the augmented-controller defense).
    pub fn set_servo(&mut self, servo: ServoModel) {
        self.servo = servo;
    }

    /// Tolerance model.
    pub fn tolerance(&self) -> &ToleranceModel {
        &self.tolerance
    }

    /// The clock this drive advances while servicing ops.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The vibration input; clone it to drive the attack from outside.
    pub fn vibration(&self) -> &VibrationInput {
        &self.vibration
    }

    /// Operations completed successfully since construction.
    pub fn ops_completed(&self) -> u64 {
        self.ops_completed
    }

    /// Operations that failed since construction.
    pub fn ops_failed(&self) -> u64 {
        self.ops_failed
    }

    /// Retry attempts burned across all operations since construction —
    /// the leading indicator of acoustic degradation (retries climb well
    /// before ops start failing outright).
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Per-attempt success probability for the current vibration, or
    /// `None` when recovery has escalated / heads parked (guaranteed
    /// failure). `Some(1.0)` when quiescent.
    pub fn attempt_success_probability(&self, kind: DiskOpKind) -> Option<f64> {
        let Some(v) = self.vibration.current() else {
            return Some(1.0);
        };
        attempt_probability(
            &self.geometry,
            &self.timing,
            &self.servo,
            &self.tolerance,
            &v,
            kind,
        )
    }

    /// Executes one operation, advancing the shared clock by its service
    /// time (including the time burned by failed attempts).
    ///
    /// # Errors
    ///
    /// * [`DriveError::OutOfRange`] / [`DriveError::EmptyOp`] for bad
    ///   requests (no time is consumed).
    /// * [`DriveError::HeadsParked`] while the shock sensor holds the
    ///   heads off the platter (consumes the remaining park time).
    /// * [`DriveError::Unresponsive`] when all retries are exhausted
    ///   (consumes the full timeout horizon).
    pub fn execute(&mut self, op: DiskOp) -> Result<OpReport, DriveError> {
        if op.sectors == 0 {
            return Err(DriveError::EmptyOp);
        }
        if op
            .lba
            .checked_add(op.sectors)
            .is_none_or(|end| end > self.geometry.total_sectors())
        {
            return Err(DriveError::OutOfRange);
        }

        // Shock parking: sustained over-threshold acceleration keeps the
        // heads unloaded.
        if let Some(v) = self.vibration.current() {
            if self.servo.triggers_shock_park(&v) {
                let until =
                    self.clock.now() + SimDuration::from_secs_f64(self.servo.park_duration_s());
                self.parked_until = Some(until);
            }
        }
        if let Some(until) = self.parked_until {
            if self.clock.now() < until {
                self.clock.advance_to(until);
                self.ops_failed += 1;
                return Err(DriveError::HeadsParked);
            }
            self.parked_until = None;
        }

        let read = op.kind.is_read();
        let start = self.clock.now();

        // Mechanical positioning. Contiguous sequential access uses the
        // drive's zero-latency track/head switching: no seek or rotation
        // charge even across a cylinder boundary. Writes acknowledged from
        // the drive's write cache don't charge the host for positioning
        // either (the media write still happens and can still fail).
        let sequential = self.last_lba_end == Some(op.lba) || (!read && self.timing.write_cache());
        let target_cyl = self.geometry.cylinder_of(op.lba);
        if !sequential {
            let seek_s = self
                .timing
                .seek_s(&self.geometry, self.current_cylinder, target_cyl);
            if seek_s > 0.0 {
                self.clock.advance(SimDuration::from_secs_f64(
                    seek_s + self.timing.rotational_latency_s(&self.geometry),
                ));
            }
        }
        self.current_cylinder = target_cyl;
        self.last_lba_end = Some(op.lba + op.sectors);

        // Command overhead.
        self.clock
            .advance(SimDuration::from_secs_f64(self.timing.overhead_s(read)));

        // Media transfer attempts.
        let transfer =
            SimDuration::from_secs_f64(self.timing.transfer_s(&self.geometry, op.sectors));
        let p = self.attempt_success_probability(op.kind);
        let retry_delay = SimDuration::from_secs_f64(self.timing.retry_delay_s(read));
        let mut retries = 0u32;
        loop {
            let success = match p {
                None => false,
                Some(p) => self.rng.chance(p),
            };
            if success {
                self.clock.advance(transfer);
                self.ops_completed += 1;
                return Ok(OpReport {
                    duration: self.clock.now() - start,
                    retries,
                });
            }
            retries += 1;
            self.retries_total += 1;
            self.clock.advance(retry_delay);
            if retries >= self.timing.max_retries() {
                self.ops_failed += 1;
                let burned = self.clock.now() - start;
                return Err(DriveError::Unresponsive {
                    after_ms_x1000: (burned.as_secs_f64() * 1e6) as u64,
                });
            }
        }
    }
}

/// Per-attempt on-track success probability under vibration `v`, shared by
/// the op engine and the closed-form throughput model.
///
/// Returns `None` when the drive cannot make progress at all: the heads
/// would park, or the on-track duty is below the recovery-escalation floor
/// for this op kind.
pub fn attempt_probability(
    geometry: &DriveGeometry,
    timing: &TimingModel,
    servo: &ServoModel,
    tolerance: &ToleranceModel,
    v: &VibrationState,
    kind: DiskOpKind,
) -> Option<f64> {
    if servo.triggers_shock_park(v) {
        return None;
    }
    let read = kind.is_read();
    let offtrack_nm = servo.residual_offtrack_nm(v);
    // Recovery escalation is keyed on the servo's ability to read its own
    // position bursts (the read tolerance), and blocks both op kinds.
    let servo_duty = tolerance.on_track_duty(geometry.track_pitch_nm(), offtrack_nm, true);
    if servo_duty < RECOVERY_ESCALATION_DUTY {
        return None;
    }
    let duty = tolerance.on_track_duty(geometry.track_pitch_nm(), offtrack_nm, read);
    if duty >= 1.0 {
        // Head never leaves tolerance: no failures regardless of window.
        return Some(1.0);
    }
    // The transfer must fit inside an on-track window: subtract the
    // fraction of a vibration cycle the 4 KiB-class transfer occupies.
    let window_cycles = timing.transfer_s(geometry, 8) * v.frequency().hz();
    Some((duty - window_cycles).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::Frequency;

    fn drive() -> HardDiskDrive {
        HardDiskDrive::barracuda_500gb(Clock::new())
    }

    #[test]
    fn healthy_sequential_ops_hit_calibrated_rate() {
        let mut d = drive();
        let clock = d.clock().clone();
        let t0 = clock.now();
        let mut lba = 0;
        for _ in 0..1000 {
            d.execute(DiskOp::write(lba, 8)).unwrap();
            lba += 8;
        }
        let elapsed = (clock.now() - t0).as_secs_f64();
        let mb_s = 1000.0 * 4096.0 / elapsed / 1e6;
        assert!((mb_s - 22.7).abs() < 0.3, "write = {mb_s} MB/s");
    }

    #[test]
    fn first_op_from_rest_is_sequential() {
        // Drive starts at cylinder 0; LBA 0 ops pay no seek.
        let mut d = drive();
        let rep = d.execute(DiskOp::read(0, 8)).unwrap();
        assert!(rep.duration.as_millis_f64() < 0.3, "{}", rep.duration);
        assert_eq!(rep.retries, 0);
    }

    #[test]
    fn random_ops_pay_seek_and_rotation() {
        let mut d = drive();
        d.execute(DiskOp::read(0, 8)).unwrap();
        let far = d.geometry().total_sectors() - 8;
        let rep = d.execute(DiskOp::read(far, 8)).unwrap();
        // Full stroke (17 ms) + rotational latency (4.2 ms) + overhead.
        assert!(rep.duration.as_millis_f64() > 15.0, "{}", rep.duration);
    }

    #[test]
    fn mild_vibration_slows_but_completes() {
        let mut d = drive();
        // Off-track just above the write threshold → duty ~0.6-0.9.
        // residual = A_nm × rejection(650 Hz); rejection ≈ 0.158.
        // Want residual ≈ 12 nm → A ≈ 76 nm = 0.076 µm.
        d.vibration()
            .set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.076)));
        let mut total_retries = 0;
        for i in 0..200 {
            let rep = d.execute(DiskOp::write(i * 8, 8)).unwrap();
            total_retries += rep.retries;
        }
        assert!(total_retries > 20, "retries = {total_retries}");
    }

    #[test]
    fn severe_vibration_is_unresponsive() {
        let mut d = drive();
        d.vibration()
            .set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.6)));
        let err = d.execute(DiskOp::write(0, 8)).unwrap_err();
        match err {
            DriveError::Unresponsive { after_ms_x1000 } => {
                // 24 retries × 1.9 ms ≈ 45 ms burned.
                assert!(after_ms_x1000 > 40_000, "burned = {after_ms_x1000}");
            }
            other => panic!("expected Unresponsive, got {other:?}"),
        }
        assert_eq!(d.ops_failed(), 1);
    }

    #[test]
    fn reads_survive_vibration_that_kills_writes() {
        // Pick a residual between the write and read escalation points:
        // duty_w < 0.32 needs A_res > 10/sin(0.32·π/2) = 20.8 nm;
        // duty_r > 0.55 needs A_res < 15/sin(0.55·π/2) = 19.7 nm.
        // No single amplitude does both at equal tolerance... but between
        // write-degraded and read-fine there is a wide window: pick
        // residual 16 nm: duty_w ≈ 0.43 (slow, completes), duty_r ≈ 0.78.
        let d = drive();
        let amp_um = 16.0 / d.servo().rejection(Frequency::from_hz(650.0)) / 1000.0;
        d.vibration()
            .set(Some(VibrationState::new(Frequency::from_hz(650.0), amp_um)));
        let p_read = d.attempt_success_probability(DiskOpKind::Read).unwrap();
        let p_write = d.attempt_success_probability(DiskOpKind::Write).unwrap();
        assert!(p_read > p_write + 0.2, "read = {p_read}, write = {p_write}");
    }

    #[test]
    fn ultrasonic_shock_parks_heads() {
        let mut d = drive();
        // 20 kHz at 0.05 µm ≈ 80 g > 40 g threshold.
        d.vibration()
            .set(Some(VibrationState::new(Frequency::from_khz(20.0), 0.05)));
        assert_eq!(
            d.execute(DiskOp::read(0, 8)).unwrap_err(),
            DriveError::HeadsParked
        );
        // Clearing the vibration lets the drive recover after the park
        // window has elapsed (execute advanced the clock through it).
        d.vibration().clear();
        assert!(d.execute(DiskOp::read(0, 8)).is_ok());
    }

    #[test]
    fn bad_requests_cost_nothing() {
        let mut d = drive();
        let clock = d.clock().clone();
        let t0 = clock.now();
        assert_eq!(
            d.execute(DiskOp::read(0, 0)).unwrap_err(),
            DriveError::EmptyOp
        );
        let max = d.geometry().total_sectors();
        assert_eq!(
            d.execute(DiskOp::read(max, 8)).unwrap_err(),
            DriveError::OutOfRange
        );
        assert_eq!(
            d.execute(DiskOp::read(u64::MAX, 8)).unwrap_err(),
            DriveError::OutOfRange
        );
        assert_eq!(clock.now(), t0);
    }

    #[test]
    fn enterprise_drive_survives_what_kills_the_barracuda() {
        // The chassis vibration of the paper's best attack point
        // (~540 nm at 650 Hz) makes the desktop drive unresponsive but
        // the RV-compensated nearline drive keeps serving.
        let v = VibrationState::new(Frequency::from_hz(650.0), 0.54);
        let mut desktop = HardDiskDrive::barracuda_500gb(Clock::new());
        desktop.vibration().set(Some(v));
        assert!(desktop.execute(DiskOp::write(0, 8)).is_err());

        let mut enterprise = HardDiskDrive::nearline_4tb(Clock::new());
        enterprise.vibration().set(Some(v));
        assert!(enterprise.execute(DiskOp::write(0, 8)).is_ok());
    }

    #[test]
    fn attempt_probability_quiescent_is_one() {
        let d = drive();
        assert_eq!(d.attempt_success_probability(DiskOpKind::Read), Some(1.0));
        assert_eq!(d.attempt_success_probability(DiskOpKind::Write), Some(1.0));
    }

    #[test]
    fn recovery_escalation_floors() {
        let d = drive();
        let geo = d.geometry();
        let (timing, servo, tol) = (d.timing(), d.servo(), d.tolerance());
        // Huge vibration: both kinds escalate.
        let big = VibrationState::new(Frequency::from_hz(650.0), 2.0);
        assert_eq!(
            attempt_probability(geo, timing, servo, tol, &big, DiskOpKind::Read),
            None
        );
        assert_eq!(
            attempt_probability(geo, timing, servo, tol, &big, DiskOpKind::Write),
            None
        );
        // Tiny vibration: both fine.
        let small = VibrationState::new(Frequency::from_hz(650.0), 0.001);
        assert_eq!(
            attempt_probability(geo, timing, servo, tol, &small, DiskOpKind::Write),
            Some(1.0)
        );
    }
}
