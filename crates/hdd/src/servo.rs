//! Track-following servo and shock sensing.
//!
//! The head positioning servo rejects disturbances well below its
//! bandwidth (the sensitivity function of a double-integrator loop climbs
//! ~40 dB/decade toward the bandwidth), passes disturbances near and above
//! it, and cannot help at all against components far above — but those are
//! attenuated structurally anyway. This low-frequency rejection combined
//! with the structural band-pass is what produces the paper's 300 Hz–
//! 1.7 kHz vulnerable band.
//!
//! The shock sensor is the second Blue Note mechanism: sustained high
//! acceleration makes the drive park its heads defensively, blocking all
//! I/O regardless of off-track margins.

use crate::vibration::VibrationState;
use deepnote_acoustics::{Frequency, OperatingPoint, TransferPathTable};
use deepnote_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The drive's servo loop and shock-sensing behaviour.
///
/// # Example
///
/// ```
/// use deepnote_hdd::ServoModel;
/// use deepnote_acoustics::Frequency;
///
/// let servo = ServoModel::typical();
/// // Strong rejection well below bandwidth, none above.
/// assert!(servo.rejection(Frequency::from_hz(50.0)) < 0.01);
/// assert!(servo.rejection(Frequency::from_khz(5.0)) > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServoModel {
    bandwidth_hz: f64,
    rolloff_order: i32,
    shock_threshold_g: f64,
    park_duration_s: f64,
    /// Fraction of the residual disturbance cancelled by rotational-
    /// vibration feed-forward (enterprise drives carry RV sensors;
    /// desktop drives have none).
    rv_compensation: f64,
}

impl ServoModel {
    /// Creates a servo model.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth/threshold/park duration are not positive or the
    /// roll-off order is not in `1..=4`.
    pub fn new(
        bandwidth: Frequency,
        rolloff_order: i32,
        shock_threshold_g: f64,
        park_duration: SimDuration,
    ) -> Self {
        assert!(bandwidth.hz() > 0.0, "servo bandwidth must be positive");
        assert!(
            (1..=4).contains(&rolloff_order),
            "roll-off order must be 1..=4"
        );
        assert!(shock_threshold_g > 0.0, "shock threshold must be positive");
        assert!(
            park_duration > SimDuration::ZERO,
            "park duration must be positive"
        );
        ServoModel {
            bandwidth_hz: bandwidth.hz(),
            rolloff_order,
            shock_threshold_g,
            park_duration_s: park_duration.as_secs_f64(),
            rv_compensation: 0.0,
        }
    }

    /// A desktop-drive servo: ~800 Hz loop bandwidth, double-integrator
    /// rejection, 40 g shock-parking threshold, 300 ms park, no RV
    /// sensors (the paper's Barracuda class).
    pub fn typical() -> Self {
        ServoModel::new(
            Frequency::from_hz(800.0),
            2,
            40.0,
            SimDuration::from_millis(300),
        )
    }

    /// An enterprise/nearline servo of the kind actually deployed in
    /// data-center JBODs: higher loop bandwidth plus rotational-vibration
    /// feed-forward sensors that cancel most externally imposed
    /// vibration. The §5 "HDD types" ablation compares this against the
    /// desktop servo.
    pub fn enterprise_rv() -> Self {
        ServoModel::new(
            Frequency::from_hz(1_100.0),
            2,
            60.0,
            SimDuration::from_millis(300),
        )
        .with_rv_compensation(0.85)
    }

    /// Returns a copy with the given RV feed-forward cancellation
    /// fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `[0, 1)`.
    pub fn with_rv_compensation(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "RV compensation must be in [0, 1), got {fraction}"
        );
        self.rv_compensation = fraction;
        self
    }

    /// The RV feed-forward cancellation fraction.
    pub fn rv_compensation(&self) -> f64 {
        self.rv_compensation
    }

    /// Loop bandwidth in Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.bandwidth_hz
    }

    /// Shock-sensor parking threshold in g.
    pub fn shock_threshold_g(&self) -> f64 {
        self.shock_threshold_g
    }

    /// How long the heads stay parked after a shock event.
    pub fn park_duration_s(&self) -> f64 {
        self.park_duration_s
    }

    /// A copy with a higher loop bandwidth (the "augmented feedback
    /// controller" defense of §5 / Blue Note).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn with_bandwidth_scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth factor must be positive");
        self.bandwidth_hz *= factor;
        self
    }

    /// The disturbance sensitivity at frequency `f`: the fraction of an
    /// imposed displacement that survives as head-to-track error.
    ///
    /// `|S(f)| = (f² / (f² + f_bw²))^order`, which tends to 0 at DC and to
    /// 1 far above the loop bandwidth.
    pub fn rejection(&self, f: Frequency) -> f64 {
        let f2 = f.hz() * f.hz();
        let fb2 = self.bandwidth_hz * self.bandwidth_hz;
        (f2 / (f2 + fb2)).powi(self.rolloff_order)
    }

    /// The residual off-track amplitude (nm) after the servo loop and any
    /// RV feed-forward fight the imposed chassis vibration.
    pub fn residual_offtrack_nm(&self, vibration: &VibrationState) -> f64 {
        vibration.displacement_nm()
            * self.rejection(vibration.frequency())
            * (1.0 - self.rv_compensation)
    }

    /// Whether this vibration trips the shock sensor and parks the heads.
    pub fn triggers_shock_park(&self, vibration: &VibrationState) -> bool {
        vibration.acceleration_g() > self.shock_threshold_g
    }

    /// Precomputes [`Self::residual_offtrack_nm`] for a set of
    /// steady-state tones, keyed by their operating points. Campaign
    /// setups build this once so metrics probes and trace annotations
    /// cost a binary-search lookup instead of re-walking the servo
    /// response per event.
    pub fn residual_table(
        &self,
        tones: impl IntoIterator<Item = (OperatingPoint, VibrationState)>,
    ) -> TransferPathTable<f64> {
        TransferPathTable::build(
            tones
                .into_iter()
                .map(|(point, v)| (point, self.residual_offtrack_nm(&v))),
        )
    }

    /// The residual off-track amplitude (nm) for a tone, answered from
    /// `table` when the operating point was precomputed and recomputed
    /// from `vibration` otherwise. The table stores exactly what
    /// [`Self::residual_offtrack_nm`] returns, so hit and miss are
    /// bit-identical.
    pub fn residual_offtrack_cached(
        &self,
        table: &TransferPathTable<f64>,
        point: &OperatingPoint,
        vibration: &VibrationState,
    ) -> f64 {
        match table.get(point) {
            Some(&nm) => nm,
            None => self.residual_offtrack_nm(vibration),
        }
    }
}

impl Default for ServoModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejection_at_bandwidth_is_quarter_for_order_2() {
        // f = f_bw: (1/2)^2 = 0.25.
        let servo = ServoModel::typical();
        let r = servo.rejection(Frequency::from_hz(800.0));
        assert!((r - 0.25).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn strong_low_frequency_rejection() {
        let servo = ServoModel::typical();
        let r100 = servo.rejection(Frequency::from_hz(100.0));
        // (100²/(100²+800²))² = (0.01538)² ≈ 2.4e-4.
        assert!(r100 < 3e-4, "r100 = {r100}");
    }

    #[test]
    fn residual_offtrack_scales_displacement() {
        let servo = ServoModel::typical();
        let v = VibrationState::new(Frequency::from_hz(650.0), 0.5); // 500 nm
        let expected = 500.0 * servo.rejection(Frequency::from_hz(650.0));
        assert!((servo.residual_offtrack_nm(&v) - expected).abs() < 1e-9);
    }

    #[test]
    fn shock_park_requires_high_acceleration() {
        let servo = ServoModel::typical();
        // 650 Hz at 0.5 µm: a = (2π·650)²·0.5e-6 / 9.81 ≈ 0.85 g — no park.
        let gentle = VibrationState::new(Frequency::from_hz(650.0), 0.5);
        assert!(!servo.triggers_shock_park(&gentle));
        // 20 kHz at 0.05 µm: a ≈ 80 g — parks (the ultrasonic mechanism).
        let ultrasonic = VibrationState::new(Frequency::from_khz(20.0), 0.05);
        assert!(servo.triggers_shock_park(&ultrasonic));
    }

    #[test]
    fn enterprise_rv_servo_shrinks_residual() {
        let desktop = ServoModel::typical();
        let enterprise = ServoModel::enterprise_rv();
        let v = VibrationState::new(Frequency::from_hz(650.0), 0.5);
        let d = desktop.residual_offtrack_nm(&v);
        let e = enterprise.residual_offtrack_nm(&v);
        // RV feed-forward (85 %) plus higher bandwidth: at least ~8x less.
        assert!(e < d / 8.0, "desktop {d} nm vs enterprise {e} nm");
        assert!((enterprise.rv_compensation() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn residual_table_hits_are_bit_identical_and_misses_fall_back() {
        use deepnote_acoustics::{Distance, WaterConditions};
        let servo = ServoModel::typical();
        let water = WaterConditions::tank_freshwater();
        let point = |hz: f64| {
            OperatingPoint::new(Frequency::from_hz(hz), Distance::from_cm(5.0), &water, 1)
        };
        let tone = |hz: f64| VibrationState::new(Frequency::from_hz(hz), 0.3);
        let table =
            servo.residual_table([(point(650.0), tone(650.0)), (point(900.0), tone(900.0))]);
        assert_eq!(table.len(), 2);
        // Hit: exactly the precomputed bits.
        let hit = servo.residual_offtrack_cached(&table, &point(650.0), &tone(650.0));
        assert_eq!(
            hit.to_bits(),
            servo.residual_offtrack_nm(&tone(650.0)).to_bits()
        );
        // Miss: recomputed from the vibration, same bits as the direct path.
        let miss = servo.residual_offtrack_cached(&table, &point(777.0), &tone(777.0));
        assert_eq!(
            miss.to_bits(),
            servo.residual_offtrack_nm(&tone(777.0)).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "RV compensation")]
    fn full_rv_cancellation_is_invalid() {
        ServoModel::typical().with_rv_compensation(1.0);
    }

    #[test]
    fn augmented_controller_rejects_more() {
        let base = ServoModel::typical();
        let upgraded = base.with_bandwidth_scaled(2.0);
        let f = Frequency::from_hz(650.0);
        assert!(upgraded.rejection(f) < base.rejection(f));
    }

    proptest! {
        /// Rejection is within [0, 1] and monotone increasing in frequency.
        #[test]
        fn rejection_valid_and_monotone(hz in 1.0f64..20_000.0, scale in 1.01f64..4.0) {
            let servo = ServoModel::typical();
            let lo = servo.rejection(Frequency::from_hz(hz));
            let hi = servo.rejection(Frequency::from_hz(hz * scale));
            prop_assert!((0.0..=1.0).contains(&lo));
            prop_assert!(hi >= lo);
        }
    }
}
