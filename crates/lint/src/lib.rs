//! `deepnote-lint` — workspace-specific static analysis for the Deep
//! Note reproduction.
//!
//! The repo's headline invariant is *deterministic per seed*: every
//! experiment, campaign, and benchmark must replay bit-identically from
//! its seed, and its physics APIs must not permit unit mixups (Hz vs
//! kHz, dB re 1 µPa vs dB SPL — the confusion Deep Note §3 warns
//! about). General-purpose linters cannot see those rules, so this
//! crate enforces them:
//!
//! | rule id              | what it polices                                   |
//! |----------------------|---------------------------------------------------|
//! | `nondet-collection`  | `HashMap`/`HashSet` in simulation crates          |
//! | `nondet-clock`       | `Instant::now`/`SystemTime::now`                  |
//! | `nondet-rng`         | `thread_rng`/`from_entropy`/argless RNG defaults  |
//! | `panic-unwrap`       | `unwrap`/`expect`/`panic!`/`todo!` in serving-path library code |
//! | `raw-f64-params`     | ≥2 adjacent raw `f64` params on pub physics fns   |
//! | `float-eq`           | exact `==`/`!=` against floats                    |
//!
//! Suppress a finding inline with
//! `// deepnote-lint: allow(<rule>): <justification>` on the same line
//! or the line above. Unused directives are reported as warnings so
//! suppressions cannot go stale.
//!
//! Run as `cargo run -p deepnote-lint -- check [--json]`.

pub mod json;
pub mod lexer;
pub mod rules;
pub mod source;

use rules::Rule;
use source::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// How bad a finding is. Only `Error` findings fail the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; does not affect the exit code.
    Warning,
    /// Violation of a workspace invariant; fails CI.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`panic-unwrap`, …).
    pub rule: String,
    /// Severity (errors fail the run).
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Builds a finding for `rule` in `file` at `line`.
    pub fn new(rule: &dyn Rule, file: &SourceFile, line: u32, message: String) -> Finding {
        Finding {
            rule: rule.id().to_string(),
            severity: rule.severity(),
            path: file.rel_path.clone(),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity, self.path, self.line, self.rule, self.message
        )
    }
}

/// Result of analysing a workspace.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }
}

/// Analyses one already-parsed file with the given rules, applying
/// suppressions and reporting stale ones.
pub fn check_file(file: &SourceFile, rules: &[Box<dyn Rule>]) -> Vec<Finding> {
    let mut raw = Vec::new();
    for rule in rules {
        if rule.applies(file) {
            rule.check(file, &mut raw);
        }
    }
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !file.suppressed(&f.rule, f.line))
        .collect();
    // Stale suppressions: a directive that matched nothing is either a
    // fixed violation (delete it) or a typo'd rule id (fix it).
    for s in &file.suppressions {
        if !s.used.get() {
            findings.push(Finding {
                rule: "unused-suppression".to_string(),
                severity: Severity::Warning,
                path: file.rel_path.clone(),
                line: s.line,
                message: format!(
                    "suppression `allow({})` matched no finding; remove or fix it",
                    s.rules.join(", ")
                ),
            });
        }
    }
    findings
}

/// Analyses every `.rs` file under `root` (the workspace directory)
/// with the full rule set.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let rules = rules::all_rules();
    let mut files = Vec::new();
    for dir in ["crates", "xtests", "tests", "examples"] {
        let p = root.join(dir);
        if p.is_dir() {
            collect_rs_files(&p, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // The linter does not police itself: its fixtures are seeded
        // violations and its own code is not simulation code.
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        let file = SourceFile::parse(&rel, &src);
        findings.extend(check_file(&file, &rules));
        scanned += 1;
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.as_str()).cmp(&(b.path.as_str(), b.line, b.rule.as_str()))
    });
    Ok(Report {
        findings,
        files_scanned: scanned,
    })
}

/// Recursively collects `.rs` files, skipping `target/` and hidden
/// directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, src);
        check_file(&file, &rules::all_rules())
    }

    #[test]
    fn clean_file_has_no_findings() {
        let src = "use std::collections::BTreeMap;\npub fn f(x: u32) -> u32 { x + 1 }\n";
        assert!(run_on("crates/fs/src/a.rs", src).is_empty());
    }

    #[test]
    fn findings_are_suppressible_and_stale_directives_warn() {
        let src = "// deepnote-lint: allow(nondet-collection): ordering handled by sort below\n\
                   use std::collections::HashMap;\n\
                   // deepnote-lint: allow(float-eq): nothing here\n\
                   pub fn f() {}\n";
        let fs = run_on("crates/fs/src/a.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "unused-suppression");
        assert_eq!(fs[0].severity, Severity::Warning);
    }

    #[test]
    fn rules_scope_by_crate() {
        // HashMap in the lexer of a hypothetical tools crate: fine.
        let src = "use std::collections::HashMap;";
        assert!(run_on("crates/bench/src/a.rs", src).is_empty());
        assert_eq!(run_on("crates/sim/src/a.rs", src).len(), 1);
    }

    #[test]
    fn chaos_layer_modules_are_policed() {
        // The fault-injection and integrity modules live inside crates
        // already under the determinism and panic-free regimes; prove
        // the scoping actually reaches them so a refactor cannot
        // silently move them out of coverage.
        let nondet = "use std::collections::HashMap;";
        let panicky = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        for path in [
            "crates/blockdev/src/chaos.rs",
            "crates/cluster/src/chaos.rs",
            "crates/cluster/src/integrity.rs",
            "crates/cluster/src/client.rs",
        ] {
            assert_eq!(run_on(path, nondet).len(), 1, "{path} nondet uncovered");
            assert_eq!(run_on(path, panicky).len(), 1, "{path} panic uncovered");
        }
    }

    #[test]
    fn telemetry_crate_is_policed() {
        // The tracing/metrics layer observes the deterministic
        // simulation from inside it, so it lives under both the
        // determinism and panic-free regimes; prove the scoping reaches
        // every module so a trace can never inject wall-clock time or
        // crash a serving node.
        let nondet = "use std::collections::HashMap;";
        let clocky = "pub fn f() -> std::time::Instant { std::time::Instant::now() }";
        let panicky = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        for path in [
            "crates/telemetry/src/tracer.rs",
            "crates/telemetry/src/metrics.rs",
            "crates/telemetry/src/slo.rs",
            "crates/telemetry/src/chrome.rs",
            "crates/telemetry/src/schema.rs",
        ] {
            assert_eq!(run_on(path, nondet).len(), 1, "{path} nondet uncovered");
            assert_eq!(run_on(path, clocky).len(), 1, "{path} clock uncovered");
            assert_eq!(run_on(path, panicky).len(), 1, "{path} panic uncovered");
        }
    }

    #[test]
    fn perf_layer_modules_are_policed() {
        // The transfer-path cache and the experiment pool exist to make
        // the simulator fast *without* changing a single output byte,
        // so they must sit inside the determinism regime: prove the
        // scoping reaches them so a refactor cannot silently move the
        // memoization or the dispatcher out of coverage.
        let nondet = "use std::collections::HashMap;";
        let clocky = "pub fn f() -> std::time::Instant { std::time::Instant::now() }";
        let panicky = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        for path in [
            "crates/acoustics/src/cache.rs",
            "crates/core/src/parallel.rs",
        ] {
            assert_eq!(run_on(path, nondet).len(), 1, "{path} nondet uncovered");
            assert_eq!(run_on(path, clocky).len(), 1, "{path} clock uncovered");
        }
        // The cache is also serving-path library code: no panics.
        assert_eq!(
            run_on("crates/acoustics/src/cache.rs", panicky).len(),
            1,
            "acoustics cache panic uncovered"
        );
        // The perf harness lives in the `deepnote` binary, where the
        // panic rule does not apply but the determinism rules still do
        // — its wall-clock reads carry explicit suppressions.
        assert!(run_on("crates/cluster/src/bin/deepnote.rs", panicky).is_empty());
        assert_eq!(
            run_on("crates/cluster/src/bin/deepnote.rs", clocky).len(),
            1,
            "bin clock uncovered"
        );
    }

    #[test]
    fn panic_rule_exempts_tests_and_bins() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(run_on("crates/kv/src/db.rs", src).len(), 1);
        assert!(run_on("crates/kv/src/bin/tool.rs", src).is_empty());
        assert!(run_on("crates/kv/tests/t.rs", src).is_empty());
        assert!(run_on("crates/kv/benches/b.rs", src).is_empty());
        // And os is not a panic-free crate.
        assert!(run_on("crates/os/src/a.rs", src).is_empty());
    }
}
