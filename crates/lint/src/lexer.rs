//! A self-contained Rust lexer.
//!
//! The workspace builds with no registry access, so `syn` is not
//! available; the analyzer instead works on a token stream produced by
//! this hand-rolled lexer. It understands everything the rules need to
//! be sound on real code: nested block comments, raw strings with
//! arbitrary hash counts, byte/char literals vs. lifetimes, raw
//! identifiers, and float vs. integer literals — each token tagged with
//! its 1-based source line.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `6.5e2`, `3f64`).
    Float,
    /// String, byte-string, raw-string, or C-string literal.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, possibly multi-character (`::`, `==`, `->`).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment, kept out of the token stream but retained for
/// suppression-directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether the comment is the first non-whitespace on its line.
    pub own_line: bool,
}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "->", "=>", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes Rust source into (tokens, comments).
///
/// The lexer is intentionally forgiving: on genuinely malformed input it
/// degrades to single-character punctuation tokens rather than erroring,
/// which keeps the analyzer usable on files that do not yet compile.
pub fn lex(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether anything other than whitespace appeared on the
    // current line yet (for `Comment::own_line`).
    let mut line_has_code = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    own_line: !line_has_code,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let own = !line_has_code;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                    own_line: own,
                });
                line_has_code = true;
            }
            b'"' => {
                line_has_code = true;
                let (tok, ni, nl) = lex_string(src, i, line);
                toks.push(tok);
                i = ni;
                line = nl;
            }
            b'r' | b'b' | b'c' if starts_prefixed_literal(b, i) => {
                line_has_code = true;
                let (tok, ni, nl) = lex_prefixed_literal(src, i, line);
                toks.push(tok);
                i = ni;
                line = nl;
            }
            b'\'' => {
                line_has_code = true;
                let (tok, ni, nl) = lex_quote(src, i, line);
                toks.push(tok);
                i = ni;
                line = nl;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                line_has_code = true;
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                line_has_code = true;
                let (tok, ni) = lex_number(src, i, line);
                toks.push(tok);
                i = ni;
            }
            _ => {
                line_has_code = true;
                let rest = &src[i..];
                let mut matched = None;
                for p in PUNCTS {
                    if rest.starts_with(p) {
                        matched = Some(*p);
                        break;
                    }
                }
                let text = match matched {
                    Some(p) => p.to_string(),
                    None => {
                        // Single char (may be multi-byte UTF-8).
                        let ch = rest.chars().next().unwrap_or('?');
                        ch.to_string()
                    }
                };
                i += text.len();
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    (toks, comments)
}

/// Does `b[i..]` begin a prefixed literal (`r"`, `r#"`, `br"`, `b"`,
/// `b'`, `c"`, `r#ident` counts as raw identifier, not a literal)?
fn starts_prefixed_literal(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    match rest[0] {
        b'b' => {
            matches!(rest.get(1), Some(b'"') | Some(b'\''))
                || (rest.get(1) == Some(&b'r') && matches!(rest.get(2), Some(b'"') | Some(b'#')))
        }
        b'r' | b'c' => match rest.get(1) {
            Some(b'"') => true,
            Some(b'#') => {
                // `r#"` or `r##"` … is a raw string; `r#ident` is a raw
                // identifier and must lex as Ident.
                let mut j = 1;
                while rest.get(j) == Some(&b'#') {
                    j += 1;
                }
                rest.get(j) == Some(&b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Lexes an ordinary `"…"` string starting at `i`.
fn lex_string(src: &str, i: usize, mut line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let start = i;
    let start_line = line;
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                line += 1;
                j += 1;
            }
            b'"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (
        Tok {
            kind: TokKind::Str,
            text: src[start..j.min(b.len())].to_string(),
            line: start_line,
        },
        j.min(b.len()),
        line,
    )
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"`.
fn lex_prefixed_literal(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let mut j = i;
    // Skip prefix letters (b, r, c combinations).
    while j < b.len() && (b[j] == b'b' || b[j] == b'r' || b[j] == b'c') {
        if b[j] == b'r' || b[j] == b'c' {
            j += 1;
            break;
        }
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        // Byte literal b'…'.
        let (mut tok, ni, nl) = lex_quote(src, j, line);
        tok.text = src[i..ni].to_string();
        tok.kind = TokKind::Char;
        return (tok, ni, nl);
    }
    // Count hashes for raw strings.
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        // Not actually a literal; treat the first char as punctuation to
        // make progress.
        return (
            Tok {
                kind: TokKind::Punct,
                text: src[i..i + 1].to_string(),
                line,
            },
            i + 1,
            line,
        );
    }
    j += 1; // consume opening quote
    let mut cur_line = line;
    let raw = hashes > 0 || src[i..].starts_with('r') || src[i..].starts_with("br");
    while j < b.len() {
        match b[j] {
            b'\n' => {
                cur_line += 1;
                j += 1;
            }
            b'\\' if !raw => j += 2,
            b'"' => {
                // Need `hashes` trailing #s to close a raw string.
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && k < b.len() && b[k] == b'#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    j = k;
                    break;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (
        Tok {
            kind: TokKind::Str,
            text: src[i..j.min(b.len())].to_string(),
            line,
        },
        j.min(b.len()),
        cur_line,
    )
}

/// Lexes a `'`-introduced token: lifetime or char literal.
fn lex_quote(src: &str, i: usize, line: u32) -> (Tok, usize, u32) {
    let b = src.as_bytes();
    let next = b.get(i + 1).copied();
    let after = b.get(i + 2).copied();
    let is_lifetime = match next {
        Some(n) if n == b'_' || n.is_ascii_alphabetic() => after != Some(b'\''),
        _ => false,
    };
    if is_lifetime {
        let mut j = i + 1;
        while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
            j += 1;
        }
        return (
            Tok {
                kind: TokKind::Lifetime,
                text: src[i..j].to_string(),
                line,
            },
            j,
            line,
        );
    }
    // Char literal, possibly escaped ('\n', '\u{1F4A9}', '\'').
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => {
                j += 1;
                break;
            }
            b'\n' => break, // malformed; stop at end of line
            _ => j += 1,
        }
    }
    (
        Tok {
            kind: TokKind::Char,
            text: src[i..j.min(b.len())].to_string(),
            line,
        },
        j.min(b.len()),
        line,
    )
}

/// Lexes a numeric literal, classifying float vs. integer.
fn lex_number(src: &str, i: usize, line: u32) -> (Tok, usize) {
    let b = src.as_bytes();
    let mut j = i;
    let mut is_float = false;

    if b[j] == b'0' && matches!(b.get(j + 1), Some(b'x') | Some(b'o') | Some(b'b')) {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (
            Tok {
                kind: TokKind::Int,
                text: src[i..j].to_string(),
                line,
            },
            j,
        );
    }

    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part: `.` followed by a digit, or a trailing `.` that is
    // neither a range (`..`) nor a method call (`.ident`).
    if j < b.len() && b[j] == b'.' {
        match b.get(j + 1) {
            Some(d) if d.is_ascii_digit() => {
                is_float = true;
                j += 1;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                    j += 1;
                }
            }
            Some(b'.') => {}
            Some(c) if c.is_ascii_alphabetic() || *c == b'_' => {}
            _ => {
                is_float = true;
                j += 1;
            }
        }
    }
    // Exponent.
    if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if matches!(b.get(k), Some(b'+') | Some(b'-')) {
            k += 1;
        }
        if matches!(b.get(k), Some(d) if d.is_ascii_digit()) {
            is_float = true;
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (f64, u32, usize…).
    if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') {
        let sfx_start = j;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if src[sfx_start..j].starts_with('f') {
            is_float = true;
        }
    }
    (
        Tok {
            kind: if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            },
            text: src[i..j].to_string(),
            line,
        },
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("fn main() { a::b == c }");
        assert_eq!(t[0], (TokKind::Ident, "fn".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == "::"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == "=="));
    }

    #[test]
    fn float_vs_int() {
        let t = kinds("1 1.0 1e3 0x10 2.5f64 3f64 1_000 7.");
        let floats: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Float).collect();
        assert_eq!(floats.len(), 5, "{t:?}");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Int && s == "0x10"));
    }

    #[test]
    fn method_call_on_int_is_not_float() {
        let t = kinds("1.min(2) 0..4");
        assert_eq!(t[0], (TokKind::Int, "1".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == ".."));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("'a 'static 'x' '\\n' b'z'");
        assert_eq!(t[0].0, TokKind::Lifetime);
        assert_eq!(t[1].0, TokKind::Lifetime);
        assert_eq!(t[2].0, TokKind::Char);
        assert_eq!(t[3].0, TokKind::Char);
        assert_eq!(t[4].0, TokKind::Char);
    }

    #[test]
    fn strings_absorb_fake_tokens() {
        let t = kinds(r#"let s = "HashMap == 1.0"; x"#);
        assert!(!t.iter().any(|(_, s)| s == "HashMap"));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let t = kinds(r##"r"\" r#type r#"quote " inside"# b"bytes""##);
        let strs = t.iter().filter(|(k, _)| *k == TokKind::Str).count();
        assert_eq!(strs, 3, "{t:?}");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "type"));
    }

    #[test]
    fn comments_extracted_with_position() {
        let (toks, comments) = lex("let a = 1; // trailing\n// own line\nlet b = 2;");
        assert_eq!(comments.len(), 2);
        assert!(!comments[0].own_line);
        assert_eq!(comments[0].line, 1);
        assert!(comments[1].own_line);
        assert_eq!(comments[1].line, 2);
        assert_eq!(toks.last().map(|t| t.line), Some(3));
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* a /* b */ c */ fn");
        assert_eq!(comments.len(), 1);
        assert_eq!(toks.len(), 1);
    }

    #[test]
    fn lines_tracked_through_multiline_strings() {
        let (toks, _) = lex("let s = \"a\nb\nc\";\nfn");
        assert_eq!(toks.last().map(|t| t.line), Some(4));
    }
}
