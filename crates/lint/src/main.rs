//! CLI for `deepnote-lint`.
//!
//! ```text
//! cargo run -p deepnote-lint -- check [--json] [--root DIR]
//! cargo run -p deepnote-lint -- rules
//! ```
//!
//! Exit codes: 0 clean (warnings allowed), 1 error-severity findings,
//! 2 usage or I/O error.

use deepnote_lint::{check_workspace, json, rules, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("rules") => cmd_rules(),
        _ => {
            eprintln!("usage: deepnote-lint check [--json] [--root DIR] | deepnote-lint rules");
            ExitCode::from(2)
        }
    }
}

/// `check`: analyse the workspace and print findings.
fn cmd_check(args: &[String]) -> ExitCode {
    let mut json_mode = false;
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_mode = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("deepnote-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json_mode {
        print!("{}", json::to_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "deepnote-lint: {} files, {} errors, {} warnings",
            report.files_scanned,
            report.errors(),
            report.warnings()
        );
    }
    if report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Error)
    {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `rules`: list every rule with its severity and description.
fn cmd_rules() -> ExitCode {
    for rule in rules::all_rules() {
        println!(
            "{:<20} {:<8} {}",
            rule.id(),
            rule.severity().to_string(),
            rule.description()
        );
    }
    ExitCode::SUCCESS
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn default_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(ws) = p.ancestors().nth(2) {
            return ws.to_path_buf();
        }
    }
    PathBuf::from(".")
}
