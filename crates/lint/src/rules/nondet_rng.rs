//! `nondet-rng`: no entropy-seeded randomness in simulation crates.
//!
//! Every random stream must descend from the experiment's root seed
//! (`SimRng::seed_from_u64` and deliberate sub-stream derivation);
//! `thread_rng()`, `from_entropy()`, `rand::random()` and OS-seeded
//! `Default` RNG constructors all pull from the environment and destroy
//! replayability.

use super::{Rule, DETERMINISM_CRATES};
use crate::source::SourceFile;
use crate::Finding;

/// See module docs.
pub struct NondetRng;

/// Free functions / constructors that seed from the environment.
const BANNED_CALLS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "os_rng"];

/// RNG type names for which an argument-less `::default()` is entropy
/// seeding in disguise.
const RNG_TYPES: &[&str] = &["SimRng", "StdRng", "SmallRng", "ThreadRng", "OsRng"];

impl Rule for NondetRng {
    fn id(&self) -> &'static str {
        "nondet-rng"
    }

    fn description(&self) -> &'static str {
        "thread_rng/from_entropy/random()/RNG::default() seed from the environment; derive from the root seed"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        DETERMINISM_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.is_test_code(i) {
                continue;
            }
            let t = &toks[i];
            if BANNED_CALLS.iter().any(|c| t.is_ident(c)) {
                out.push(Finding::new(
                    self,
                    file,
                    t.line,
                    format!(
                        "`{}` seeds from the environment; derive every RNG \
                         from the experiment's root seed instead",
                        t.text
                    ),
                ));
                continue;
            }
            // `rand :: random`
            if t.is_ident("rand")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("random"))
            {
                out.push(Finding::new(
                    self,
                    file,
                    t.line,
                    "`rand::random()` is thread-RNG backed; derive from the root seed".to_string(),
                ));
            }
            // `SimRng :: default ( )` and friends.
            if RNG_TYPES.iter().any(|r| t.is_ident(r))
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("default"))
                && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
            {
                out.push(Finding::new(
                    self,
                    file,
                    t.line,
                    format!(
                        "`{}::default()` hides the seed; construct with an \
                         explicit `seed_from_u64` so the stream is replayable",
                        t.text
                    ),
                ));
            }
        }
    }
}
