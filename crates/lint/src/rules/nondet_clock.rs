//! `nondet-clock`: no wall-clock reads in simulation crates.
//!
//! Simulated time comes from `deepnote_sim::SimTime`; reading the host
//! clock (`Instant::now`, `SystemTime::now`) injects real-world timing
//! into results that must replay bit-identically from a seed.

use super::{Rule, DETERMINISM_CRATES};
use crate::source::SourceFile;
use crate::Finding;

/// See module docs.
pub struct NondetClock;

const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

impl Rule for NondetClock {
    fn id(&self) -> &'static str {
        "nondet-clock"
    }

    fn description(&self) -> &'static str {
        "Instant::now/SystemTime::now read the host clock; simulation code must use SimTime"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        DETERMINISM_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        // Pattern: `Instant :: now` / `SystemTime :: now`. Tests and
        // benches may time themselves; simulation results may not.
        for (i, w) in file.tokens.windows(3).enumerate() {
            if file.is_test_code(i) {
                continue;
            }
            let ty = &w[0];
            if CLOCK_TYPES.iter().any(|t| ty.is_ident(t))
                && w[1].is_punct("::")
                && w[2].is_ident("now")
            {
                out.push(Finding::new(
                    self,
                    file,
                    ty.line,
                    format!(
                        "`{}::now()` reads the host clock; thread simulated \
                         time (`SimTime`) through instead",
                        ty.text
                    ),
                ));
            }
        }
    }
}
