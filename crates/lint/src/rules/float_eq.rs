//! `float-eq`: no `==`/`!=` against float values outside tests.
//!
//! After a propagation chain of logs, powers, and attenuation products,
//! two floats that are "the same number" rarely compare equal; exact
//! comparison either works by accident or introduces a
//! platform-dependent branch — the worst kind of nondeterminism to
//! debug. Compare with an explicit epsilon, or suppress with a
//! justification when the value is a true sentinel (e.g. an exact `0.0`
//! that was assigned, never computed).
//!
//! Detection is token-local: the rule fires when either operand
//! adjacent to `==`/`!=` is a float literal (`0.0`, `1e-3`), a unary
//! minus before one, or a `f64::CONST` (INFINITY, NAN, EPSILON…). That
//! catches the real sites without attempting full type inference.

use super::{Rule, DETERMINISM_CRATES};
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::Finding;

/// See module docs.
pub struct FloatEq;

const FLOAT_CONSTS: &[&str] = &[
    "INFINITY",
    "NEG_INFINITY",
    "NAN",
    "EPSILON",
    "MAX",
    "MIN",
    "MIN_POSITIVE",
];

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }

    fn description(&self) -> &'static str {
        "exact ==/!= on floats is brittle; compare with an epsilon"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        DETERMINISM_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.is_test_code(i) {
                continue;
            }
            let op = &toks[i];
            if !(op.is_punct("==") || op.is_punct("!=")) {
                continue;
            }
            let lhs_float = i > 0 && is_float_operand_end(toks, i - 1);
            let rhs_float = is_float_operand_start(toks, i + 1);
            if lhs_float || rhs_float {
                out.push(Finding::new(
                    self,
                    file,
                    op.line,
                    format!(
                        "exact `{}` against a float; use an epsilon \
                         comparison (or justify an allow for a true sentinel)",
                        op.text
                    ),
                ));
            }
        }
    }
}

/// Does the operand *ending* at token `i` look like a float?
/// Matches `… 1.0 ==` and `… f64::INFINITY ==`.
fn is_float_operand_end(toks: &[Tok], i: usize) -> bool {
    if toks[i].kind == TokKind::Float {
        return true;
    }
    if toks[i].kind == TokKind::Ident
        && FLOAT_CONSTS.contains(&toks[i].text.as_str())
        && i >= 2
        && toks[i - 1].is_punct("::")
        && (toks[i - 2].is_ident("f64") || toks[i - 2].is_ident("f32"))
    {
        return true;
    }
    false
}

/// Does the operand *starting* at token `i` look like a float?
/// Matches `== 1.0`, `== -1.0`, and `== f64::NAN`.
fn is_float_operand_start(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    if toks.get(j).is_some_and(|t| t.is_punct("-")) {
        j += 1;
    }
    match toks.get(j) {
        Some(t) if t.kind == TokKind::Float => true,
        Some(t)
            if (t.is_ident("f64") || t.is_ident("f32"))
                && toks.get(j + 1).is_some_and(|n| n.is_punct("::"))
                && toks
                    .get(j + 2)
                    .is_some_and(|n| FLOAT_CONSTS.contains(&n.text.as_str())) =>
        {
            true
        }
        _ => false,
    }
}
