//! The rule registry and crate-scoping tables.
//!
//! Every rule is a pure pass over one file's token stream; scoping —
//! which crates a rule polices, and whether test code is exempt — is
//! decided here so individual rules stay small.

mod float_eq;
mod nondet_clock;
mod nondet_collection;
mod nondet_rng;
mod panic_unwrap;
mod raw_f64_params;

pub use float_eq::FloatEq;
pub use nondet_clock::NondetClock;
pub use nondet_collection::NondetCollection;
pub use nondet_rng::NondetRng;
pub use panic_unwrap::PanicUnwrap;
pub use raw_f64_params::RawF64Params;

use crate::source::SourceFile;
use crate::{Finding, Severity};

/// Crates whose behaviour must be a pure function of the seed: the
/// whole simulation pipeline from physics to cluster.
pub const DETERMINISM_CRATES: &[&str] = &[
    "sim",
    "acoustics",
    "structures",
    "hdd",
    "blockdev",
    "fs",
    "kv",
    "os",
    "iobench",
    "core",
    "cluster",
    "telemetry",
];

/// Crates whose library code must not panic: everything on the serving
/// path of the cluster (a panicking storage node is an availability
/// bug indistinguishable from the acoustic attack it simulates).
pub const PANIC_FREE_CRATES: &[&str] = &[
    "acoustics",
    "hdd",
    "blockdev",
    "fs",
    "kv",
    "cluster",
    "telemetry",
];

/// Crates whose public APIs carry physical quantities and must use the
/// `units.rs` newtypes instead of adjacent raw `f64`s.
pub const UNIT_SAFE_CRATES: &[&str] = &["acoustics", "hdd"];

/// One static-analysis rule.
pub trait Rule {
    /// Stable id used in diagnostics and `allow(...)` directives.
    fn id(&self) -> &'static str;
    /// Diagnostic severity; only `Error` findings fail the run.
    fn severity(&self) -> Severity {
        Severity::Error
    }
    /// One-line description for `deepnote-lint rules`.
    fn description(&self) -> &'static str;
    /// Whether this rule polices `file` at all.
    fn applies(&self, file: &SourceFile) -> bool;
    /// Emits findings for `file` (suppressions are applied by the
    /// engine, not here).
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// All rules, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NondetCollection),
        Box::new(NondetClock),
        Box::new(NondetRng),
        Box::new(PanicUnwrap),
        Box::new(RawF64Params),
        Box::new(FloatEq),
    ]
}
