//! `nondet-collection`: no `HashMap`/`HashSet` in simulation crates.
//!
//! `std::collections::HashMap` iterates in randomized order (SipHash
//! keyed per-process), so any code path that iterates one — directly or
//! three refactors from now — silently breaks the "deterministic per
//! seed" invariant. Rather than try to prove which maps are iterated,
//! the rule bans the types outright in simulation crates and points at
//! `BTreeMap`/`BTreeSet`, whose iteration order is total and stable.

use super::{Rule, DETERMINISM_CRATES};
use crate::source::SourceFile;
use crate::Finding;

/// See module docs.
pub struct NondetCollection;

const BANNED: &[(&str, &str)] = &[("HashMap", "BTreeMap"), ("HashSet", "BTreeSet")];

impl Rule for NondetCollection {
    fn id(&self) -> &'static str {
        "nondet-collection"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iterate in randomized order; simulation crates must use BTreeMap/BTreeSet"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        DETERMINISM_CRATES.contains(&file.crate_name.as_str())
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for (i, tok) in file.tokens.iter().enumerate() {
            if file.is_test_code(i) {
                continue;
            }
            for (banned, replacement) in BANNED {
                if tok.is_ident(banned) {
                    out.push(Finding::new(
                        self,
                        file,
                        tok.line,
                        format!(
                            "`{banned}` has nondeterministic iteration order; \
                             use `{replacement}` (or a sorted Vec) so runs are \
                             identical per seed"
                        ),
                    ));
                }
            }
        }
    }
}
