//! `raw-f64-params`: public physics APIs must use unit newtypes.
//!
//! `fn spl(freq: f64, dist: f64)` is the exact API shape that caused
//! the classic dB-re-1µPa vs dB-SPL and Hz vs kHz mixups the paper's
//! attack physics depends on getting right. Two adjacent raw `f64`
//! parameters on a public function are silently swappable at every
//! call site; `Frequency`/`Distance`/`Spl`-style newtypes make the
//! mistake a type error. A single raw `f64` (a ratio, a gain) is fine —
//! the rule fires only when two or more raw `f64`s sit side by side.

use super::{Rule, UNIT_SAFE_CRATES};
use crate::lexer::Tok;
use crate::source::{FileKind, SourceFile};
use crate::Finding;

/// See module docs.
pub struct RawF64Params;

impl Rule for RawF64Params {
    fn id(&self) -> &'static str {
        "raw-f64-params"
    }

    fn description(&self) -> &'static str {
        "public acoustics/hdd fns must not take >=2 adjacent raw f64 params; use unit newtypes"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        UNIT_SAFE_CRATES.contains(&file.crate_name.as_str()) && file.kind == FileKind::Lib
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if !toks[i].is_ident("pub") || file.is_test_code(i) {
                i += 1;
                continue;
            }
            // Skip restricted visibility `pub(crate)` / `pub(in path)`.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                let mut depth = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct("(") {
                        depth += 1;
                    } else if toks[j].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // Skip qualifiers.
            while toks
                .get(j)
                .is_some_and(|t| t.is_ident("const") || t.is_ident("async") || t.is_ident("unsafe"))
            {
                j += 1;
            }
            if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
                i += 1;
                continue;
            }
            let Some(name) = toks.get(j + 1) else { break };
            let fn_name = name.text.clone();
            let fn_line = name.line;
            j += 2;
            // Skip generics `<...>` (tolerating `>>` closing two).
            if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        ">>" => depth -= 2,
                        _ => {}
                    }
                    j += 1;
                    if depth <= 0 {
                        break;
                    }
                }
            }
            if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
                i = j;
                continue;
            }
            // Collect the parameter list span.
            let open = j;
            let mut depth = 0i32;
            let mut close = open;
            while close < toks.len() {
                if toks[close].is_punct("(") || toks[close].is_punct("[") {
                    depth += 1;
                } else if toks[close].is_punct(")") || toks[close].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                close += 1;
            }
            let raw_runs = adjacent_f64_runs(&toks[open + 1..close]);
            for run in raw_runs {
                out.push(Finding::new(
                    self,
                    file,
                    fn_line,
                    format!(
                        "pub fn `{fn_name}` takes {run} adjacent raw `f64` \
                         parameters — swappable at every call site; use the \
                         unit newtypes (Frequency, Distance, Spl, …)"
                    ),
                ));
            }
            i = close + 1;
        }
    }
}

/// Splits a parameter-list token span at top-level commas and counts
/// maximal runs of >=2 consecutive parameters whose type is exactly
/// `f64`. Returns one entry per run (its length).
fn adjacent_f64_runs(params: &[Tok]) -> Vec<usize> {
    let mut runs = Vec::new();
    let mut current = 0usize;
    let mut start = 0usize;
    let mut depth = 0i32;
    let mut spans: Vec<&[Tok]> = Vec::new();
    for (k, t) in params.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth <= 0 => {
                spans.push(&params[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < params.len() {
        spans.push(&params[start..]);
    }
    for span in spans {
        if param_is_raw_f64(span) {
            current += 1;
        } else {
            if current >= 2 {
                runs.push(current);
            }
            current = 0;
        }
    }
    if current >= 2 {
        runs.push(current);
    }
    runs
}

/// Is this single-parameter span `pattern: f64` (type exactly `f64`)?
fn param_is_raw_f64(span: &[Tok]) -> bool {
    // Find the top-level `:` separating pattern from type. `self`
    // params and malformed spans have none.
    let mut depth = 0i32;
    for (k, t) in span.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 0 => {
                let ty: Vec<&str> = span[k + 1..].iter().map(|t| t.text.as_str()).collect();
                return ty == ["f64"];
            }
            _ => {}
        }
    }
    false
}
