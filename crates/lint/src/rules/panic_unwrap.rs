//! `panic-unwrap`: no panicking shortcuts in serving-path library code.
//!
//! A panic in `fs`/`kv`/`cluster` library code takes down a simulated
//! storage node the same way the acoustic attack does — except it is a
//! bug, not a result. Library code in the serving-path crates must
//! plumb `Result` through the existing error types; `unwrap`, `expect`,
//! `panic!`, `todo!`, `unimplemented!` are reserved for tests, benches,
//! examples, and binaries.
//!
//! Deliberate invariant checks stay possible two ways: `assert!`-family
//! macros are not flagged (they document invariants rather than discard
//! errors), and genuinely-unreachable arms can carry a
//! `// deepnote-lint: allow(panic-unwrap): <why>` justification.

use super::{Rule, PANIC_FREE_CRATES};
use crate::source::{FileKind, SourceFile};
use crate::Finding;

/// See module docs.
pub struct PanicUnwrap;

/// `.unwrap()` / `.expect(` method calls.
const BANNED_METHODS: &[&str] = &["unwrap", "expect"];

/// Panicking macros. `unreachable!` is included: if an arm really is
/// unreachable, say why in an allow-justification.
const BANNED_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

impl Rule for PanicUnwrap {
    fn id(&self) -> &'static str {
        "panic-unwrap"
    }

    fn description(&self) -> &'static str {
        "serving-path library code must return Result, not unwrap/expect/panic!/todo!"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        PANIC_FREE_CRATES.contains(&file.crate_name.as_str()) && file.kind == FileKind::Lib
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.is_test_code(i) {
                continue;
            }
            let t = &toks[i];
            // `.unwrap()` / `.expect(...)`: require the preceding dot so
            // a local `fn unwrap` or ident does not trip the rule, and
            // the following `(` so field accesses stay legal.
            if BANNED_METHODS.iter().any(|m| t.is_ident(m))
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                out.push(Finding::new(
                    self,
                    file,
                    t.line,
                    format!(
                        "`.{}()` panics on the error path; plumb the error \
                         through this crate's Result type",
                        t.text
                    ),
                ));
                continue;
            }
            // `panic!(` etc.
            if BANNED_MACROS.iter().any(|m| t.is_ident(m))
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
                && toks
                    .get(i + 2)
                    .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
            {
                out.push(Finding::new(
                    self,
                    file,
                    t.line,
                    format!(
                        "`{}!` in library code crashes the simulated node; \
                         return an error instead",
                        t.text
                    ),
                ));
            }
        }
    }
}
