//! Machine-readable output.
//!
//! The workspace's `serde` is an offline no-op shim, so JSON is written
//! by hand. The schema is stable and versioned; CI consumes it:
//!
//! ```json
//! {
//!   "version": 1,
//!   "files_scanned": 120,
//!   "summary": { "errors": 0, "warnings": 2 },
//!   "findings": [
//!     { "rule": "panic-unwrap", "severity": "error",
//!       "path": "crates/fs/src/fs.rs", "line": 41,
//!       "message": "`.unwrap()` panics on the error path; …" }
//!   ]
//! }
//! ```

use crate::Report;
use std::fmt::Write;

/// Renders a report in the versioned JSON schema above.
pub fn to_json(report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"version\": 1,");
    let _ = writeln!(s, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(
        s,
        "  \"summary\": {{ \"errors\": {}, \"warnings\": {} }},",
        report.errors(),
        report.warnings()
    );
    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    { ");
        let _ = write!(
            s,
            "\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"message\": {}",
            escape(&f.rule),
            escape(&f.severity.to_string()),
            escape(&f.path),
            f.line,
            escape(&f.message)
        );
        s.push_str(" }");
    }
    if !report.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// JSON string escaping per RFC 8259.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Severity};

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_is_valid_and_stable() {
        let r = Report {
            findings: vec![],
            files_scanned: 3,
        };
        let j = to_json(&r);
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"errors\": 0"));
        assert!(j.contains("\"findings\": []"));
    }

    #[test]
    fn findings_serialize_all_fields() {
        let r = Report {
            findings: vec![Finding {
                rule: "float-eq".into(),
                severity: Severity::Error,
                path: "crates/hdd/src/timing.rs".into(),
                line: 226,
                message: "exact `==` against a float".into(),
            }],
            files_scanned: 1,
        };
        let j = to_json(&r);
        for needle in [
            "\"rule\": \"float-eq\"",
            "\"severity\": \"error\"",
            "\"path\": \"crates/hdd/src/timing.rs\"",
            "\"line\": 226",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }
}
