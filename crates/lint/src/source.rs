//! Source-file model: path classification, `#[cfg(test)]` region
//! detection, and suppression-directive extraction.

use crate::lexer::{lex, Comment, Tok};
use std::cell::Cell;

/// What role a file plays in its crate — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` (excluding `src/bin/`).
    Lib,
    /// Binary code under `src/bin/` or `src/main.rs`.
    Bin,
    /// Integration tests (`tests/`, `xtests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// An inline suppression directive:
/// `// deepnote-lint: allow(rule-a, rule-b): justification`.
#[derive(Debug)]
pub struct Suppression {
    /// Rule ids this directive allows.
    pub rules: Vec<String>,
    /// 1-based line the directive sits on.
    pub line: u32,
    /// An own-line directive covers the following line; a trailing one
    /// covers its own line.
    pub own_line: bool,
    /// Free text after the closing paren (why the violation is fine).
    pub justification: String,
    /// Set when a finding was actually suppressed by this directive;
    /// stale directives are reported as warnings.
    pub used: Cell<bool>,
}

impl Suppression {
    /// Whether this directive suppresses rule `rule` at line `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        let line_ok = if self.own_line {
            line == self.line + 1 || line == self.line
        } else {
            line == self.line
        };
        line_ok && self.rules.iter().any(|r| r == rule || r == "all")
    }
}

/// A lexed, classified source file ready for rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate the file belongs to (`fs`, `cluster`, …; `workspace` for
    /// root-level `tests/` and `examples/`).
    pub crate_name: String,
    /// Role of the file.
    pub kind: FileKind,
    /// Token stream (comments stripped).
    pub tokens: Vec<Tok>,
    /// Parallel to `tokens`: true where the token sits inside a
    /// `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
    /// Suppression directives found in comments.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes and classifies `src`, which lives at workspace-relative
    /// `rel_path`.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let (tokens, comments) = lex(src);
        let in_test = mark_test_regions(&tokens);
        let suppressions = comments.iter().filter_map(parse_suppression).collect();
        let (crate_name, kind) = classify(rel_path);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            kind,
            tokens,
            in_test,
            suppressions,
        }
    }

    /// True when the token at `idx` is test-only code (either the whole
    /// file is a test/bench/example, or the token is inside a
    /// `#[cfg(test)]` region).
    pub fn is_test_code(&self, idx: usize) -> bool {
        !matches!(self.kind, FileKind::Lib | FileKind::Bin) || self.in_test[idx]
    }

    /// Whether a finding for `rule` at `line` is suppressed; marks the
    /// matching directive used.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for s in &self.suppressions {
            if s.covers(rule, line) {
                s.used.set(true);
                hit = true;
            }
        }
        hit
    }
}

/// Derives (crate name, file kind) from a workspace-relative path.
fn classify(rel_path: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest): (String, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_string(), rest),
        ["xtests", rest @ ..] => ("xtests".to_string(), rest),
        rest => ("workspace".to_string(), rest),
    };
    let kind = match rest {
        ["src", "bin", ..] => FileKind::Bin,
        ["src", "main.rs"] => FileKind::Bin,
        ["src", ..] => {
            if crate_name == "xtests" {
                FileKind::Test
            } else {
                FileKind::Lib
            }
        }
        ["tests", ..] => FileKind::Test,
        ["benches", ..] => FileKind::Bench,
        ["examples", ..] => FileKind::Example,
        _ => FileKind::Lib,
    };
    (crate_name, kind)
}

/// Marks every token that sits inside a test-gated item.
///
/// Recognises `#[test]`, `#[cfg(test)]`, and `#[cfg(any(test, …))]`
/// attributes (but not `#[cfg(not(test))]`), then extends the region to
/// the end of the item that follows: through the matching `}` of the
/// item's body, or to the terminating `;` for body-less items.
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct("#") {
            i += 1;
            continue;
        }
        // `#[` or `#![` — collect the attribute token span.
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct("!") {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct("[") {
            i += 1;
            continue;
        }
        let attr_open = j;
        let mut depth = 0i32;
        let mut attr_end = attr_open;
        for (k, t) in toks.iter().enumerate().skip(attr_open) {
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    attr_end = k;
                    break;
                }
            }
        }
        if attr_end == attr_open {
            break; // unbalanced; stop scanning
        }
        let attr_toks = &toks[attr_open + 1..attr_end];
        if is_test_attr(attr_toks) {
            let region_end = item_end(toks, attr_end + 1);
            for m in mask.iter_mut().take(region_end.min(toks.len())).skip(i) {
                *m = true;
            }
            i = region_end;
        } else {
            i = attr_end + 1;
        }
    }
    mask
}

/// Is this attribute token span test-gating?
fn is_test_attr(attr: &[Tok]) -> bool {
    if attr.is_empty() {
        return false;
    }
    // `#[test]` (possibly `#[tokio::test]`-style paths ending in test).
    if attr
        .iter()
        .all(|t| t.kind == crate::lexer::TokKind::Ident || t.is_punct("::"))
        && attr.last().map(|t| t.is_ident("test")) == Some(true)
    {
        return true;
    }
    // `#[cfg(…test…)]` — but `not(test)` does not gate the code *out*
    // of production, so it must not count.
    if attr[0].is_ident("cfg") {
        let has_test = attr.iter().any(|t| t.is_ident("test"));
        let negated = attr
            .windows(2)
            .any(|w| w[0].is_ident("not") && w[1].is_punct("("));
        return has_test && !negated;
    }
    false
}

/// Returns the token index one past the item starting at `start`:
/// skips further attributes, then runs to the matching `}` of the first
/// `{`, or one past the first top-level `;` if that comes first.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    // Skip any further attributes on the same item.
    while i + 1 < toks.len() && toks[i].is_punct("#") && toks[i + 1].is_punct("[") {
        let mut depth = 0i32;
        let mut k = i + 1;
        while k < toks.len() {
            if toks[k].is_punct("[") {
                depth += 1;
            } else if toks[k].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        i = k + 1;
    }
    let mut brace_depth = 0i32;
    let mut paren_depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            brace_depth += 1;
        } else if t.is_punct("}") {
            brace_depth -= 1;
            if brace_depth == 0 {
                return i + 1;
            }
        } else if t.is_punct("(") || t.is_punct("[") {
            paren_depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren_depth -= 1;
        } else if t.is_punct(";") && brace_depth == 0 && paren_depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    toks.len()
}

/// Parses a `deepnote-lint: allow(...)` directive out of a comment.
fn parse_suppression(c: &Comment) -> Option<Suppression> {
    let text = c.text.trim_start_matches('/').trim_start_matches('*');
    let at = text.find("deepnote-lint:")?;
    let rest = text[at + "deepnote-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let justification = rest[close + 1..]
        .trim_start_matches([':', ' '])
        .trim_end_matches("*/")
        .trim()
        .to_string();
    Some(Suppression {
        rules,
        line: c.line,
        own_line: c.own_line,
        justification,
        used: Cell::new(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/fs/src/fs.rs"),
            ("fs".to_string(), FileKind::Lib)
        );
        assert_eq!(
            classify("crates/cluster/src/bin/deepnote.rs"),
            ("cluster".to_string(), FileKind::Bin)
        );
        assert_eq!(
            classify("crates/kv/tests/model.rs"),
            ("kv".to_string(), FileKind::Test)
        );
        assert_eq!(
            classify("crates/bench/benches/micro.rs"),
            ("bench".to_string(), FileKind::Bench)
        );
        assert_eq!(
            classify("tests/determinism.rs"),
            ("workspace".to_string(), FileKind::Test)
        );
        assert_eq!(
            classify("examples/attack.rs"),
            ("workspace".to_string(), FileKind::Example)
        );
        assert_eq!(
            classify("xtests/src/lib.rs"),
            ("xtests".to_string(), FileKind::Test)
        );
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn prod2() {}";
        let f = SourceFile::parse("crates/fs/src/a.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.in_test[i])
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        // Code after the test mod is production again.
        let prod2 = f.tokens.iter().position(|t| t.is_ident("prod2"));
        assert!(prod2.is_some_and(|i| !f.in_test[i]));
    }

    #[test]
    fn test_fn_attr_is_masked() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn p() { b.unwrap(); }";
        let f = SourceFile::parse("crates/fs/src/a.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.in_test[i])
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn p() { a.unwrap(); }";
        let f = SourceFile::parse("crates/fs/src/a.rs", src);
        assert!(f.in_test.iter().all(|&m| !m));
    }

    #[test]
    fn suppression_parsing() {
        let src = "// deepnote-lint: allow(panic-unwrap): lock poisoning is fatal anyway\nlet x = m.lock().unwrap();\nlet y = 1; // deepnote-lint: allow(float-eq, nondet-collection)\n";
        let f = SourceFile::parse("crates/fs/src/a.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        let s0 = &f.suppressions[0];
        assert_eq!(s0.rules, vec!["panic-unwrap"]);
        assert!(s0.own_line);
        assert_eq!(s0.justification, "lock poisoning is fatal anyway");
        assert!(s0.covers("panic-unwrap", 2));
        assert!(!s0.covers("float-eq", 2));
        let s1 = &f.suppressions[1];
        assert_eq!(s1.rules.len(), 2);
        assert!(!s1.own_line);
        assert!(s1.covers("float-eq", 3));
        assert!(!s1.covers("float-eq", 4));
    }

    #[test]
    fn suppressed_marks_directive_used() {
        let src = "// deepnote-lint: allow(float-eq): exact sentinel\nlet eq = a == 1.0;\n";
        let f = SourceFile::parse("crates/fs/src/a.rs", src);
        assert!(f.suppressed("float-eq", 2));
        assert!(f.suppressions[0].used.get());
        assert!(!f.suppressed("panic-unwrap", 2));
    }
}
