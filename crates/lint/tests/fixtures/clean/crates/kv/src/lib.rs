//! Clean fixture: nothing for the linter to object to.

pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
