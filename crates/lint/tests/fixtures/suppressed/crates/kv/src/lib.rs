//! A justified allow plus a stale directive.

pub fn head(xs: &[u8]) -> u8 {
    // deepnote-lint: allow(panic-unwrap): fixture exercises a justified allow
    *xs.first().unwrap()
}

// deepnote-lint: allow(float-eq): stale on purpose; must surface as a warning
pub fn id(x: u8) -> u8 {
    x
}
