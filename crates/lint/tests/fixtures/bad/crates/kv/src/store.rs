//! Seeded panic-freedom violation: serving-path library code unwraps.

pub fn head(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}
