//! Seeded determinism violations for the integration tests.
//!
//! This file is never compiled; the lint test suite points
//! `check_workspace` at the fixture root and asserts on the findings.

use std::collections::HashMap;

pub fn census(seen: &HashMap<u32, u32>) -> usize {
    seen.len()
}

pub fn stamp_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}

pub fn dice() -> u64 {
    rand::thread_rng().next_u64()
}
