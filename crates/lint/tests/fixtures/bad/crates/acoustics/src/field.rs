//! Seeded unit-safety and float-discipline violations.

pub fn spl_at(freq_hz: f64, range_m: f64) -> f64 {
    if freq_hz == 0.0 {
        return 0.0;
    }
    freq_hz.log10() * range_m
}
