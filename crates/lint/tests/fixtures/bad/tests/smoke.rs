//! Root-level test file: panic shortcuts are exempt here.

#[test]
fn boots() {
    assert_eq!(std::hint::black_box(1u8).checked_add(1).unwrap(), 2);
}
