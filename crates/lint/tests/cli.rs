//! CLI contract: exit codes, human and JSON output, `rules` listing.
//!
//! Exit codes are load-bearing — CI keys off them: 0 clean (warnings
//! allowed), 1 error-severity findings, 2 usage error.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_deepnote-lint"))
        .args(args)
        .output()
        .expect("spawn deepnote-lint")
}

#[test]
fn seeded_violations_exit_one() {
    let out = lint(&["check", "--root", &fixture("bad")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("error: crates/kv/src/store.rs:4: [panic-unwrap]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("deepnote-lint: 4 files, 7 errors, 0 warnings"),
        "{stdout}"
    );
}

#[test]
fn clean_tree_exits_zero() {
    let out = lint(&["check", "--root", &fixture("clean")]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 files, 0 errors, 0 warnings"), "{stdout}");
}

#[test]
fn warnings_do_not_fail_the_run() {
    let out = lint(&["check", "--root", &fixture("suppressed")]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[unused-suppression]"), "{stdout}");
    assert!(stdout.contains("0 errors, 1 warnings"), "{stdout}");
}

#[test]
fn json_mode_emits_schema() {
    let out = lint(&["check", "--json", "--root", &fixture("bad")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\n"), "{stdout}");
    assert!(stdout.contains("\"version\": 1"), "{stdout}");
    assert!(
        stdout.contains("\"summary\": { \"errors\": 7, \"warnings\": 0 }"),
        "{stdout}"
    );
}

#[test]
fn rules_subcommand_lists_every_rule() {
    let out = lint(&["rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "nondet-collection",
        "nondet-clock",
        "nondet-rng",
        "panic-unwrap",
        "raw-f64-params",
        "float-eq",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(lint(&[]).status.code(), Some(2));
    assert_eq!(lint(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(lint(&["check", "--root"]).status.code(), Some(2));
    assert_eq!(lint(&["check", "--bogus"]).status.code(), Some(2));
}

#[test]
fn empty_root_scans_nothing_and_passes() {
    // A root with none of crates/, tests/, xtests/, examples/ simply has
    // nothing to check; that is a pass, not an I/O error.
    let out = lint(&["check", "--root", &fixture("does-not-exist")]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 files, 0 errors, 0 warnings"), "{stdout}");
}
