//! Integration tests: `check_workspace` over seeded fixture trees.
//!
//! The fixtures under `tests/fixtures/` are miniature workspace roots
//! (`<fixture>/crates/<crate>/src/*.rs`); their `.rs` files are never
//! compiled — they exist only to be scanned.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_lint::{check_workspace, json, Severity};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_fixture_triggers_every_rule() {
    let report = check_workspace(&fixture("bad")).expect("scan fixture");
    assert_eq!(report.files_scanned, 4);
    assert_eq!(report.errors(), 7, "{:#?}", report.findings);
    assert_eq!(report.warnings(), 0);
    let hits: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.path.as_str(), f.line))
        .collect();
    for expected in [
        ("nondet-collection", "crates/sim/src/lib.rs", 6),
        ("nondet-collection", "crates/sim/src/lib.rs", 8),
        ("nondet-clock", "crates/sim/src/lib.rs", 13),
        ("nondet-rng", "crates/sim/src/lib.rs", 17),
        ("panic-unwrap", "crates/kv/src/store.rs", 4),
        ("raw-f64-params", "crates/acoustics/src/field.rs", 3),
        ("float-eq", "crates/acoustics/src/field.rs", 4),
    ] {
        assert!(hits.contains(&expected), "missing {expected:?} in {hits:?}");
    }
    assert!(report
        .findings
        .iter()
        .all(|f| f.severity == Severity::Error));
    // Findings come back sorted by (path, line, rule).
    let mut sorted = hits.clone();
    sorted.sort_by(|a, b| (a.1, a.2, a.0).cmp(&(b.1, b.2, b.0)));
    assert_eq!(hits, sorted);
}

#[test]
fn test_files_are_exempt_from_panic_rule() {
    // `tests/smoke.rs` in the fixture unwraps freely; test code is not
    // serving-path library code.
    let report = check_workspace(&fixture("bad")).expect("scan fixture");
    assert!(
        !report.findings.iter().any(|f| f.path.starts_with("tests/")),
        "root-level test files must not be policed for panics: {:#?}",
        report.findings
    );
}

#[test]
fn suppression_silences_finding_and_stale_directive_warns() {
    let report = check_workspace(&fixture("suppressed")).expect("scan fixture");
    assert_eq!(report.errors(), 0, "{:#?}", report.findings);
    assert_eq!(report.warnings(), 1, "{:#?}", report.findings);
    let w = &report.findings[0];
    assert_eq!(w.rule, "unused-suppression");
    assert_eq!(w.severity, Severity::Warning);
    assert_eq!(w.path, "crates/kv/src/lib.rs");
    assert_eq!(w.line, 8);
    assert!(w.message.contains("float-eq"), "{}", w.message);
}

#[test]
fn clean_fixture_reports_nothing() {
    let report = check_workspace(&fixture("clean")).expect("scan fixture");
    assert!(report.findings.is_empty(), "{:#?}", report.findings);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn json_output_carries_schema_and_findings() {
    let report = check_workspace(&fixture("bad")).expect("scan fixture");
    let j = json::to_json(&report);
    assert!(j.starts_with("{\n"), "{j}");
    assert!(j.ends_with("}\n"), "{j}");
    for needle in [
        "\"version\": 1",
        "\"files_scanned\": 4",
        "\"summary\": { \"errors\": 7, \"warnings\": 0 }",
        "\"rule\": \"nondet-collection\"",
        "\"rule\": \"nondet-clock\"",
        "\"rule\": \"nondet-rng\"",
        "\"rule\": \"panic-unwrap\"",
        "\"rule\": \"raw-f64-params\"",
        "\"rule\": \"float-eq\"",
        "\"severity\": \"error\"",
        "\"path\": \"crates/sim/src/lib.rs\"",
        "\"line\": 13",
    ] {
        assert!(j.contains(needle), "missing {needle} in:\n{j}");
    }
    // Rule messages quote code in backticks, never braces, so brace
    // balance is a cheap structural check that the document stays one
    // well-formed JSON object.
    let depth = j.chars().fold(0i32, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0);
}
