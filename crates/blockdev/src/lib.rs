//! Block device abstraction for the Deep Note reproduction.
//!
//! Filesystems, databases, and benchmarks in this workspace talk to
//! storage through the [`BlockDevice`] trait. Three implementations are
//! provided:
//!
//! * [`MemDisk`] — an ideal in-memory device with optional fixed latency,
//!   the reference for correctness tests ([`mem`]).
//! * [`HddDisk`] — the real thing: a sparse byte store timed and failed by
//!   the mechanical [`deepnote_hdd`] drive model, including vibration-
//!   induced errors and unresponsiveness ([`hdd_dev`]).
//! * [`FaultInjector`] — a wrapper that injects deterministic scripted
//!   failures into any device, for testing error paths without
//!   acoustics ([`faults`]).
//! * [`ChaosInjector`] — a wrapper that injects *seeded probabilistic*
//!   faults (error bursts, bit flips, torn/misdirected writes, latency
//!   inflation), optionally scaled by vibration ([`chaos`]).
//! * [`Raid1`] — N-way mirroring with degradation and resync, for the
//!   redundancy experiments ([`raid`]).
//!
//! # Example
//!
//! ```
//! use deepnote_blockdev::{BlockDevice, MemDisk};
//!
//! let mut disk = MemDisk::new(1024);
//! let data = vec![0xAB; 512];
//! disk.write_blocks(7, &data)?;
//! let mut out = vec![0; 512];
//! disk.read_blocks(7, &mut out)?;
//! assert_eq!(out, data);
//! # Ok::<(), deepnote_blockdev::IoError>(())
//! ```

pub mod chaos;
pub mod device;
pub mod error;
pub mod faults;
pub mod hdd_dev;
pub mod mem;
pub mod raid;
pub mod trace;

pub use chaos::{
    ChaosEvent, ChaosFault, ChaosInjector, ChaosPlan, ChaosStats, DelayPlan, ErrorBurst, FaultScope,
};
pub use device::{BlockDevice, BLOCK_SIZE};
pub use error::{IoError, EIO};
pub use faults::{FaultInjector, FaultPlan};
pub use hdd_dev::HddDisk;
pub use mem::MemDisk;
pub use raid::{Raid1, RaidState};
pub use trace::{TraceDevice, TraceEntry, TraceKind};
