//! The [`BlockDevice`] trait.

use crate::error::IoError;

/// Block size used throughout the workspace: one 512-byte sector.
pub const BLOCK_SIZE: usize = 512;

/// A synchronous block device on virtual time.
///
/// Implementations advance their shared [`deepnote_sim::Clock`] by each
/// request's service time. Buffers must be a non-zero multiple of
/// [`BLOCK_SIZE`].
///
/// The trait is object-safe; storage stacks typically hold a
/// `Box<dyn BlockDevice>`.
pub trait BlockDevice {
    /// Total number of addressable blocks.
    fn num_blocks(&self) -> u64;

    /// Reads `buf.len() / BLOCK_SIZE` blocks starting at `lba` into `buf`.
    ///
    /// # Errors
    ///
    /// [`IoError::InvalidRequest`] for empty or misaligned buffers,
    /// [`IoError::OutOfRange`] past the end of the device, and
    /// [`IoError::Medium`] / [`IoError::NoResponse`] for device failures.
    fn read_blocks(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), IoError>;

    /// Writes `buf.len() / BLOCK_SIZE` blocks starting at `lba`.
    ///
    /// # Errors
    ///
    /// As for [`BlockDevice::read_blocks`].
    fn write_blocks(&mut self, lba: u64, buf: &[u8]) -> Result<(), IoError>;

    /// Ensures all previously written data is durable.
    ///
    /// # Errors
    ///
    /// [`IoError`] if the device cannot complete the flush.
    fn flush(&mut self) -> Result<(), IoError>;

    /// Capacity in bytes.
    fn capacity_bytes(&self) -> u64 {
        self.num_blocks() * BLOCK_SIZE as u64
    }
}

/// Validates a request's buffer and range; shared by implementations.
///
/// Returns the number of blocks covered by `len` bytes.
///
/// # Errors
///
/// [`IoError::InvalidRequest`] or [`IoError::OutOfRange`] as appropriate.
pub fn check_request(num_blocks: u64, lba: u64, len: usize) -> Result<u64, IoError> {
    if len == 0 || !len.is_multiple_of(BLOCK_SIZE) {
        return Err(IoError::InvalidRequest);
    }
    let blocks = (len / BLOCK_SIZE) as u64;
    match lba.checked_add(blocks) {
        Some(end) if end <= num_blocks => Ok(blocks),
        _ => Err(IoError::OutOfRange),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_request_validates() {
        assert_eq!(check_request(100, 0, 512), Ok(1));
        assert_eq!(check_request(100, 99, 512), Ok(1));
        assert_eq!(check_request(100, 0, 512 * 100), Ok(100));
        assert_eq!(check_request(100, 0, 0), Err(IoError::InvalidRequest));
        assert_eq!(check_request(100, 0, 100), Err(IoError::InvalidRequest));
        assert_eq!(check_request(100, 100, 512), Err(IoError::OutOfRange));
        assert_eq!(check_request(100, 0, 512 * 101), Err(IoError::OutOfRange));
        assert_eq!(check_request(100, u64::MAX, 512), Err(IoError::OutOfRange));
    }
}
