//! An ideal in-memory block device.

use crate::device::{check_request, BlockDevice, BLOCK_SIZE};
use crate::error::IoError;
use deepnote_sim::{Clock, SimDuration};
use std::collections::BTreeMap;

/// An in-memory device: never fails, optionally charges a fixed latency
/// per request against a virtual clock. Unwritten blocks read as zeros;
/// storage is sparse, so huge devices are cheap.
///
/// # Example
///
/// ```
/// use deepnote_blockdev::{BlockDevice, MemDisk};
///
/// let mut d = MemDisk::new(1 << 20);
/// let mut buf = vec![0u8; 512];
/// d.read_blocks(12345, &mut buf)?; // never written: zeros
/// assert!(buf.iter().all(|&b| b == 0));
/// # Ok::<(), deepnote_blockdev::IoError>(())
/// ```
#[derive(Debug, Default)]
pub struct MemDisk {
    num_blocks: u64,
    blocks: BTreeMap<u64, Box<[u8; BLOCK_SIZE]>>,
    latency: Option<(Clock, SimDuration)>,
    reads: u64,
    writes: u64,
}

impl MemDisk {
    /// Creates a device with `num_blocks` blocks and no latency model.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is zero.
    pub fn new(num_blocks: u64) -> Self {
        assert!(num_blocks > 0, "device must have at least one block");
        MemDisk {
            num_blocks,
            blocks: BTreeMap::new(),
            latency: None,
            reads: 0,
            writes: 0,
        }
    }

    /// Creates a device that advances `clock` by `latency` per request.
    pub fn with_latency(num_blocks: u64, clock: Clock, latency: SimDuration) -> Self {
        let mut d = MemDisk::new(num_blocks);
        d.latency = Some((clock, latency));
        d
    }

    /// Number of read requests served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write requests served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of blocks that have ever been written (sparse footprint).
    pub fn blocks_touched(&self) -> usize {
        self.blocks.len()
    }

    fn charge(&self) {
        if let Some((clock, latency)) = &self.latency {
            clock.advance(*latency);
        }
    }
}

impl BlockDevice for MemDisk {
    fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    fn read_blocks(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let blocks = check_request(self.num_blocks, lba, buf.len())?;
        self.charge();
        for i in 0..blocks {
            let dst = &mut buf[(i as usize) * BLOCK_SIZE..][..BLOCK_SIZE];
            match self.blocks.get(&(lba + i)) {
                Some(data) => dst.copy_from_slice(&data[..]),
                None => dst.fill(0),
            }
        }
        self.reads += 1;
        Ok(())
    }

    fn write_blocks(&mut self, lba: u64, buf: &[u8]) -> Result<(), IoError> {
        let blocks = check_request(self.num_blocks, lba, buf.len())?;
        self.charge();
        for i in 0..blocks {
            let src = &buf[(i as usize) * BLOCK_SIZE..][..BLOCK_SIZE];
            let mut block = Box::new([0u8; BLOCK_SIZE]);
            block.copy_from_slice(src);
            self.blocks.insert(lba + i, block);
        }
        self.writes += 1;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), IoError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_multiblock() {
        let mut d = MemDisk::new(64);
        let data: Vec<u8> = (0..BLOCK_SIZE * 3).map(|i| (i % 251) as u8).collect();
        d.write_blocks(10, &data).unwrap();
        let mut out = vec![0u8; BLOCK_SIZE * 3];
        d.read_blocks(10, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(d.blocks_touched(), 3);
        assert_eq!((d.reads(), d.writes()), (1, 1));
    }

    #[test]
    fn unwritten_blocks_are_zero() {
        let mut d = MemDisk::new(8);
        let mut buf = vec![0xFFu8; BLOCK_SIZE];
        d.read_blocks(3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn request_validation() {
        let mut d = MemDisk::new(4);
        let mut small = vec![0u8; 100];
        assert_eq!(
            d.read_blocks(0, &mut small).unwrap_err(),
            IoError::InvalidRequest
        );
        let mut big = vec![0u8; BLOCK_SIZE * 5];
        assert_eq!(d.read_blocks(0, &mut big).unwrap_err(), IoError::OutOfRange);
        assert_eq!(
            d.write_blocks(4, &vec![0u8; BLOCK_SIZE]).unwrap_err(),
            IoError::OutOfRange
        );
    }

    #[test]
    fn latency_charged_per_request() {
        let clock = Clock::new();
        let mut d = MemDisk::with_latency(16, clock.clone(), SimDuration::from_micros(100));
        let buf = vec![0u8; BLOCK_SIZE];
        d.write_blocks(0, &buf).unwrap();
        d.write_blocks(1, &buf).unwrap();
        d.flush().unwrap();
        assert_eq!(clock.now().as_nanos(), 200_000);
    }

    #[test]
    fn capacity_derived_from_blocks() {
        let d = MemDisk::new(100);
        assert_eq!(d.capacity_bytes(), 51_200);
    }

    proptest! {
        /// Whatever is written most recently is what reads back.
        #[test]
        fn last_write_wins(ops in proptest::collection::vec((0u64..32, 0u8..255), 1..50)) {
            let mut d = MemDisk::new(32);
            let mut model = std::collections::HashMap::new();
            for (lba, fill) in ops {
                let buf = vec![fill; BLOCK_SIZE];
                d.write_blocks(lba, &buf).unwrap();
                model.insert(lba, fill);
            }
            for (lba, fill) in model {
                let mut out = vec![0u8; BLOCK_SIZE];
                d.read_blocks(lba, &mut out).unwrap();
                prop_assert!(out.iter().all(|&b| b == fill));
            }
        }
    }
}
