//! Seeded, composable chaos injection for block devices.
//!
//! [`FaultInjector`](crate::FaultInjector) covers *scripted* failures
//! (fail request N, fail a block range); real drives under acoustic
//! stress misbehave *probabilistically* — bursts of medium errors while
//! the head is off-track, the occasional flipped bit, a write that only
//! partially lands, a seek that puts data on the wrong track, service
//! times stretched by retries. [`ChaosInjector`] wraps any
//! [`BlockDevice`] and draws those faults from a forked [`SimRng`], so a
//! chaos campaign is exactly as reproducible as everything else in the
//! workspace: same seed, same faults, same trace.
//!
//! Fault taxonomy (one injected fault per request, checked in this
//! precedence order; see [`ChaosFault`]):
//!
//! 1. **Error bursts** ([`ErrorBurst`]) — the request fails with the
//!    burst's [`IoError`]; once entered, a burst persists for a seeded
//!    number of requests (mean [`ErrorBurst::mean_burst`]).
//! 2. **Latency inflation** ([`DelayPlan`]) — the device clock is
//!    advanced by `extra` before serving; combines with faults below.
//! 3. **Misdirected write** — the payload lands at a nearby wrong LBA
//!    and the request reports success.
//! 4. **Torn write** — only a prefix of the blocks is written; success
//!    is reported.
//! 5. **Bit flips** — per-block probability of one flipped bit, on the
//!    read path (transient: the medium is fine, the transfer lied) or
//!    the write path (persistent: wrong bits hit the platter).
//!
//! All probabilities can be scaled by the wrapped drive's current
//! vibration level ([`ChaosPlan::vibration_boost`]), tying fault rates
//! to the acoustic attack the way the paper observes.

use crate::device::{BlockDevice, BLOCK_SIZE};
use crate::error::IoError;
use deepnote_hdd::VibrationInput;
use deepnote_sim::{Clock, SimDuration, SimRng, SimTime};
use deepnote_telemetry::{Layer, Tracer, Value};
use serde::{Deserialize, Serialize};

/// Which requests a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// Reads, writes, and flushes.
    All,
    /// Read requests only.
    Reads,
    /// Write requests (and flushes) only.
    Writes,
}

impl FaultScope {
    fn covers(self, is_write: bool) -> bool {
        match self {
            FaultScope::All => true,
            FaultScope::Reads => !is_write,
            FaultScope::Writes => is_write,
        }
    }
}

/// A probabilistic burst of request failures.
///
/// Each request outside a burst enters one with probability
/// `enter_per_request` (vibration-scaled); a burst then fails every
/// in-scope request for a seeded length drawn uniformly from
/// `[1, 2 * mean_burst - 1]`. Out-of-scope requests still age the burst
/// (it is device state, not per-request luck).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorBurst {
    /// Probability of entering a burst, per request.
    pub enter_per_request: f64,
    /// Mean burst length in requests (min 1).
    pub mean_burst: u64,
    /// The error returned while the burst lasts.
    pub error: IoError,
    /// Which requests the burst fails.
    pub scope: FaultScope,
}

/// Probabilistic service-time inflation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayPlan {
    /// Probability of inflating one request.
    pub per_request: f64,
    /// Extra time charged to the device clock.
    pub extra: SimDuration,
}

/// The composable chaos recipe for one device.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Transient error bursts, checked in order (first in-scope burst
    /// active on a request decides its error).
    pub bursts: Vec<ErrorBurst>,
    /// Latency inflation.
    pub delay: Option<DelayPlan>,
    /// Per-block probability of a transient bit flip on the read path.
    pub read_flip_per_block: f64,
    /// Per-block probability of a persistent bit flip on the write path.
    pub write_flip_per_block: f64,
    /// Per-request probability a write lands only partially.
    pub torn_write_per_request: f64,
    /// Per-request probability a write lands at a nearby wrong LBA.
    pub misdirect_per_request: f64,
    /// Probability multiplier per g of vibration acceleration: the
    /// effective probability is `p * (1 + vibration_boost * accel_g)`,
    /// clamped to `[0, 1]`. Zero decouples chaos from the attack.
    pub vibration_boost: f64,
}

impl ChaosPlan {
    /// The do-nothing plan (all probabilities zero).
    pub fn quiet() -> Self {
        ChaosPlan::default()
    }

    /// Whether this plan can ever inject anything.
    pub fn is_quiet(&self) -> bool {
        self.bursts.is_empty()
            && self.delay.is_none()
            && self.read_flip_per_block <= 0.0
            && self.write_flip_per_block <= 0.0
            && self.torn_write_per_request <= 0.0
            && self.misdirect_per_request <= 0.0
    }
}

/// The kind of an injected fault, for traces and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosFault {
    /// A burst failed the request with a medium error.
    BurstError,
    /// A burst failed the request with no response at all.
    BurstDrop,
    /// Service time was inflated.
    Delay,
    /// A read returned flipped bits.
    ReadFlip,
    /// A write put flipped bits on the medium.
    WriteFlip,
    /// A write landed only partially.
    TornWrite,
    /// A write landed at the wrong LBA.
    MisdirectedWrite,
}

impl ChaosFault {
    /// Stable name for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            ChaosFault::BurstError => "burst_error",
            ChaosFault::BurstDrop => "burst_drop",
            ChaosFault::Delay => "delay",
            ChaosFault::ReadFlip => "read_flip",
            ChaosFault::WriteFlip => "write_flip",
            ChaosFault::TornWrite => "torn_write",
            ChaosFault::MisdirectedWrite => "misdirected_write",
        }
    }
}

/// One injected fault, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// 0-based request index (reads, writes, and flushes).
    pub request: u64,
    /// What was injected.
    pub fault: ChaosFault,
    /// The LBA the request targeted (0 for flushes).
    pub lba: u64,
}

/// Per-kind injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Requests failed by a medium-error burst.
    pub burst_errors: u64,
    /// Requests failed by a no-response burst.
    pub burst_drops: u64,
    /// Requests with inflated service time.
    pub delays: u64,
    /// Total extra service time injected.
    pub delay_total: SimDuration,
    /// Blocks returned with a flipped bit on read.
    pub read_flips: u64,
    /// Blocks written with a flipped bit.
    pub write_flips: u64,
    /// Writes that landed only partially.
    pub torn_writes: u64,
    /// Writes that landed at the wrong LBA.
    pub misdirected_writes: u64,
}

impl ChaosStats {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.burst_errors
            + self.burst_drops
            + self.delays
            + self.read_flips
            + self.write_flips
            + self.torn_writes
            + self.misdirected_writes
    }

    /// Folds another device's counters into this one (used when a node
    /// retires a drive but the campaign report must keep its history).
    pub fn merge(&mut self, other: &ChaosStats) {
        self.burst_errors += other.burst_errors;
        self.burst_drops += other.burst_drops;
        self.delays += other.delays;
        self.delay_total += other.delay_total;
        self.read_flips += other.read_flips;
        self.write_flips += other.write_flips;
        self.torn_writes += other.torn_writes;
        self.misdirected_writes += other.misdirected_writes;
    }
}

/// Fault-trace events kept per device (the tail is dropped, counters
/// keep counting).
pub const MAX_TRACE_EVENTS: usize = 256;

/// A [`BlockDevice`] wrapper injecting seeded probabilistic faults.
///
/// # Example
///
/// ```
/// use deepnote_blockdev::{
///     BlockDevice, ChaosInjector, ChaosPlan, ErrorBurst, FaultScope, IoError, MemDisk,
/// };
/// use deepnote_sim::SimRng;
///
/// let plan = ChaosPlan {
///     bursts: vec![ErrorBurst {
///         enter_per_request: 1.0, // always in a burst: every request fails
///         mean_burst: 4,
///         error: IoError::NoResponse,
///         scope: FaultScope::All,
///     }],
///     ..ChaosPlan::quiet()
/// };
/// let mut dev = ChaosInjector::new(MemDisk::new(64), plan, SimRng::seeded(7));
/// let buf = vec![0u8; 512];
/// assert!(dev.write_blocks(0, &buf).is_err());
/// assert!(dev.stats().burst_drops >= 1);
/// ```
#[derive(Debug)]
pub struct ChaosInjector<D> {
    inner: D,
    plan: ChaosPlan,
    rng: SimRng,
    clock: Option<Clock>,
    vibration: Option<VibrationInput>,
    burst_left: Vec<u64>,
    requests: u64,
    stats: ChaosStats,
    trace: Vec<ChaosEvent>,
    tracer: Tracer,
    track: u32,
}

impl<D: BlockDevice> ChaosInjector<D> {
    /// Wraps `inner` with `plan`, drawing faults from `rng`.
    pub fn new(inner: D, plan: ChaosPlan, rng: SimRng) -> Self {
        let bursts = plan.bursts.len();
        ChaosInjector {
            inner,
            plan,
            rng,
            clock: None,
            vibration: None,
            burst_left: vec![0; bursts],
            requests: 0,
            stats: ChaosStats::default(),
            trace: Vec::new(),
            tracer: Tracer::disabled(),
            track: 0,
        }
    }

    /// Attaches the clock latency inflation charges time to.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Attaches the vibration input that scales fault probabilities
    /// (usually the wrapped drive's own input).
    pub fn with_vibration(mut self, vibration: VibrationInput) -> Self {
        self.vibration = Some(vibration);
        self
    }

    /// The plan in effect.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Replaces the plan mid-run; active bursts are cancelled.
    pub fn set_plan(&mut self, plan: ChaosPlan) {
        self.burst_left = vec![0; plan.bursts.len()];
        self.plan = plan;
    }

    /// Injection counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Total injected faults (all kinds).
    pub fn injected(&self) -> u64 {
        self.stats.total()
    }

    /// The fault trace, in request order (capped at
    /// [`MAX_TRACE_EVENTS`]).
    pub fn trace(&self) -> &[ChaosEvent] {
        &self.trace
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped device, mutably.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Consumes the injector, returning the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// The vibration-scaled effective probability for base rate `p`.
    fn scaled(&self, p: f64) -> f64 {
        if self.plan.vibration_boost <= 0.0 {
            return p;
        }
        let g = self
            .vibration
            .as_ref()
            .and_then(|v| v.current())
            .map(|s| s.acceleration_g())
            .unwrap_or(0.0);
        (p * (1.0 + self.plan.vibration_boost * g)).min(1.0)
    }

    /// Attaches a tracer; every injected fault becomes a blockdev-layer
    /// instant on `track`, timestamped by the attached clock (the same
    /// clock latency inflation charges), so fault injection and its
    /// mechanical consequences line up on one timeline.
    pub fn set_tracer(&mut self, tracer: Tracer, track: u32) {
        self.tracer = tracer;
        self.track = track;
    }

    fn record(&mut self, fault: ChaosFault, lba: u64) {
        if self.trace.len() < MAX_TRACE_EVENTS {
            self.trace.push(ChaosEvent {
                request: self.requests,
                fault,
                lba,
            });
        }
        if self.tracer.enabled(Layer::Blockdev) {
            let at = self.clock.as_ref().map(Clock::now).unwrap_or(SimTime::ZERO);
            self.tracer.instant(
                Layer::Blockdev,
                self.track,
                "chaos_fault",
                at,
                vec![
                    ("fault", Value::Str(fault.name())),
                    ("lba", Value::U64(lba)),
                    ("request", Value::U64(self.requests)),
                ],
            );
        }
    }

    /// Advances burst state for one request and returns the error of
    /// the first in-scope active burst, if any. RNG consumption is
    /// identical for every request (one entry draw per idle burst), so
    /// the fault sequence is a pure function of the seed and the
    /// request sequence.
    fn burst_fault(&mut self, is_write: bool, lba: u64) -> Option<IoError> {
        let mut fault = None;
        for i in 0..self.plan.bursts.len() {
            let b = self.plan.bursts[i];
            if self.burst_left[i] == 0 {
                let p = self.scaled(b.enter_per_request);
                if self.rng.chance(p) {
                    let mean = b.mean_burst.max(1);
                    self.burst_left[i] = 1 + self.rng.below(2 * mean - 1);
                }
            }
            if self.burst_left[i] > 0 {
                self.burst_left[i] -= 1;
                if fault.is_none() && b.scope.covers(is_write) {
                    fault = Some((i, b.error));
                }
            }
        }
        fault.map(|(i, error)| {
            let drop = matches!(self.plan.bursts[i].error, IoError::NoResponse);
            if drop {
                self.stats.burst_drops += 1;
                self.record(ChaosFault::BurstDrop, lba);
            } else {
                self.stats.burst_errors += 1;
                self.record(ChaosFault::BurstError, lba);
            }
            error
        })
    }

    /// Applies latency inflation for one request.
    fn maybe_delay(&mut self, lba: u64) {
        let Some(d) = self.plan.delay else {
            return;
        };
        let p = self.scaled(d.per_request);
        if !self.rng.chance(p) {
            return;
        }
        if let Some(clock) = &self.clock {
            clock.advance(d.extra);
        }
        self.stats.delays += 1;
        self.stats.delay_total += d.extra;
        self.record(ChaosFault::Delay, lba);
    }

    /// Flips one seeded bit inside the `block`-th 512-byte block of
    /// `buf`.
    fn flip_bit(rng: &mut SimRng, buf: &mut [u8], block: usize) {
        let base = block * BLOCK_SIZE;
        let bit = rng.below((BLOCK_SIZE * 8) as u64) as usize;
        if let Some(byte) = buf.get_mut(base + bit / 8) {
            *byte ^= 1 << (bit % 8);
        }
    }
}

impl<D: BlockDevice> BlockDevice for ChaosInjector<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_blocks(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let fault = self.burst_fault(false, lba);
        self.maybe_delay(lba);
        self.requests += 1;
        if let Some(e) = fault {
            return Err(e);
        }
        self.inner.read_blocks(lba, buf)?;
        let p = self.plan.read_flip_per_block;
        if p > 0.0 {
            let p = self.scaled(p);
            for block in 0..buf.len() / BLOCK_SIZE {
                if self.rng.chance(p) {
                    Self::flip_bit(&mut self.rng, buf, block);
                    self.stats.read_flips += 1;
                    self.record(ChaosFault::ReadFlip, lba + block as u64);
                }
            }
        }
        Ok(())
    }

    fn write_blocks(&mut self, lba: u64, buf: &[u8]) -> Result<(), IoError> {
        let fault = self.burst_fault(true, lba);
        self.maybe_delay(lba);
        self.requests += 1;
        if let Some(e) = fault {
            return Err(e);
        }
        let blocks = (buf.len() / BLOCK_SIZE) as u64;
        // Misdirect: the whole payload lands at a nearby wrong LBA and
        // the request lies about it.
        if self
            .rng
            .chance(self.scaled(self.plan.misdirect_per_request))
        {
            let shift = 1 + self.rng.below(8);
            let back = self.rng.chance(0.5);
            let capacity = self.inner.num_blocks();
            let target = if back {
                lba.saturating_sub(shift)
            } else {
                lba + shift
            };
            let target = target.min(capacity.saturating_sub(blocks));
            self.stats.misdirected_writes += 1;
            self.record(ChaosFault::MisdirectedWrite, target);
            return self.inner.write_blocks(target, buf);
        }
        // Torn: only a prefix of the blocks is written (possibly none),
        // and the request reports success.
        if self
            .rng
            .chance(self.scaled(self.plan.torn_write_per_request))
        {
            let keep = if blocks > 1 {
                1 + self.rng.below(blocks - 1)
            } else {
                0
            };
            self.stats.torn_writes += 1;
            self.record(ChaosFault::TornWrite, lba);
            if keep == 0 {
                return Ok(());
            }
            return self
                .inner
                .write_blocks(lba, &buf[..keep as usize * BLOCK_SIZE]);
        }
        // Persistent flips: corrupt the payload before it hits the
        // medium.
        let p = self.plan.write_flip_per_block;
        if p > 0.0 {
            let p = self.scaled(p);
            let mut corrupted: Option<Vec<u8>> = None;
            for block in 0..blocks as usize {
                if self.rng.chance(p) {
                    let data = corrupted.get_or_insert_with(|| buf.to_vec());
                    Self::flip_bit(&mut self.rng, data, block);
                    self.stats.write_flips += 1;
                    self.record(ChaosFault::WriteFlip, lba + block as u64);
                }
            }
            if let Some(data) = corrupted {
                return self.inner.write_blocks(lba, &data);
            }
        }
        self.inner.write_blocks(lba, buf)
    }

    fn flush(&mut self) -> Result<(), IoError> {
        let fault = self.burst_fault(true, 0);
        self.requests += 1;
        if let Some(e) = fault {
            return Err(e);
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EIO;
    use crate::mem::MemDisk;

    fn medium_burst(p: f64, mean: u64, scope: FaultScope) -> ErrorBurst {
        ErrorBurst {
            enter_per_request: p,
            mean_burst: mean,
            error: IoError::Medium { errno: EIO },
            scope,
        }
    }

    fn dev(plan: ChaosPlan, seed: u64) -> ChaosInjector<MemDisk> {
        ChaosInjector::new(MemDisk::new(64), plan, SimRng::seeded(seed))
    }

    /// Reads the medium directly, bypassing chaos.
    fn raw(d: &mut ChaosInjector<MemDisk>, lba: u64) -> Vec<u8> {
        let mut out = vec![0u8; 512];
        d.inner_mut().read_blocks(lba, &mut out).unwrap();
        out
    }

    #[test]
    fn quiet_plan_is_a_passthrough() {
        let mut d = dev(ChaosPlan::quiet(), 1);
        let buf = vec![0xCD; 512];
        d.write_blocks(3, &buf).unwrap();
        let mut out = vec![0u8; 512];
        d.read_blocks(3, &mut out).unwrap();
        assert_eq!(out, buf);
        assert_eq!(d.injected(), 0);
        assert!(d.trace().is_empty());
    }

    #[test]
    fn bursts_fail_consecutive_requests() {
        let plan = ChaosPlan {
            bursts: vec![medium_burst(0.05, 10, FaultScope::All)],
            ..ChaosPlan::quiet()
        };
        let mut d = dev(plan, 42);
        let buf = vec![0u8; 512];
        let outcomes: Vec<bool> = (0..400).map(|_| d.write_blocks(0, &buf).is_ok()).collect();
        let failures = outcomes.iter().filter(|ok| !**ok).count() as u64;
        assert_eq!(failures, d.stats().burst_errors);
        assert!(failures > 0, "no burst entered in 400 requests at p=0.05");
        // Burstiness: at least one run of >= 3 consecutive failures.
        let longest = outcomes
            .split(|&ok| ok)
            .map(<[bool]>::len)
            .max()
            .unwrap_or(0);
        assert!(longest >= 3, "longest failure run {longest}");
    }

    #[test]
    fn read_scoped_bursts_spare_writes() {
        let plan = ChaosPlan {
            bursts: vec![medium_burst(1.0, 1_000, FaultScope::Reads)],
            ..ChaosPlan::quiet()
        };
        let mut d = dev(plan, 7);
        let buf = vec![0u8; 512];
        let mut out = vec![0u8; 512];
        assert!(d.write_blocks(0, &buf).is_ok());
        assert!(d.read_blocks(0, &mut out).is_err());
        assert!(d.flush().is_ok()); // flush counts as a write
    }

    #[test]
    fn read_flips_corrupt_the_buffer_not_the_medium() {
        let plan = ChaosPlan {
            read_flip_per_block: 1.0,
            ..ChaosPlan::quiet()
        };
        let mut d = dev(plan, 9);
        let buf = vec![0xAA; 512];
        d.write_blocks(5, &buf).unwrap();
        let mut out = vec![0u8; 512];
        d.read_blocks(5, &mut out).unwrap();
        assert_ne!(out, buf, "read flip did not corrupt the transfer");
        assert_eq!(d.stats().read_flips, 1);
        // The medium still holds the clean data.
        assert_eq!(raw(&mut d, 5), buf);
    }

    #[test]
    fn write_flips_are_persistent() {
        let plan = ChaosPlan {
            write_flip_per_block: 1.0,
            ..ChaosPlan::quiet()
        };
        let mut d = dev(plan, 9);
        let buf = vec![0x55; 512];
        d.write_blocks(2, &buf).unwrap();
        assert_eq!(d.stats().write_flips, 1);
        assert_ne!(raw(&mut d, 2), buf, "flip never hit the medium");
    }

    #[test]
    fn torn_writes_keep_only_a_prefix() {
        let plan = ChaosPlan {
            torn_write_per_request: 1.0,
            ..ChaosPlan::quiet()
        };
        let mut d = dev(plan, 3);
        let clean = vec![0x11; 512 * 4];
        assert!(d.write_blocks(0, &clean).is_ok(), "torn writes report ok");
        assert_eq!(d.stats().torn_writes, 1);
        // The tail blocks never landed.
        let torn = raw(&mut d, 3);
        assert_eq!(torn, vec![0u8; 512]);
    }

    #[test]
    fn misdirected_writes_land_elsewhere() {
        let plan = ChaosPlan {
            misdirect_per_request: 1.0,
            ..ChaosPlan::quiet()
        };
        let mut d = dev(plan, 11);
        let buf = vec![0x77; 512];
        assert!(d.write_blocks(30, &buf).is_ok());
        assert_eq!(d.stats().misdirected_writes, 1);
        assert_eq!(raw(&mut d, 30), vec![0u8; 512]);
        let landed = (0..64).filter(|&l| raw(&mut d, l) == buf).count();
        assert_eq!(landed, 1, "payload landed {landed} times");
    }

    #[test]
    fn delay_advances_the_attached_clock() {
        let clock = Clock::new();
        let plan = ChaosPlan {
            delay: Some(DelayPlan {
                per_request: 1.0,
                extra: SimDuration::from_millis(80),
            }),
            ..ChaosPlan::quiet()
        };
        let mut d =
            ChaosInjector::new(MemDisk::new(16), plan, SimRng::seeded(1)).with_clock(clock.clone());
        let buf = vec![0u8; 512];
        d.write_blocks(0, &buf).unwrap();
        assert_eq!(clock.now().as_millis_f64(), 80.0);
        assert_eq!(d.stats().delays, 1);
        assert_eq!(d.stats().delay_total, SimDuration::from_millis(80));
    }

    #[test]
    fn same_seed_same_fault_trace() {
        let plan = ChaosPlan {
            bursts: vec![medium_burst(0.03, 6, FaultScope::All)],
            read_flip_per_block: 0.01,
            write_flip_per_block: 0.01,
            torn_write_per_request: 0.01,
            misdirect_per_request: 0.01,
            ..ChaosPlan::quiet()
        };
        let run = |seed: u64| {
            let mut d = dev(plan.clone(), seed);
            let buf = vec![0xEE; 512 * 2];
            let mut out = vec![0u8; 512 * 2];
            for i in 0..300u64 {
                let _ = d.write_blocks(i % 32, &buf);
                let _ = d.read_blocks(i % 32, &mut out);
            }
            (d.stats(), d.trace().to_vec())
        };
        assert_eq!(run(5), run(5));
        let (a, _) = run(5);
        let (b, _) = run(6);
        assert!(a.total() > 0);
        assert_ne!((a, 0), (b, 0), "different seeds produced identical chaos");
    }

    #[test]
    fn trace_is_capped_but_counters_keep_counting() {
        let plan = ChaosPlan {
            bursts: vec![medium_burst(1.0, 1_000_000, FaultScope::All)],
            ..ChaosPlan::quiet()
        };
        let mut d = dev(plan, 2);
        let buf = vec![0u8; 512];
        for _ in 0..(MAX_TRACE_EVENTS + 50) {
            let _ = d.write_blocks(0, &buf);
        }
        assert_eq!(d.trace().len(), MAX_TRACE_EVENTS);
        assert!(d.injected() > MAX_TRACE_EVENTS as u64);
    }

    #[test]
    fn vibration_boost_raises_fault_rates() {
        use deepnote_acoustics::Frequency;
        use deepnote_hdd::VibrationState;
        let count_failures = |vibrate: bool| {
            let plan = ChaosPlan {
                bursts: vec![medium_burst(0.002, 3, FaultScope::All)],
                vibration_boost: 2.0,
                ..ChaosPlan::quiet()
            };
            let vib = VibrationInput::quiescent();
            if vibrate {
                vib.set(Some(VibrationState::new(Frequency::from_hz(650.0), 5.0)));
            }
            let mut d =
                ChaosInjector::new(MemDisk::new(16), plan, SimRng::seeded(77)).with_vibration(vib);
            let buf = vec![0u8; 512];
            (0..2_000)
                .filter(|_| d.write_blocks(0, &buf).is_err())
                .count()
        };
        let quiet = count_failures(false);
        let shaking = count_failures(true);
        assert!(
            shaking > quiet * 3,
            "vibration did not raise fault rate: quiet {quiet}, shaking {shaking}"
        );
    }
}
