//! Block-layer I/O errors.
//!
//! Errors carry Linux-style errno values so the filesystem and OS layers
//! can reproduce the paper's observed failure messages (JBD aborting with
//! error −5, buffer I/O errors in dmesg).

use deepnote_hdd::DriveError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Linux `EIO` (−5 in kernel error convention).
pub const EIO: i32 = 5;

/// A block-layer I/O failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoError {
    /// A medium error: the device reported it could not complete the
    /// transfer. Carries the errno (positive convention, e.g. [`EIO`]).
    Medium {
        /// Positive errno value.
        errno: i32,
    },
    /// The device did not answer within its deadline — the "no response"
    /// rows of the paper's Table 1.
    NoResponse,
    /// Request beyond the end of the device.
    OutOfRange,
    /// Malformed request (zero length, misaligned buffer).
    InvalidRequest,
}

impl IoError {
    /// The conventional kernel error code (negative), e.g. −5 for EIO.
    /// `NoResponse` also surfaces as −5: a timed-out request is failed
    /// with EIO by the kernel block layer.
    pub fn kernel_code(&self) -> i32 {
        match self {
            IoError::Medium { errno } => -errno,
            IoError::NoResponse => -EIO,
            IoError::OutOfRange => -5,
            IoError::InvalidRequest => -22, // -EINVAL
        }
    }

    /// Whether this failure means the device is (temporarily) not serving
    /// requests at all, as opposed to failing a specific sector.
    pub fn is_unresponsive(&self) -> bool {
        matches!(self, IoError::NoResponse)
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Medium { errno } => write!(f, "I/O error (errno {errno})"),
            IoError::NoResponse => write!(f, "device not responding"),
            IoError::OutOfRange => write!(f, "request beyond end of device"),
            IoError::InvalidRequest => write!(f, "invalid request"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<DriveError> for IoError {
    fn from(e: DriveError) -> Self {
        match e {
            DriveError::Unresponsive { .. } | DriveError::HeadsParked => IoError::NoResponse,
            DriveError::OutOfRange => IoError::OutOfRange,
            DriveError::EmptyOp => IoError::InvalidRequest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_codes_match_linux_convention() {
        assert_eq!(IoError::Medium { errno: EIO }.kernel_code(), -5);
        assert_eq!(IoError::NoResponse.kernel_code(), -5);
        assert_eq!(IoError::InvalidRequest.kernel_code(), -22);
    }

    #[test]
    fn drive_errors_map_to_io_errors() {
        assert_eq!(
            IoError::from(DriveError::Unresponsive { after_ms_x1000: 1 }),
            IoError::NoResponse
        );
        assert_eq!(IoError::from(DriveError::HeadsParked), IoError::NoResponse);
        assert_eq!(IoError::from(DriveError::OutOfRange), IoError::OutOfRange);
        assert_eq!(IoError::from(DriveError::EmptyOp), IoError::InvalidRequest);
    }

    #[test]
    fn unresponsive_flag() {
        assert!(IoError::NoResponse.is_unresponsive());
        assert!(!IoError::Medium { errno: EIO }.is_unresponsive());
    }

    #[test]
    fn display_messages() {
        assert_eq!(IoError::NoResponse.to_string(), "device not responding");
        assert_eq!(
            IoError::Medium { errno: 5 }.to_string(),
            "I/O error (errno 5)"
        );
    }
}
