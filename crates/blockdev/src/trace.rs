//! Request tracing.
//!
//! [`TraceDevice`] wraps any device and records every request — time,
//! kind, LBA, length, outcome — into a bounded ring. Tests use it to
//! assert *I/O properties* rather than just outcomes: that journal
//! records are written as one contiguous request, that sequential
//! workloads stay sequential, that failed requests cluster under attack.

use crate::device::{BlockDevice, BLOCK_SIZE};
use crate::error::IoError;
use deepnote_sim::{Clock, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The kind of a traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
    /// A flush.
    Flush,
}

/// One traced request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the request was issued.
    pub at: SimTime,
    /// Request kind.
    pub kind: TraceKind,
    /// Starting block (0 for flushes).
    pub lba: u64,
    /// Blocks covered (0 for flushes).
    pub blocks: u64,
    /// The error, if the request failed.
    pub error: Option<IoError>,
}

/// A tracing wrapper around any block device.
///
/// # Example
///
/// ```
/// use deepnote_blockdev::{BlockDevice, MemDisk, TraceDevice, TraceKind};
/// use deepnote_sim::Clock;
///
/// let mut dev = TraceDevice::new(MemDisk::new(64), Clock::new(), 100);
/// dev.write_blocks(4, &vec![0u8; 1024])?;
/// let trace = dev.trace();
/// assert_eq!(trace[0].kind, TraceKind::Write);
/// assert_eq!((trace[0].lba, trace[0].blocks), (4, 2));
/// # Ok::<(), deepnote_blockdev::IoError>(())
/// ```
#[derive(Debug)]
pub struct TraceDevice<D> {
    inner: D,
    clock: Clock,
    ring: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl<D: BlockDevice> TraceDevice<D> {
    /// Wraps `inner`, retaining the most recent `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(inner: D, clock: Clock, capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceDevice {
            inner,
            clock,
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    fn record(&mut self, kind: TraceKind, lba: u64, blocks: u64, error: Option<IoError>) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEntry {
            at: self.clock.now(),
            kind,
            lba,
            blocks,
            error,
        });
    }

    /// The retained trace, oldest first.
    pub fn trace(&self) -> Vec<TraceEntry> {
        self.ring.iter().cloned().collect()
    }

    /// Entries evicted because the ring filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the trace (keeps the device).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Mutable access to the wrapped device.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// The fraction of traced write requests that continue exactly where
    /// the previous write ended (sequentiality), or `None` with fewer
    /// than two writes.
    pub fn write_sequentiality(&self) -> Option<f64> {
        let writes: Vec<&TraceEntry> = self
            .ring
            .iter()
            .filter(|e| e.kind == TraceKind::Write)
            .collect();
        if writes.len() < 2 {
            return None;
        }
        let sequential = writes
            .windows(2)
            .filter(|w| w[0].lba + w[0].blocks == w[1].lba)
            .count();
        Some(sequential as f64 / (writes.len() - 1) as f64)
    }
}

impl<D: BlockDevice> BlockDevice for TraceDevice<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_blocks(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let blocks = (buf.len() / BLOCK_SIZE) as u64;
        let result = self.inner.read_blocks(lba, buf);
        self.record(TraceKind::Read, lba, blocks, result.err());
        result
    }

    fn write_blocks(&mut self, lba: u64, buf: &[u8]) -> Result<(), IoError> {
        let blocks = (buf.len() / BLOCK_SIZE) as u64;
        let result = self.inner.write_blocks(lba, buf);
        self.record(TraceKind::Write, lba, blocks, result.err());
        result
    }

    fn flush(&mut self) -> Result<(), IoError> {
        let result = self.inner.flush();
        self.record(TraceKind::Flush, 0, 0, result.err());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultInjector, FaultPlan};
    use crate::mem::MemDisk;

    #[test]
    fn records_kind_lba_and_outcome() {
        let mut dev = TraceDevice::new(
            FaultInjector::new(MemDisk::new(64), FaultPlan::None),
            Clock::new(),
            16,
        );
        let buf = vec![0u8; 512];
        let mut out = vec![0u8; 512];
        dev.write_blocks(1, &buf).unwrap();
        dev.read_blocks(1, &mut out).unwrap();
        dev.flush().unwrap();
        dev.inner_mut().set_plan(FaultPlan::FailFrom {
            start: 0,
            error: IoError::NoResponse,
        });
        let _ = dev.write_blocks(2, &buf);
        let t = dev.trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].kind, TraceKind::Write);
        assert_eq!(t[1].kind, TraceKind::Read);
        assert_eq!(t[2].kind, TraceKind::Flush);
        assert_eq!(t[3].error, Some(IoError::NoResponse));
    }

    #[test]
    fn ring_is_bounded() {
        let mut dev = TraceDevice::new(MemDisk::new(64), Clock::new(), 3);
        let buf = vec![0u8; 512];
        for i in 0..5 {
            dev.write_blocks(i, &buf).unwrap();
        }
        assert_eq!(dev.trace().len(), 3);
        assert_eq!(dev.dropped(), 2);
        assert_eq!(dev.trace()[0].lba, 2); // oldest retained
        dev.clear();
        assert!(dev.trace().is_empty());
    }

    #[test]
    fn sequentiality_metric() {
        let mut dev = TraceDevice::new(MemDisk::new(1024), Clock::new(), 100);
        let buf = vec![0u8; 512];
        for i in 0..10 {
            dev.write_blocks(i, &buf).unwrap();
        }
        assert_eq!(dev.write_sequentiality(), Some(1.0));
        dev.write_blocks(500, &buf).unwrap();
        assert!(dev.write_sequentiality().unwrap() < 1.0);
        let empty = TraceDevice::new(MemDisk::new(8), Clock::new(), 4);
        assert_eq!(empty.write_sequentiality(), None);
    }
}
