//! RAID-1 mirroring.
//!
//! An underwater data-center operator's first instinct against an
//! availability attack is redundancy. [`Raid1`] mirrors writes across N
//! devices, serves reads from the first healthy mirror, drops mirrors
//! that fail, and can resync a reinstated mirror from the write log kept
//! while it was out. The core crate's redundancy experiment shows the
//! catch: mirrors in the *same* enclosure die together.

use crate::device::{check_request, BlockDevice, BLOCK_SIZE};
use crate::error::IoError;
use std::collections::BTreeSet;

/// Array health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaidState {
    /// All mirrors healthy.
    Optimal,
    /// Some mirrors failed; data is still served.
    Degraded {
        /// Number of failed mirrors.
        failed: usize,
    },
    /// Every mirror failed; the array is dead.
    Failed,
}

/// An N-way RAID-1 mirror over homogeneous devices.
///
/// # Example
///
/// ```
/// use deepnote_blockdev::{BlockDevice, MemDisk, Raid1, RaidState};
///
/// let mut array = Raid1::new(vec![MemDisk::new(1024), MemDisk::new(1024)]);
/// array.write_blocks(0, &vec![7u8; 512])?;
/// assert_eq!(array.state(), RaidState::Optimal);
/// # Ok::<(), deepnote_blockdev::IoError>(())
/// ```
#[derive(Debug)]
pub struct Raid1<D> {
    mirrors: Vec<D>,
    failed: Vec<bool>,
    /// Blocks written while any mirror was failed (needed for resync).
    dirty_since_failure: BTreeSet<u64>,
    writes_while_degraded: u64,
}

impl<D: BlockDevice> Raid1<D> {
    /// Builds an array from at least two equal-sized mirrors.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two mirrors or mismatched sizes.
    pub fn new(mirrors: Vec<D>) -> Self {
        assert!(mirrors.len() >= 2, "RAID-1 needs at least two mirrors");
        let n = mirrors[0].num_blocks();
        assert!(
            mirrors.iter().all(|m| m.num_blocks() == n),
            "all mirrors must be the same size"
        );
        let count = mirrors.len();
        Raid1 {
            mirrors,
            failed: vec![false; count],
            dirty_since_failure: BTreeSet::new(),
            writes_while_degraded: 0,
        }
    }

    /// Number of mirrors (healthy + failed).
    pub fn mirror_count(&self) -> usize {
        self.mirrors.len()
    }

    /// Current array health.
    pub fn state(&self) -> RaidState {
        let failed = self.failed.iter().filter(|&&f| f).count();
        if failed == 0 {
            RaidState::Optimal
        } else if failed == self.mirrors.len() {
            RaidState::Failed
        } else {
            RaidState::Degraded { failed }
        }
    }

    /// Whether mirror `idx` is marked failed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn mirror_failed(&self, idx: usize) -> bool {
        self.failed[idx]
    }

    /// Access a mirror (e.g. to wire an attack to its vibration input).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn mirror(&self, idx: usize) -> &D {
        &self.mirrors[idx]
    }

    /// Mutable access to a mirror.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn mirror_mut(&mut self, idx: usize) -> &mut D {
        &mut self.mirrors[idx]
    }

    /// Writes performed while the array was degraded.
    pub fn writes_while_degraded(&self) -> u64 {
        self.writes_while_degraded
    }

    /// Resyncs a previously failed mirror from a healthy one by copying
    /// every block written since the failure, then reinstates it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the copy; the mirror stays failed on
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn resync(&mut self, idx: usize) -> Result<u64, IoError> {
        assert!(idx < self.mirrors.len(), "mirror index out of range");
        if !self.failed[idx] {
            return Ok(0);
        }
        let Some(source) = self.failed.iter().position(|&f| !f) else {
            // Every mirror is failed. Nothing diverged if nothing was
            // written while degraded: reinstate in place. Otherwise the
            // array is unrecoverable without an external copy.
            if self.dirty_since_failure.is_empty() {
                self.failed[idx] = false;
                return Ok(0);
            }
            return Err(IoError::NoResponse);
        };
        let blocks: Vec<u64> = self.dirty_since_failure.iter().copied().collect();
        let mut copied = 0;
        let mut buf = vec![0u8; BLOCK_SIZE];
        for block in blocks {
            // Split-borrow via indices.
            {
                let src = &mut self.mirrors[source];
                src.read_blocks(block, &mut buf)?;
            }
            {
                let dst = &mut self.mirrors[idx];
                dst.write_blocks(block, &buf)?;
            }
            copied += 1;
        }
        self.failed[idx] = false;
        if self.state() == RaidState::Optimal {
            self.dirty_since_failure.clear();
        }
        Ok(copied)
    }
}

impl<D: BlockDevice> BlockDevice for Raid1<D> {
    fn num_blocks(&self) -> u64 {
        self.mirrors[0].num_blocks()
    }

    fn read_blocks(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), IoError> {
        check_request(self.num_blocks(), lba, buf.len())?;
        let mut last_err = IoError::NoResponse;
        for i in 0..self.mirrors.len() {
            if self.failed[i] {
                continue;
            }
            match self.mirrors[i].read_blocks(lba, buf) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.failed[i] = true;
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    fn write_blocks(&mut self, lba: u64, buf: &[u8]) -> Result<(), IoError> {
        let blocks = check_request(self.num_blocks(), lba, buf.len())?;
        let mut any_ok = false;
        let mut last_err = IoError::NoResponse;
        for i in 0..self.mirrors.len() {
            if self.failed[i] {
                continue;
            }
            match self.mirrors[i].write_blocks(lba, buf) {
                Ok(()) => any_ok = true,
                Err(e) => {
                    self.failed[i] = true;
                    last_err = e;
                }
            }
        }
        if any_ok {
            if self.state() != RaidState::Optimal {
                self.writes_while_degraded += 1;
                for b in lba..lba + blocks {
                    self.dirty_since_failure.insert(b);
                }
            }
            Ok(())
        } else {
            Err(last_err)
        }
    }

    fn flush(&mut self) -> Result<(), IoError> {
        let mut any_ok = false;
        for i in 0..self.mirrors.len() {
            if !self.failed[i] && self.mirrors[i].flush().is_ok() {
                any_ok = true;
            }
        }
        if any_ok {
            Ok(())
        } else {
            Err(IoError::NoResponse)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultInjector, FaultPlan};
    use crate::mem::MemDisk;

    fn array() -> Raid1<FaultInjector<MemDisk>> {
        Raid1::new(vec![
            FaultInjector::new(MemDisk::new(256), FaultPlan::None),
            FaultInjector::new(MemDisk::new(256), FaultPlan::None),
        ])
    }

    #[test]
    fn mirrors_stay_in_sync() {
        let mut a = array();
        let data = vec![0x42u8; 512];
        a.write_blocks(3, &data).unwrap();
        let mut from0 = vec![0u8; 512];
        let mut from1 = vec![0u8; 512];
        a.mirror_mut(0).read_blocks(3, &mut from0).unwrap();
        a.mirror_mut(1).read_blocks(3, &mut from1).unwrap();
        assert_eq!(from0, data);
        assert_eq!(from1, data);
        assert_eq!(a.state(), RaidState::Optimal);
    }

    #[test]
    fn one_dead_mirror_degrades_but_serves() {
        let mut a = array();
        a.write_blocks(0, &vec![1u8; 512]).unwrap();
        a.mirror_mut(0).set_plan(FaultPlan::FailFrom {
            start: 0,
            error: IoError::NoResponse,
        });
        // Write marks mirror 0 failed, succeeds on mirror 1.
        a.write_blocks(1, &vec![2u8; 512]).unwrap();
        assert_eq!(a.state(), RaidState::Degraded { failed: 1 });
        assert_eq!(a.writes_while_degraded(), 1);
        let mut out = vec![0u8; 512];
        a.read_blocks(1, &mut out).unwrap();
        assert_eq!(out, vec![2u8; 512]);
    }

    #[test]
    fn all_mirrors_dead_fails_the_array() {
        let mut a = array();
        for i in 0..2 {
            a.mirror_mut(i).set_plan(FaultPlan::FailFrom {
                start: 0,
                error: IoError::NoResponse,
            });
        }
        assert_eq!(
            a.write_blocks(0, &vec![0u8; 512]).unwrap_err(),
            IoError::NoResponse
        );
        assert_eq!(a.state(), RaidState::Failed);
    }

    #[test]
    fn read_falls_back_when_primary_dies() {
        let mut a = array();
        a.write_blocks(5, &vec![9u8; 512]).unwrap();
        a.mirror_mut(0).set_plan(FaultPlan::FailFrom {
            start: 0,
            error: IoError::Medium { errno: 5 },
        });
        let mut out = vec![0u8; 512];
        a.read_blocks(5, &mut out).unwrap();
        assert_eq!(out, vec![9u8; 512]);
        assert!(a.mirror_failed(0));
    }

    #[test]
    fn resync_copies_only_degraded_writes() {
        let mut a = array();
        a.write_blocks(0, &vec![1u8; 512]).unwrap();
        a.mirror_mut(0).set_plan(FaultPlan::FailFrom {
            start: 0,
            error: IoError::NoResponse,
        });
        a.write_blocks(1, &vec![2u8; 512]).unwrap(); // degrades + dirty {1}
        a.write_blocks(2, &vec![3u8; 512]).unwrap(); // dirty {1,2}
                                                     // Attack ends: the mirror works again.
        a.mirror_mut(0).set_plan(FaultPlan::None);
        let copied = a.resync(0).unwrap();
        assert_eq!(copied, 2);
        assert_eq!(a.state(), RaidState::Optimal);
        // Mirror 0 now has the degraded-era writes.
        let mut out = vec![0u8; 512];
        a.mirror_mut(0).read_blocks(2, &mut out).unwrap();
        assert_eq!(out, vec![3u8; 512]);
        // Resync of a healthy mirror is a no-op.
        assert_eq!(a.resync(1).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_mirror_rejected() {
        let _ = Raid1::new(vec![MemDisk::new(16)]);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_sizes_rejected() {
        let _ = Raid1::new(vec![MemDisk::new(16), MemDisk::new(32)]);
    }
}
