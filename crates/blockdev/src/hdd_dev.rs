//! The vibration-aware HDD block device.
//!
//! [`HddDisk`] pairs a sparse byte store with the mechanical
//! [`HardDiskDrive`] model: every request is timed (and possibly failed)
//! by the drive, so anything running on top — filesystem, database,
//! benchmark — experiences the acoustic attack exactly as the drive does.

use crate::device::{check_request, BlockDevice, BLOCK_SIZE};
use crate::error::IoError;
use deepnote_acoustics::{OperatingPoint, TransferPathTable};
use deepnote_hdd::{DiskOp, HardDiskDrive, VibrationInput};
use deepnote_sim::{Clock, SimTime};
use deepnote_telemetry::{Layer, Tracer, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A block device backed by the mechanical drive model.
///
/// # Example
///
/// ```
/// use deepnote_blockdev::{BlockDevice, HddDisk};
/// use deepnote_sim::Clock;
///
/// let clock = Clock::new();
/// let mut disk = HddDisk::barracuda_500gb(clock.clone());
/// let buf = vec![7u8; 4096];
/// disk.write_blocks(0, &buf)?;
/// assert!(clock.now().as_nanos() > 0); // the op took mechanical time
/// # Ok::<(), deepnote_blockdev::IoError>(())
/// ```
#[derive(Debug)]
pub struct HddDisk {
    drive: HardDiskDrive,
    blocks: BTreeMap<u64, Box<[u8; BLOCK_SIZE]>>,
    read_errors: u64,
    write_errors: u64,
    tracer: Tracer,
    track: u32,
    /// Precomputed servo residuals for steady-state tones, plus the
    /// operating-point template (distance/water/context of this disk's
    /// position) the lookup key is minted from. See
    /// [`HddDisk::set_transfer_cache`].
    transfer: Option<(Arc<TransferPathTable<f64>>, OperatingPoint)>,
}

impl HddDisk {
    /// Wraps an existing drive.
    pub fn new(drive: HardDiskDrive) -> Self {
        HddDisk {
            drive,
            blocks: BTreeMap::new(),
            read_errors: 0,
            write_errors: 0,
            tracer: Tracer::disabled(),
            track: 0,
            transfer: None,
        }
    }

    /// The paper's Barracuda on the given clock.
    pub fn barracuda_500gb(clock: Clock) -> Self {
        HddDisk::new(HardDiskDrive::barracuda_500gb(clock))
    }

    /// A nearline enterprise drive with RV compensation (§5 "HDD types").
    pub fn nearline_4tb(clock: Clock) -> Self {
        HddDisk::new(HardDiskDrive::nearline_4tb(clock))
    }

    /// The underlying mechanical drive.
    pub fn drive(&self) -> &HardDiskDrive {
        &self.drive
    }

    /// Mutable access to the underlying drive (e.g. to swap the servo).
    pub fn drive_mut(&mut self) -> &mut HardDiskDrive {
        &mut self.drive
    }

    /// The drive's vibration input — clone this to mount the attack.
    pub fn vibration(&self) -> VibrationInput {
        self.drive.vibration().clone()
    }

    /// Failed read requests so far.
    pub fn read_errors(&self) -> u64 {
        self.read_errors
    }

    /// Failed write requests so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Attaches a tracer; events carry `track` (the owning node's id).
    /// Degraded I/O (retries, errors) lands on the `hdd` layer, request
    /// failures on the `blockdev` layer. Timestamps are this device's
    /// private clock; the node's dispatch offset maps them onto the
    /// cluster timeline.
    pub fn set_tracer(&mut self, tracer: Tracer, track: u32) {
        self.tracer = tracer;
        self.track = track;
    }

    /// Installs a precomputed servo-residual table for this disk's
    /// position. `at` is the operating-point template (the disk's
    /// distance, water, and context); lookups substitute the current
    /// vibration's frequency into it. Trace annotations then answer
    /// steady-state tones from the table instead of re-walking the
    /// servo response per traced op — with a bit-identical fallback on
    /// misses, so traces are unchanged either way.
    pub fn set_transfer_cache(&mut self, table: Arc<TransferPathTable<f64>>, at: OperatingPoint) {
        self.transfer = Some((table, at));
    }

    /// Residual off-track (nm) under the current vibration: cached for
    /// precomputed tones, recomputed otherwise, `0.0` when quiescent.
    pub fn residual_offtrack_nm(&self) -> f64 {
        let Some(v) = self.drive.vibration().current() else {
            return 0.0;
        };
        match &self.transfer {
            Some((table, at)) => self.drive.servo().residual_offtrack_cached(
                table,
                &at.with_frequency(v.frequency()),
                &v,
            ),
            None => self.drive.servo().residual_offtrack_nm(&v),
        }
    }

    /// One degraded or failed mechanical op, as an hdd-layer span from
    /// dispatch to completion with the servo state that explains it.
    fn trace_io(&self, op: &'static str, t0: SimTime, retries: u64, outcome: &'static str) {
        if !self.tracer.enabled(Layer::Hdd) {
            return;
        }
        let now = self.drive.clock().now();
        let offtrack_nm = self.residual_offtrack_nm();
        self.tracer.span(
            Layer::Hdd,
            self.track,
            "degraded_io",
            t0,
            now.saturating_duration_since(t0),
            vec![
                ("op", Value::Str(op)),
                ("outcome", Value::Str(outcome)),
                ("retries", Value::U64(retries)),
                ("offtrack_nm", Value::F64(offtrack_nm)),
            ],
        );
    }

    /// A blockdev-layer instant for a request the drive failed.
    fn trace_error(&self, op: &'static str, lba: u64, error: IoError) {
        if !self.tracer.enabled(Layer::Blockdev) {
            return;
        }
        self.tracer.instant(
            Layer::Blockdev,
            self.track,
            "io_error",
            self.drive.clock().now(),
            vec![
                ("op", Value::Str(op)),
                ("lba", Value::U64(lba)),
                ("error", Value::Text(format!("{error:?}"))),
            ],
        );
    }
}

impl BlockDevice for HddDisk {
    fn num_blocks(&self) -> u64 {
        self.drive.geometry().total_sectors()
    }

    fn read_blocks(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let blocks = check_request(self.num_blocks(), lba, buf.len())?;
        let t0 = self.drive.clock().now();
        match self.drive.execute(DiskOp::read(lba, blocks)) {
            Ok(report) => {
                if report.retries > 0 {
                    self.trace_io("read", t0, u64::from(report.retries), "recovered");
                }
            }
            Err(e) => {
                self.read_errors += 1;
                self.trace_io("read", t0, 0, "error");
                let io: IoError = e.into();
                self.trace_error("read", lba, io);
                return Err(io);
            }
        }
        for i in 0..blocks {
            let dst = &mut buf[(i as usize) * BLOCK_SIZE..][..BLOCK_SIZE];
            match self.blocks.get(&(lba + i)) {
                Some(data) => dst.copy_from_slice(&data[..]),
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    fn write_blocks(&mut self, lba: u64, buf: &[u8]) -> Result<(), IoError> {
        let blocks = check_request(self.num_blocks(), lba, buf.len())?;
        let t0 = self.drive.clock().now();
        match self.drive.execute(DiskOp::write(lba, blocks)) {
            Ok(report) => {
                if report.retries > 0 {
                    self.trace_io("write", t0, u64::from(report.retries), "recovered");
                }
            }
            Err(e) => {
                self.write_errors += 1;
                self.trace_io("write", t0, 0, "error");
                let io: IoError = e.into();
                self.trace_error("write", lba, io);
                return Err(io);
            }
        }
        for i in 0..blocks {
            let src = &buf[(i as usize) * BLOCK_SIZE..][..BLOCK_SIZE];
            let mut block = Box::new([0u8; BLOCK_SIZE]);
            block.copy_from_slice(src);
            self.blocks.insert(lba + i, block);
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), IoError> {
        // The model writes through; a flush is a (fast) no-op command.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::Frequency;
    use deepnote_hdd::VibrationState;

    #[test]
    fn roundtrip_and_mechanical_time() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock.clone());
        let data = vec![0x5Au8; 4096];
        disk.write_blocks(100, &data).unwrap();
        let mut out = vec![0u8; 4096];
        disk.read_blocks(100, &mut out).unwrap();
        assert_eq!(out, data);
        // Both ops paid command overhead (~0.2 ms each) plus a seek for
        // the first op's positioning.
        assert!(clock.now().as_millis_f64() >= 0.3, "t = {}", clock.now());
    }

    #[test]
    fn unwritten_reads_zero() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock);
        let mut out = vec![0xFFu8; 512];
        disk.read_blocks(42, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn attack_makes_device_unresponsive() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock);
        disk.vibration()
            .set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.5)));
        let buf = vec![0u8; 4096];
        assert_eq!(disk.write_blocks(0, &buf).unwrap_err(), IoError::NoResponse);
        assert_eq!(disk.write_errors(), 1);
        // Stop the attack: the device recovers.
        disk.vibration().clear();
        assert!(disk.write_blocks(0, &buf).is_ok());
    }

    #[test]
    fn data_not_modified_by_failed_write() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock);
        let original = vec![1u8; 512];
        disk.write_blocks(5, &original).unwrap();
        disk.vibration()
            .set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.5)));
        assert!(disk.write_blocks(5, &vec![2u8; 512]).is_err());
        disk.vibration().clear();
        let mut out = vec![0u8; 512];
        disk.read_blocks(5, &mut out).unwrap();
        assert_eq!(out, original);
    }

    #[test]
    fn out_of_range_detected_before_mechanics() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock.clone());
        let n = disk.num_blocks();
        let t0 = clock.now();
        assert_eq!(
            disk.write_blocks(n, &vec![0u8; 512]).unwrap_err(),
            IoError::OutOfRange
        );
        assert_eq!(clock.now(), t0);
    }
}
