//! The vibration-aware HDD block device.
//!
//! [`HddDisk`] pairs a sparse byte store with the mechanical
//! [`HardDiskDrive`] model: every request is timed (and possibly failed)
//! by the drive, so anything running on top — filesystem, database,
//! benchmark — experiences the acoustic attack exactly as the drive does.

use crate::device::{check_request, BlockDevice, BLOCK_SIZE};
use crate::error::IoError;
use deepnote_hdd::{DiskOp, HardDiskDrive, VibrationInput};
use deepnote_sim::Clock;
use std::collections::BTreeMap;

/// A block device backed by the mechanical drive model.
///
/// # Example
///
/// ```
/// use deepnote_blockdev::{BlockDevice, HddDisk};
/// use deepnote_sim::Clock;
///
/// let clock = Clock::new();
/// let mut disk = HddDisk::barracuda_500gb(clock.clone());
/// let buf = vec![7u8; 4096];
/// disk.write_blocks(0, &buf)?;
/// assert!(clock.now().as_nanos() > 0); // the op took mechanical time
/// # Ok::<(), deepnote_blockdev::IoError>(())
/// ```
#[derive(Debug)]
pub struct HddDisk {
    drive: HardDiskDrive,
    blocks: BTreeMap<u64, Box<[u8; BLOCK_SIZE]>>,
    read_errors: u64,
    write_errors: u64,
}

impl HddDisk {
    /// Wraps an existing drive.
    pub fn new(drive: HardDiskDrive) -> Self {
        HddDisk {
            drive,
            blocks: BTreeMap::new(),
            read_errors: 0,
            write_errors: 0,
        }
    }

    /// The paper's Barracuda on the given clock.
    pub fn barracuda_500gb(clock: Clock) -> Self {
        HddDisk::new(HardDiskDrive::barracuda_500gb(clock))
    }

    /// A nearline enterprise drive with RV compensation (§5 "HDD types").
    pub fn nearline_4tb(clock: Clock) -> Self {
        HddDisk::new(HardDiskDrive::nearline_4tb(clock))
    }

    /// The underlying mechanical drive.
    pub fn drive(&self) -> &HardDiskDrive {
        &self.drive
    }

    /// Mutable access to the underlying drive (e.g. to swap the servo).
    pub fn drive_mut(&mut self) -> &mut HardDiskDrive {
        &mut self.drive
    }

    /// The drive's vibration input — clone this to mount the attack.
    pub fn vibration(&self) -> VibrationInput {
        self.drive.vibration().clone()
    }

    /// Failed read requests so far.
    pub fn read_errors(&self) -> u64 {
        self.read_errors
    }

    /// Failed write requests so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }
}

impl BlockDevice for HddDisk {
    fn num_blocks(&self) -> u64 {
        self.drive.geometry().total_sectors()
    }

    fn read_blocks(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let blocks = check_request(self.num_blocks(), lba, buf.len())?;
        if let Err(e) = self.drive.execute(DiskOp::read(lba, blocks)) {
            self.read_errors += 1;
            return Err(e.into());
        }
        for i in 0..blocks {
            let dst = &mut buf[(i as usize) * BLOCK_SIZE..][..BLOCK_SIZE];
            match self.blocks.get(&(lba + i)) {
                Some(data) => dst.copy_from_slice(&data[..]),
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    fn write_blocks(&mut self, lba: u64, buf: &[u8]) -> Result<(), IoError> {
        let blocks = check_request(self.num_blocks(), lba, buf.len())?;
        if let Err(e) = self.drive.execute(DiskOp::write(lba, blocks)) {
            self.write_errors += 1;
            return Err(e.into());
        }
        for i in 0..blocks {
            let src = &buf[(i as usize) * BLOCK_SIZE..][..BLOCK_SIZE];
            let mut block = Box::new([0u8; BLOCK_SIZE]);
            block.copy_from_slice(src);
            self.blocks.insert(lba + i, block);
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), IoError> {
        // The model writes through; a flush is a (fast) no-op command.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::Frequency;
    use deepnote_hdd::VibrationState;

    #[test]
    fn roundtrip_and_mechanical_time() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock.clone());
        let data = vec![0x5Au8; 4096];
        disk.write_blocks(100, &data).unwrap();
        let mut out = vec![0u8; 4096];
        disk.read_blocks(100, &mut out).unwrap();
        assert_eq!(out, data);
        // Both ops paid command overhead (~0.2 ms each) plus a seek for
        // the first op's positioning.
        assert!(clock.now().as_millis_f64() >= 0.3, "t = {}", clock.now());
    }

    #[test]
    fn unwritten_reads_zero() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock);
        let mut out = vec![0xFFu8; 512];
        disk.read_blocks(42, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn attack_makes_device_unresponsive() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock);
        disk.vibration()
            .set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.5)));
        let buf = vec![0u8; 4096];
        assert_eq!(disk.write_blocks(0, &buf).unwrap_err(), IoError::NoResponse);
        assert_eq!(disk.write_errors(), 1);
        // Stop the attack: the device recovers.
        disk.vibration().clear();
        assert!(disk.write_blocks(0, &buf).is_ok());
    }

    #[test]
    fn data_not_modified_by_failed_write() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock);
        let original = vec![1u8; 512];
        disk.write_blocks(5, &original).unwrap();
        disk.vibration()
            .set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.5)));
        assert!(disk.write_blocks(5, &vec![2u8; 512]).is_err());
        disk.vibration().clear();
        let mut out = vec![0u8; 512];
        disk.read_blocks(5, &mut out).unwrap();
        assert_eq!(out, original);
    }

    #[test]
    fn out_of_range_detected_before_mechanics() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock.clone());
        let n = disk.num_blocks();
        let t0 = clock.now();
        assert_eq!(
            disk.write_blocks(n, &vec![0u8; 512]).unwrap_err(),
            IoError::OutOfRange
        );
        assert_eq!(clock.now(), t0);
    }
}
