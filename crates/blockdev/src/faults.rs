//! Deterministic fault injection.
//!
//! [`FaultInjector`] wraps any [`BlockDevice`] and fails requests
//! according to an ordered set of [`FaultPlan`]s — used to test
//! filesystem/database error paths (journal aborts, WAL sync failures)
//! without bringing up the whole acoustic stack. For *probabilistic*
//! faults (bursts, bit flips, torn writes) see
//! [`ChaosInjector`](crate::ChaosInjector).
//!
//! # Composition and precedence
//!
//! Plans are checked in the order given; the **first** plan that wants
//! to fail a request decides its error, and later plans never see it.
//! Request/write counters are shared across all plans (every plan sees
//! the same request index). [`FaultInjector::new`] remains the
//! single-plan convenience constructor.

use crate::device::BlockDevice;
use crate::error::{IoError, EIO};

/// When and how the injector fails requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Never fail (pass-through).
    None,
    /// Fail every request from the `start`-th request onward (0-based,
    /// counting reads and writes together).
    FailFrom {
        /// Index of the first failing request.
        start: u64,
        /// The error to return.
        error: IoError,
    },
    /// Fail only write requests from the `start`-th write onward.
    FailWritesFrom {
        /// Index of the first failing write.
        start: u64,
        /// The error to return.
        error: IoError,
    },
    /// Fail any request touching an LBA in `[lo, hi)`.
    BadRange {
        /// First bad block.
        lo: u64,
        /// One past the last bad block.
        hi: u64,
    },
}

/// A wrapper injecting faults into an inner device.
///
/// # Example
///
/// ```
/// use deepnote_blockdev::{BlockDevice, FaultInjector, FaultPlan, IoError, MemDisk};
///
/// let mut d = FaultInjector::new(
///     MemDisk::new(64),
///     FaultPlan::FailFrom { start: 1, error: IoError::NoResponse },
/// );
/// let buf = vec![0u8; 512];
/// assert!(d.write_blocks(0, &buf).is_ok());        // request 0 passes
/// assert!(d.write_blocks(1, &buf).is_err());       // request 1 fails
/// ```
#[derive(Debug)]
pub struct FaultInjector<D> {
    inner: D,
    plans: Vec<FaultPlan>,
    requests: u64,
    writes: u64,
    injected: u64,
}

impl<D: BlockDevice> FaultInjector<D> {
    /// Wraps `inner` with a single plan (the common case).
    pub fn new(inner: D, plan: FaultPlan) -> Self {
        Self::with_plans(inner, vec![plan])
    }

    /// Wraps `inner` with an ordered set of plans; on each request the
    /// first matching plan wins (see the module docs for precedence).
    pub fn with_plans(inner: D, plans: Vec<FaultPlan>) -> Self {
        FaultInjector {
            inner,
            plans,
            requests: 0,
            writes: 0,
            injected: 0,
        }
    }

    /// Replaces every plan with `plan` mid-run (e.g. start failing
    /// after setup).
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plans = vec![plan];
    }

    /// Appends a plan at the lowest precedence position.
    pub fn push_plan(&mut self, plan: FaultPlan) {
        self.plans.push(plan);
    }

    /// The plans in effect, in precedence order.
    pub fn plans(&self) -> &[FaultPlan] {
        &self.plans
    }

    /// Number of injected failures so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Consumes the injector, returning the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn check(&mut self, lba: u64, blocks: u64, is_write: bool) -> Result<(), IoError> {
        let fault = self.plans.iter().find_map(|plan| match *plan {
            FaultPlan::None => None,
            FaultPlan::FailFrom { start, error } => (self.requests >= start).then_some(error),
            FaultPlan::FailWritesFrom { start, error } => {
                (is_write && self.writes >= start).then_some(error)
            }
            FaultPlan::BadRange { lo, hi } => {
                (lba < hi && lba + blocks > lo).then_some(IoError::Medium { errno: EIO })
            }
        });
        self.requests += 1;
        if is_write {
            self.writes += 1;
        }
        match fault {
            Some(e) => {
                self.injected += 1;
                Err(e)
            }
            None => Ok(()),
        }
    }
}

impl<D: BlockDevice> BlockDevice for FaultInjector<D> {
    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_blocks(&mut self, lba: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let blocks = (buf.len() / crate::device::BLOCK_SIZE) as u64;
        self.check(lba, blocks, false)?;
        self.inner.read_blocks(lba, buf)
    }

    fn write_blocks(&mut self, lba: u64, buf: &[u8]) -> Result<(), IoError> {
        let blocks = (buf.len() / crate::device::BLOCK_SIZE) as u64;
        self.check(lba, blocks, true)?;
        self.inner.write_blocks(lba, buf)
    }

    fn flush(&mut self) -> Result<(), IoError> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemDisk;

    #[test]
    fn passthrough_when_no_plan() {
        let mut d = FaultInjector::new(MemDisk::new(16), FaultPlan::None);
        let buf = vec![3u8; 512];
        d.write_blocks(2, &buf).unwrap();
        let mut out = vec![0u8; 512];
        d.read_blocks(2, &mut out).unwrap();
        assert_eq!(out, buf);
        assert_eq!(d.injected(), 0);
    }

    #[test]
    fn fail_from_counts_all_requests() {
        let mut d = FaultInjector::new(
            MemDisk::new(16),
            FaultPlan::FailFrom {
                start: 2,
                error: IoError::NoResponse,
            },
        );
        let buf = vec![0u8; 512];
        let mut out = vec![0u8; 512];
        assert!(d.write_blocks(0, &buf).is_ok()); // 0
        assert!(d.read_blocks(0, &mut out).is_ok()); // 1
        assert!(d.write_blocks(0, &buf).is_err()); // 2
        assert!(d.read_blocks(0, &mut out).is_err()); // 3
        assert_eq!(d.injected(), 2);
    }

    #[test]
    fn fail_writes_only() {
        let mut d = FaultInjector::new(
            MemDisk::new(16),
            FaultPlan::FailWritesFrom {
                start: 0,
                error: IoError::Medium { errno: EIO },
            },
        );
        let buf = vec![0u8; 512];
        let mut out = vec![0u8; 512];
        assert!(d.write_blocks(0, &buf).is_err());
        assert!(d.read_blocks(0, &mut out).is_ok());
    }

    #[test]
    fn bad_range_hits_overlaps_only() {
        let mut d = FaultInjector::new(MemDisk::new(64), FaultPlan::BadRange { lo: 10, hi: 12 });
        let buf = vec![0u8; 512 * 4];
        assert!(d.write_blocks(0, &buf).is_ok()); // 0..4
        assert!(d.write_blocks(8, &buf).is_err()); // 8..12 overlaps
        assert!(d.write_blocks(12, &buf).is_ok()); // 12..16 clear
        assert_eq!(
            d.write_blocks(11, &buf).unwrap_err(),
            IoError::Medium { errno: EIO }
        );
    }

    #[test]
    fn composed_plans_first_match_wins() {
        // A bad block range composed under a later fail-everything plan:
        // requests in the range report the range's medium error, the
        // rest fall through to the second plan.
        let mut d = FaultInjector::with_plans(
            MemDisk::new(64),
            vec![
                FaultPlan::BadRange { lo: 10, hi: 12 },
                FaultPlan::FailWritesFrom {
                    start: 2,
                    error: IoError::NoResponse,
                },
            ],
        );
        let buf = vec![0u8; 512];
        assert!(d.write_blocks(0, &buf).is_ok()); // write 0: neither plan
        assert_eq!(
            d.write_blocks(10, &buf).unwrap_err(),
            IoError::Medium { errno: EIO }, // write 1: range wins
        );
        assert_eq!(
            d.write_blocks(10, &buf).unwrap_err(),
            IoError::Medium { errno: EIO }, // write 2: range still first
        );
        assert_eq!(d.write_blocks(0, &buf).unwrap_err(), IoError::NoResponse);
        assert_eq!(d.injected(), 3);
        assert_eq!(d.plans().len(), 2);
    }

    #[test]
    fn push_plan_appends_at_lowest_precedence() {
        let mut d = FaultInjector::new(MemDisk::new(16), FaultPlan::None);
        d.push_plan(FaultPlan::FailFrom {
            start: 0,
            error: IoError::NoResponse,
        });
        let buf = vec![0u8; 512];
        // FaultPlan::None never matches, so the pushed plan decides.
        assert_eq!(d.write_blocks(0, &buf).unwrap_err(), IoError::NoResponse);
    }

    #[test]
    fn plan_can_change_mid_run() {
        let mut d = FaultInjector::new(MemDisk::new(16), FaultPlan::None);
        let buf = vec![0u8; 512];
        assert!(d.write_blocks(0, &buf).is_ok());
        d.set_plan(FaultPlan::FailFrom {
            start: 0,
            error: IoError::NoResponse,
        });
        assert!(d.write_blocks(0, &buf).is_err());
        assert_eq!(d.into_inner().writes(), 1);
    }
}
