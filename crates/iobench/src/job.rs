//! Benchmark job specifications.

use deepnote_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The access pattern of a job, mirroring fio's `rw=` parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// `rw=read`: sequential reads.
    SeqRead,
    /// `rw=write`: sequential writes.
    SeqWrite,
    /// `rw=randread`: uniformly random reads.
    RandRead,
    /// `rw=randwrite`: uniformly random writes.
    RandWrite,
    /// `rw=rw`: mixed sequential, with the given read percentage (0–100).
    Mixed {
        /// Percentage of operations that are reads.
        read_percent: u8,
    },
}

impl AccessPattern {
    /// Whether ops in this pattern address sequentially.
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            AccessPattern::SeqRead | AccessPattern::SeqWrite | AccessPattern::Mixed { .. }
        )
    }

    /// fio-style name.
    pub fn fio_name(self) -> &'static str {
        match self {
            AccessPattern::SeqRead => "read",
            AccessPattern::SeqWrite => "write",
            AccessPattern::RandRead => "randread",
            AccessPattern::RandWrite => "randwrite",
            AccessPattern::Mixed { .. } => "rw",
        }
    }
}

/// A declarative benchmark job, built fluently.
///
/// Defaults match the paper's methodology: 4 KiB blocks, 10 virtual
/// seconds of runtime, a 1 GiB working-set span, seed 0.
///
/// # Example
///
/// ```
/// use deepnote_iobench::{AccessPattern, JobSpec};
/// use deepnote_sim::SimDuration;
///
/// let job = JobSpec::new("paper", AccessPattern::SeqRead)
///     .with_block_size(4096)
///     .with_runtime(SimDuration::from_secs(10));
/// assert_eq!(job.block_size(), 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    name: String,
    pattern: AccessPattern,
    block_size: usize,
    runtime: SimDuration,
    span_bytes: u64,
    start_offset_bytes: u64,
    seed: u64,
}

impl JobSpec {
    /// Creates a job with the paper-default parameters.
    pub fn new(name: impl Into<String>, pattern: AccessPattern) -> Self {
        JobSpec {
            name: name.into(),
            pattern,
            block_size: 4096,
            runtime: SimDuration::from_secs(10),
            span_bytes: 1 << 30,
            start_offset_bytes: 0,
            seed: 0,
        }
    }

    /// Shorthand for a sequential-read job.
    pub fn seq_read(name: impl Into<String>) -> Self {
        Self::new(name, AccessPattern::SeqRead)
    }

    /// Shorthand for a sequential-write job.
    pub fn seq_write(name: impl Into<String>) -> Self {
        Self::new(name, AccessPattern::SeqWrite)
    }

    /// Sets the I/O unit size in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless the size is a positive multiple of 512.
    pub fn with_block_size(mut self, bytes: usize) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(512),
            "block size must be a positive multiple of 512, got {bytes}"
        );
        self.block_size = bytes;
        self
    }

    /// Sets the virtual runtime.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn with_runtime(mut self, runtime: SimDuration) -> Self {
        assert!(!runtime.is_zero(), "runtime must be non-zero");
        self.runtime = runtime;
        self
    }

    /// Sets the working-set span in bytes (the region the job addresses).
    ///
    /// # Panics
    ///
    /// Panics unless the span is a positive multiple of the block size.
    pub fn with_span_bytes(mut self, bytes: u64) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(self.block_size as u64),
            "span must be a positive multiple of the block size"
        );
        self.span_bytes = bytes;
        self
    }

    /// Sets the starting byte offset of the working set.
    ///
    /// # Panics
    ///
    /// Panics unless aligned to the block size.
    pub fn with_start_offset_bytes(mut self, bytes: u64) -> Self {
        assert!(
            bytes.is_multiple_of(self.block_size as u64),
            "offset must be block-aligned"
        );
        self.start_offset_bytes = bytes;
        self
    }

    /// Sets the RNG seed (random patterns and mixed read/write choice).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Job name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Access pattern.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// I/O unit size in bytes (getter).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Virtual runtime (getter).
    pub fn runtime(&self) -> SimDuration {
        self.runtime
    }

    /// Working-set span in bytes (getter).
    pub fn span_bytes(&self) -> u64 {
        self.span_bytes
    }

    /// Working-set start offset in bytes (getter).
    pub fn start_offset_bytes(&self) -> u64 {
        self.start_offset_bytes
    }

    /// RNG seed (getter).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of block-size units in the span.
    pub fn span_units(&self) -> u64 {
        self.span_bytes / self.block_size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let j = JobSpec::seq_read("x");
        assert_eq!(j.block_size(), 4096);
        assert_eq!(j.runtime(), SimDuration::from_secs(10));
        assert_eq!(j.pattern(), AccessPattern::SeqRead);
        assert_eq!(j.span_units(), (1 << 30) / 4096);
    }

    #[test]
    fn builder_chains() {
        let j = JobSpec::new("y", AccessPattern::RandWrite)
            .with_block_size(8192)
            .with_runtime(SimDuration::from_secs(3))
            .with_span_bytes(1 << 20)
            .with_start_offset_bytes(8192)
            .with_seed(42);
        assert_eq!(j.block_size(), 8192);
        assert_eq!(j.span_units(), 128);
        assert_eq!(j.start_offset_bytes(), 8192);
        assert_eq!(j.seed(), 42);
        assert!(!j.pattern().is_sequential());
    }

    #[test]
    fn fio_names() {
        assert_eq!(AccessPattern::SeqRead.fio_name(), "read");
        assert_eq!(AccessPattern::RandWrite.fio_name(), "randwrite");
        assert_eq!(AccessPattern::Mixed { read_percent: 50 }.fio_name(), "rw");
    }

    #[test]
    #[should_panic(expected = "multiple of 512")]
    fn odd_block_size_rejected() {
        JobSpec::seq_read("x").with_block_size(1000);
    }

    #[test]
    #[should_panic(expected = "multiple of the block size")]
    fn misaligned_span_rejected() {
        JobSpec::seq_read("x").with_span_bytes(4097);
    }
}
