//! Benchmark reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The result of running one job: the numbers the paper's tables report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Job name.
    pub name: String,
    /// Completed operations.
    pub ops_completed: u64,
    /// Failed operations (medium errors + no-response).
    pub ops_failed: u64,
    /// Bytes successfully transferred.
    pub bytes: u64,
    /// Virtual wall time of the run, seconds.
    pub elapsed_s: f64,
    /// Throughput in decimal MB/s (successful bytes over elapsed time).
    pub throughput_mb_s: f64,
    /// Completed operations per second.
    pub iops: f64,
    /// Mean completion latency in ms over successful ops, or `None` if no
    /// op completed — rendered as "-" like the paper's tables.
    pub mean_latency_ms: Option<f64>,
    /// 99th-percentile completion latency in ms, if any op completed.
    pub p99_latency_ms: Option<f64>,
}

impl JobReport {
    /// Whether the device served any I/O at all during the run.
    pub fn responsive(&self) -> bool {
        self.ops_completed > 0
    }

    /// The fraction of issued ops that failed.
    pub fn failure_ratio(&self) -> f64 {
        let total = self.ops_completed + self.ops_failed;
        if total == 0 {
            0.0
        } else {
            self.ops_failed as f64 / total as f64
        }
    }

    /// Renders latency the way the paper's Table 1 does: a number, or "-"
    /// when the drive gave no response.
    pub fn latency_cell(&self) -> String {
        match self.mean_latency_ms {
            Some(ms) => format!("{ms:.1}"),
            None => "-".to_string(),
        }
    }
}

impl fmt::Display for JobReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: io={:.1}MB, bw={:.1}MB/s, iops={:.0}, runt={:.2}s",
            self.name,
            self.bytes as f64 / 1e6,
            self.throughput_mb_s,
            self.iops,
            self.elapsed_s
        )?;
        match (self.mean_latency_ms, self.p99_latency_ms) {
            (Some(mean), Some(p99)) => writeln!(f, "  lat (ms): mean={mean:.3}, p99={p99:.3}")?,
            _ => writeln!(f, "  lat (ms): - (no completions)")?,
        }
        write!(
            f,
            "  ops: {} completed, {} failed",
            self.ops_completed, self.ops_failed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(completed: u64, failed: u64, mean: Option<f64>) -> JobReport {
        JobReport {
            name: "t".into(),
            ops_completed: completed,
            ops_failed: failed,
            bytes: completed * 4096,
            elapsed_s: 1.0,
            throughput_mb_s: completed as f64 * 4096.0 / 1e6,
            iops: completed as f64,
            mean_latency_ms: mean,
            p99_latency_ms: mean,
        }
    }

    #[test]
    fn responsiveness_and_failure_ratio() {
        let ok = report(100, 0, Some(0.2));
        assert!(ok.responsive());
        assert_eq!(ok.failure_ratio(), 0.0);
        let dead = report(0, 50, None);
        assert!(!dead.responsive());
        assert_eq!(dead.failure_ratio(), 1.0);
        let idle = report(0, 0, None);
        assert_eq!(idle.failure_ratio(), 0.0);
    }

    #[test]
    fn latency_cell_renders_dash() {
        assert_eq!(report(10, 0, Some(0.23)).latency_cell(), "0.2");
        assert_eq!(report(0, 10, None).latency_cell(), "-");
    }

    #[test]
    fn display_contains_key_numbers() {
        let s = report(250, 3, Some(0.2)).to_string();
        assert!(s.contains("bw=1.0MB/s"), "{s}");
        assert!(s.contains("250 completed, 3 failed"), "{s}");
    }
}
