//! A Flexible-I/O-Tester-style benchmark harness on virtual time.
//!
//! The paper measures its victim drive with FIO (sequential read and
//! sequential write, 4 KiB access granularity) and reports throughput in
//! MB/s and latency in ms. This crate reproduces that methodology:
//!
//! * [`JobSpec`] — a declarative job description (pattern, block size,
//!   runtime, working-set span) built fluently ([`job`]).
//! * [`run_job`] — executes a job against any
//!   [`deepnote_blockdev::BlockDevice`], driving the shared virtual clock
//!   ([`runner`]).
//! * [`JobReport`] — throughput / IOPS / latency percentiles / error
//!   accounting, formatted like the paper's tables ([`report`]).
//!
//! # Example
//!
//! ```
//! use deepnote_blockdev::MemDisk;
//! use deepnote_iobench::{run_job, JobSpec};
//! use deepnote_sim::{Clock, SimDuration};
//!
//! let clock = Clock::new();
//! let mut disk = MemDisk::with_latency(1 << 20, clock.clone(), SimDuration::from_micros(200));
//! let job = JobSpec::seq_write("demo")
//!     .with_block_size(4096)
//!     .with_span_bytes(1 << 24)
//!     .with_runtime(SimDuration::from_secs(1));
//! let report = run_job(&job, &mut disk, &clock);
//! assert!(report.throughput_mb_s > 19.0 && report.throughput_mb_s < 22.0);
//! ```

pub mod job;
pub mod parse;
pub mod report;
pub mod runner;

pub use job::{AccessPattern, JobSpec};
pub use parse::{parse_jobfile, ParseError};
pub use report::JobReport;
pub use runner::run_job;
