//! Parsing fio-style job files.
//!
//! The paper drives its measurements with FIO; this module accepts the
//! familiar INI job-file dialect so existing job descriptions can run
//! against the simulated stack unchanged:
//!
//! ```text
//! [global]
//! bs=4k
//! runtime=10
//!
//! [seq-write]
//! rw=write
//! size=1g
//! ```
//!
//! Supported keys: `rw` (`read`/`write`/`randread`/`randwrite`/`rw`),
//! `rwmixread`, `bs`, `runtime`, `size`, `offset`, `seed`. Size suffixes
//! `k`/`m`/`g` are binary (KiB/MiB/GiB), like fio.

use crate::job::{AccessPattern, JobSpec};
use deepnote_sim::SimDuration;
use std::fmt;

/// A job-file parse failure, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a size with optional binary suffix (`4k`, `1m`, `2g`).
fn parse_size(value: &str, line: usize) -> Result<u64, ParseError> {
    let v = value.trim().to_ascii_lowercase();
    let (digits, mult) = match v.strip_suffix(['k', 'm', 'g']) {
        Some(d) if v.ends_with('k') => (d, 1024u64),
        Some(d) if v.ends_with('m') => (d, 1024 * 1024),
        Some(d) => (d, 1024 * 1024 * 1024),
        None => (v.as_str(), 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * mult)
        .map_err(|_| err(line, format!("bad size: {value}")))
}

#[derive(Debug, Clone, Default)]
struct RawJob {
    name: String,
    rw: Option<String>,
    rwmixread: Option<u8>,
    bs: Option<u64>,
    runtime_s: Option<u64>,
    size: Option<u64>,
    offset: Option<u64>,
    seed: Option<u64>,
}

impl RawJob {
    fn merge_defaults(&mut self, global: &RawJob) {
        macro_rules! inherit {
            ($($f:ident),*) => { $( if self.$f.is_none() { self.$f = global.$f.clone(); } )* };
        }
        inherit!(rw, rwmixread, bs, runtime_s, size, offset, seed);
    }

    fn build(&self, line: usize) -> Result<JobSpec, ParseError> {
        let pattern = match self.rw.as_deref().unwrap_or("read") {
            "read" => AccessPattern::SeqRead,
            "write" => AccessPattern::SeqWrite,
            "randread" => AccessPattern::RandRead,
            "randwrite" => AccessPattern::RandWrite,
            "rw" | "readwrite" => AccessPattern::Mixed {
                read_percent: self.rwmixread.unwrap_or(50),
            },
            other => return Err(err(line, format!("unknown rw mode: {other}"))),
        };
        let mut spec = JobSpec::new(self.name.clone(), pattern);
        if let Some(bs) = self.bs {
            if bs == 0 || bs % 512 != 0 || bs > usize::MAX as u64 {
                return Err(err(
                    line,
                    format!("bs must be a positive multiple of 512, got {bs}"),
                ));
            }
            spec = spec.with_block_size(bs as usize);
        }
        if let Some(rt) = self.runtime_s {
            if rt == 0 {
                return Err(err(line, "runtime must be positive"));
            }
            spec = spec.with_runtime(SimDuration::from_secs(rt));
        }
        if let Some(size) = self.size {
            let bs = spec.block_size() as u64;
            if size == 0 || size % bs != 0 {
                return Err(err(
                    line,
                    format!("size must be a positive multiple of bs, got {size}"),
                ));
            }
            spec = spec.with_span_bytes(size);
        }
        if let Some(offset) = self.offset {
            if offset % spec.block_size() as u64 != 0 {
                return Err(err(line, "offset must be bs-aligned"));
            }
            spec = spec.with_start_offset_bytes(offset);
        }
        if let Some(seed) = self.seed {
            spec = spec.with_seed(seed);
        }
        Ok(spec)
    }
}

/// Parses an fio-style job file into the jobs it defines, in file order.
///
/// # Errors
///
/// [`ParseError`] with the offending line for malformed sections, keys,
/// or values.
///
/// # Example
///
/// ```
/// use deepnote_iobench::parse_jobfile;
///
/// let jobs = parse_jobfile("
/// [global]
/// bs=4k
/// runtime=10
///
/// [paper-read]
/// rw=read
///
/// [paper-write]
/// rw=write
/// ")?;
/// assert_eq!(jobs.len(), 2);
/// assert_eq!(jobs[0].name(), "paper-read");
/// assert_eq!(jobs[1].block_size(), 4096);
/// # Ok::<(), deepnote_iobench::ParseError>(())
/// ```
pub fn parse_jobfile(text: &str) -> Result<Vec<JobSpec>, ParseError> {
    let mut global = RawJob::default();
    let mut jobs: Vec<(usize, RawJob)> = Vec::new();
    let mut current: Option<(usize, RawJob)> = None;

    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split(['#', ';']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return Err(err(line_no, "unterminated section header"));
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(err(line_no, "empty section name"));
            }
            if let Some(done) = current.take() {
                jobs.push(done);
            }
            if name.eq_ignore_ascii_case("global") {
                current = None; // keys now update the global section
            } else {
                current = Some((
                    line_no,
                    RawJob {
                        name: name.to_string(),
                        ..RawJob::default()
                    },
                ));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(line_no, format!("expected key=value, got: {line}")));
        };
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim();
        let target = current.as_mut().map(|(_, j)| j).unwrap_or(&mut global);
        match key.as_str() {
            "rw" | "readwrite" => target.rw = Some(value.to_ascii_lowercase()),
            "rwmixread" => {
                let pct: u8 = value
                    .parse()
                    .map_err(|_| err(line_no, format!("bad rwmixread: {value}")))?;
                if pct > 100 {
                    return Err(err(line_no, "rwmixread must be 0-100"));
                }
                target.rwmixread = Some(pct);
            }
            "bs" | "blocksize" => target.bs = Some(parse_size(value, line_no)?),
            "runtime" => {
                let v = value.trim_end_matches('s');
                target.runtime_s = Some(
                    v.parse()
                        .map_err(|_| err(line_no, format!("bad runtime: {value}")))?,
                );
            }
            "size" => target.size = Some(parse_size(value, line_no)?),
            "offset" => target.offset = Some(parse_size(value, line_no)?),
            "seed" | "randseed" => {
                target.seed = Some(
                    value
                        .parse()
                        .map_err(|_| err(line_no, format!("bad seed: {value}")))?,
                )
            }
            // Commonly present fio keys that the simulator implies anyway.
            "ioengine" | "direct" | "iodepth" | "numjobs" | "group_reporting" => {}
            other => return Err(err(line_no, format!("unsupported key: {other}"))),
        }
    }
    if let Some(done) = current.take() {
        jobs.push(done);
    }
    if jobs.is_empty() {
        return Err(err(text.lines().count().max(1), "no job sections defined"));
    }
    jobs.into_iter()
        .map(|(line, mut j)| {
            j.merge_defaults(&global);
            j.build(line)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_jobfile_parses() {
        let jobs = parse_jobfile(
            "
# The paper's FIO methodology.
[global]
bs=4k
runtime=10
ioengine=sync   ; ignored, implied by the simulator

[seq-read]
rw=read

[seq-write]
rw=write
size=1g
",
        )
        .unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name(), "seq-read");
        assert_eq!(jobs[0].pattern(), AccessPattern::SeqRead);
        assert_eq!(jobs[0].block_size(), 4096);
        assert_eq!(jobs[0].runtime(), SimDuration::from_secs(10));
        assert_eq!(jobs[1].pattern(), AccessPattern::SeqWrite);
        assert_eq!(jobs[1].span_bytes(), 1 << 30);
    }

    #[test]
    fn job_overrides_global() {
        let jobs = parse_jobfile("[global]\nbs=4k\n[j]\nrw=randwrite\nbs=8k\nseed=7").unwrap();
        assert_eq!(jobs[0].block_size(), 8192);
        assert_eq!(jobs[0].seed(), 7);
        assert_eq!(jobs[0].pattern(), AccessPattern::RandWrite);
    }

    #[test]
    fn mixed_workload_with_ratio() {
        let jobs = parse_jobfile("[m]\nrw=rw\nrwmixread=70").unwrap();
        assert_eq!(jobs[0].pattern(), AccessPattern::Mixed { read_percent: 70 });
    }

    #[test]
    fn sizes_are_binary_suffixed() {
        assert_eq!(parse_size("4k", 1).unwrap(), 4096);
        assert_eq!(parse_size("2m", 1).unwrap(), 2 << 20);
        assert_eq!(parse_size("1g", 1).unwrap(), 1 << 30);
        assert_eq!(parse_size("512", 1).unwrap(), 512);
        assert!(parse_size("4q", 1).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_jobfile("[j]\nrw=read\nbogus=1").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unsupported key"), "{e}");

        let e = parse_jobfile("[j]\nrw=sideways").unwrap_err();
        assert!(e.message.contains("unknown rw mode"), "{e}");

        let e = parse_jobfile("[global]\nbs=4k").unwrap_err();
        assert!(e.message.contains("no job sections"), "{e}");

        let e = parse_jobfile("[broken\nrw=read").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn bad_values_rejected() {
        assert!(parse_jobfile("[j]\nbs=1000").is_err()); // not 512-multiple
        assert!(parse_jobfile("[j]\nruntime=0").is_err());
        assert!(parse_jobfile("[j]\nrwmixread=150").is_err());
        assert!(parse_jobfile("[j]\nbs=4k\nsize=5000").is_err()); // not bs-multiple
    }

    #[test]
    fn parsed_job_actually_runs() {
        use crate::runner::run_job;
        use deepnote_blockdev::MemDisk;
        use deepnote_sim::Clock;
        let jobs = parse_jobfile("[quick]\nrw=write\nbs=4k\nruntime=1\nsize=1m").unwrap();
        let clock = Clock::new();
        let mut disk = MemDisk::with_latency(
            1 << 16,
            clock.clone(),
            deepnote_sim::SimDuration::from_micros(100),
        );
        let report = run_job(&jobs[0], &mut disk, &clock);
        assert!(report.ops_completed > 1_000);
        assert_eq!(report.name, "quick");
    }
}
