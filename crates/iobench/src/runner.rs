//! The job runner.

use crate::job::{AccessPattern, JobSpec};
use crate::report::JobReport;
use deepnote_blockdev::BlockDevice;
use deepnote_sim::{Clock, Histogram, SimRng};

/// Runs `job` against `device`, issuing synchronous I/O until the job's
/// virtual runtime has elapsed on `clock`, and returns the measurements.
///
/// The device itself advances the clock by each request's service time
/// (including time burned by failed requests), exactly like a synchronous
/// FIO job with `iodepth=1`.
///
/// # Panics
///
/// Panics if the job's working set does not fit on the device.
pub fn run_job(job: &JobSpec, device: &mut dyn BlockDevice, clock: &Clock) -> JobReport {
    let bs = job.block_size();
    let span_units = job.span_units();
    let start_block = job.start_offset_bytes() / 512;
    let blocks_per_unit = (bs / 512) as u64;
    assert!(
        start_block + span_units * blocks_per_unit <= device.num_blocks(),
        "job working set exceeds device capacity"
    );

    let mut rng = SimRng::seeded(job.seed());
    let mut read_buf = vec![0u8; bs];
    let write_buf = vec![0xD5u8; bs];

    let t_start = clock.now();
    let deadline = t_start + job.runtime();

    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut bytes = 0u64;
    let mut latency_us = Histogram::new_latency();
    let mut seq_cursor = 0u64;

    while clock.now() < deadline {
        // Choose the op.
        let (unit, is_read) = match job.pattern() {
            AccessPattern::SeqRead => {
                let u = seq_cursor % span_units;
                seq_cursor += 1;
                (u, true)
            }
            AccessPattern::SeqWrite => {
                let u = seq_cursor % span_units;
                seq_cursor += 1;
                (u, false)
            }
            AccessPattern::RandRead => (rng.below(span_units), true),
            AccessPattern::RandWrite => (rng.below(span_units), false),
            AccessPattern::Mixed { read_percent } => {
                let u = seq_cursor % span_units;
                seq_cursor += 1;
                (u, rng.chance(read_percent as f64 / 100.0))
            }
        };
        let lba = start_block + unit * blocks_per_unit;

        let op_start = clock.now();
        let result = if is_read {
            device.read_blocks(lba, &mut read_buf)
        } else {
            device.write_blocks(lba, &write_buf)
        };
        let op_time = clock.now() - op_start;

        match result {
            Ok(()) => {
                completed += 1;
                bytes += bs as u64;
                latency_us.record(op_time.as_secs_f64() * 1e6);
            }
            Err(_) => {
                failed += 1;
                // Guard against devices that fail without consuming time:
                // a real host would still burn at least a polling interval.
                if op_time.is_zero() {
                    clock.advance(deepnote_sim::SimDuration::from_micros(100));
                }
            }
        }
    }

    let elapsed_s = (clock.now() - t_start).as_secs_f64();
    JobReport {
        name: job.name().to_string(),
        ops_completed: completed,
        ops_failed: failed,
        bytes,
        elapsed_s,
        throughput_mb_s: if elapsed_s > 0.0 {
            bytes as f64 / 1e6 / elapsed_s
        } else {
            0.0
        },
        iops: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        mean_latency_ms: (completed > 0).then(|| latency_us.mean() / 1e3),
        p99_latency_ms: latency_us.percentile(99.0).map(|us| us / 1e3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_acoustics::Frequency;
    use deepnote_blockdev::{FaultInjector, FaultPlan, HddDisk, IoError, MemDisk};
    use deepnote_hdd::VibrationState;
    use deepnote_sim::SimDuration;

    #[test]
    fn paper_baseline_on_hdd() {
        // The headline calibration: FIO seq 4 KiB on the quiet Barracuda
        // must reproduce Table 1's "No Attack" row.
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock.clone());
        let read = run_job(
            &JobSpec::seq_read("read").with_runtime(SimDuration::from_secs(5)),
            &mut disk,
            &clock,
        );
        let write = run_job(
            &JobSpec::seq_write("write").with_runtime(SimDuration::from_secs(5)),
            &mut disk,
            &clock,
        );
        assert!((read.throughput_mb_s - 18.0).abs() < 0.2, "{read}");
        assert!((write.throughput_mb_s - 22.7).abs() < 0.2, "{write}");
        assert_eq!(read.latency_cell(), "0.2");
        assert_eq!(write.latency_cell(), "0.2");
        assert_eq!(read.ops_failed, 0);
    }

    #[test]
    fn attacked_hdd_reports_no_response() {
        let clock = Clock::new();
        let mut disk = HddDisk::barracuda_500gb(clock.clone());
        disk.vibration()
            .set(Some(VibrationState::new(Frequency::from_hz(650.0), 0.5)));
        let write = run_job(
            &JobSpec::seq_write("attacked").with_runtime(SimDuration::from_secs(5)),
            &mut disk,
            &clock,
        );
        assert_eq!(write.throughput_mb_s, 0.0);
        assert_eq!(write.latency_cell(), "-");
        assert!(!write.responsive());
        assert!(write.ops_failed > 0);
    }

    #[test]
    fn runtime_respected() {
        let clock = Clock::new();
        let mut disk = MemDisk::with_latency(1 << 16, clock.clone(), SimDuration::from_micros(50));
        let report = run_job(
            &JobSpec::seq_write("t")
                .with_runtime(SimDuration::from_secs(2))
                .with_span_bytes(1 << 20),
            &mut disk,
            &clock,
        );
        assert!(
            (report.elapsed_s - 2.0).abs() < 0.01,
            "{}",
            report.elapsed_s
        );
        assert_eq!(report.ops_completed, 40_000);
    }

    #[test]
    fn random_pattern_covers_span() {
        let clock = Clock::new();
        let mut disk = MemDisk::with_latency(1 << 16, clock.clone(), SimDuration::from_micros(10));
        let report = run_job(
            &JobSpec::new("r", AccessPattern::RandWrite)
                .with_runtime(SimDuration::from_millis(500))
                .with_span_bytes(1 << 20),
            &mut disk,
            &clock,
        );
        assert!(report.ops_completed > 1000);
        // Blocks touched should be a large subset of the 256-unit span.
        assert!(disk.blocks_touched() > 200 * 8 / 2);
    }

    #[test]
    fn mixed_pattern_reads_and_writes() {
        let clock = Clock::new();
        let mut disk = MemDisk::with_latency(1 << 16, clock.clone(), SimDuration::from_micros(10));
        let before_writes = disk.writes();
        run_job(
            &JobSpec::new("m", AccessPattern::Mixed { read_percent: 50 })
                .with_runtime(SimDuration::from_millis(100))
                .with_span_bytes(1 << 20),
            &mut disk,
            &clock,
        );
        assert!(disk.writes() > before_writes);
        assert!(disk.reads() > 0);
    }

    #[test]
    fn failing_device_without_latency_still_terminates() {
        let clock = Clock::new();
        let mut disk = FaultInjector::new(
            MemDisk::new(1 << 16),
            FaultPlan::FailFrom {
                start: 0,
                error: IoError::NoResponse,
            },
        );
        let report = run_job(
            &JobSpec::seq_write("dead")
                .with_runtime(SimDuration::from_millis(10))
                .with_span_bytes(1 << 20),
            &mut disk,
            &clock,
        );
        assert_eq!(report.ops_completed, 0);
        assert!(report.ops_failed > 0);
        assert_eq!(report.latency_cell(), "-");
    }

    #[test]
    #[should_panic(expected = "exceeds device capacity")]
    fn oversized_working_set_panics() {
        let clock = Clock::new();
        let mut disk = MemDisk::new(16);
        run_job(&JobSpec::seq_write("big"), &mut disk, &clock);
    }
}
