//! Seawater sound absorption.
//!
//! Implements the Ainslie & McColm (1998) simplification of the
//! Fisher & Simmons / François–Garrison absorption model, which is the
//! "simple and accurate formula" of van Moll et al. (paper ref. \[47\]).
//! Absorption has three additive terms — boric acid relaxation, magnesium
//! sulfate relaxation, and pure-water viscosity:
//!
//! ```text
//! α(f) = A1 f1 f²/(f1²+f²) + A2 f2 f²/(f2²+f²) + A3 f²      [dB/km, f in kHz]
//! ```
//!
//! In fresh water the two chemical relaxation terms vanish and only the
//! viscous term remains — which is why the paper's 650 Hz tank signal is
//! attenuated by a negligible ~10⁻⁵ dB/km and the attack is limited by
//! geometric spreading, not absorption.

use crate::medium::WaterConditions;
use crate::units::Frequency;

/// Absorption coefficient in dB/km for a signal of frequency `f` in water
/// `w`, per Ainslie & McColm (1998).
///
/// Validated for 100 Hz – 1 MHz; outside that band the nearest-boundary
/// behaviour is still smooth and monotone, so no clamping is applied.
///
/// # Example
///
/// ```
/// use deepnote_acoustics::{absorption_db_per_km, Frequency, WaterConditions};
///
/// let sea = WaterConditions::natick_seawater();
/// let a500 = absorption_db_per_km(Frequency::from_hz(500.0), &sea);
/// // Baltic-style measurement in the paper: 0.038 dB/km at 500 Hz, 50 m.
/// assert!(a500 > 0.001 && a500 < 0.2, "a500 = {a500}");
/// ```
pub fn absorption_db_per_km(f: Frequency, w: &WaterConditions) -> f64 {
    let f_khz = f.khz();
    let t = w.temperature().deg_c();
    let s = w.salinity().psu();
    let z_km = w.depth().m() / 1_000.0;
    // Ainslie & McColm use pH; coastal/ocean default.
    let ph = 8.0_f64;

    // Boric acid relaxation frequency (kHz).
    let f1 = 0.78 * (s / 35.0_f64).sqrt() * (t / 26.0).exp();
    // Magnesium sulfate relaxation frequency (kHz).
    let f2 = 42.0 * (t / 17.0).exp();

    let f_sq = f_khz * f_khz;

    // Boric acid term.
    let boric = 0.106 * (f1 * f_sq) / (f1 * f1 + f_sq) * ((ph - 8.0) / 0.56).exp();
    // Magnesium sulfate term.
    let mgso4 =
        0.52 * (1.0 + t / 43.0) * (s / 35.0) * (f2 * f_sq) / (f2 * f2 + f_sq) * (-z_km / 6.0).exp();
    // Pure water (viscous) term.
    let water = 0.00049 * f_sq * (-(t / 27.0 + z_km / 17.0)).exp();

    // In fresh water the chemical terms are scaled away by s/35 (MgSO4)
    // and sqrt(s/35) (boric); at s = 0 only the viscous term remains.
    // deepnote-lint: allow(float-eq): Salinity::FRESH is exactly 0.0, an uncalculated sentinel
    let boric = if s == 0.0 { 0.0 } else { boric };
    boric + mgso4 + water
}

/// Total absorption loss in dB over a path of `distance_km` kilometres.
pub fn absorption_loss_db(f: Frequency, w: &WaterConditions, distance_km: f64) -> f64 {
    assert!(
        distance_km.is_finite() && distance_km >= 0.0,
        "distance must be finite and non-negative"
    );
    absorption_db_per_km(f, w) * distance_km
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Celsius, Depth, Salinity};
    use proptest::prelude::*;

    fn seawater() -> WaterConditions {
        WaterConditions::new(Celsius::new(10.0), Salinity::OCEAN, Depth::from_m(50.0))
    }

    #[test]
    fn low_frequency_absorption_is_tiny() {
        // The paper quotes 0.038 dB/km at 500 Hz, 50 m depth, Baltic-ish
        // water. The Baltic is brackish (S ≈ 8); with that salinity we
        // should land in the same order of magnitude.
        let baltic = WaterConditions::new(
            Celsius::new(8.0),
            Salinity::from_psu(8.0),
            Depth::from_m(50.0),
        );
        let a = absorption_db_per_km(Frequency::from_hz(500.0), &baltic);
        assert!((0.005..0.15).contains(&a), "a = {a}");
    }

    #[test]
    fn freshwater_only_viscous_term() {
        let fresh = WaterConditions::tank_freshwater();
        let a = absorption_db_per_km(Frequency::from_hz(650.0), &fresh);
        // Viscous term at 0.65 kHz: 0.00049 * 0.4225 * exp(-21/27) ≈ 1e-4.
        assert!(a < 1e-3, "a = {a}");
        assert!(a > 0.0);
    }

    #[test]
    fn high_frequencies_absorb_much_more() {
        let w = seawater();
        let a1 = absorption_db_per_km(Frequency::from_khz(1.0), &w);
        let a100 = absorption_db_per_km(Frequency::from_khz(100.0), &w);
        assert!(a100 / a1 > 100.0, "a1 = {a1}, a100 = {a100}");
    }

    #[test]
    fn reference_magnitude_at_10khz() {
        // Published curves put 10 kHz seawater absorption near 1 dB/km.
        let a = absorption_db_per_km(Frequency::from_khz(10.0), &seawater());
        assert!((0.3..3.0).contains(&a), "a = {a}");
    }

    #[test]
    fn loss_scales_with_distance() {
        let w = seawater();
        let f = Frequency::from_khz(10.0);
        let l1 = absorption_loss_db(f, &w, 1.0);
        let l5 = absorption_loss_db(f, &w, 5.0);
        assert!((l5 - 5.0 * l1).abs() < 1e-9);
        assert_eq!(absorption_loss_db(f, &w, 0.0), 0.0);
    }

    proptest! {
        /// Absorption increases monotonically with frequency.
        #[test]
        fn monotone_in_frequency(f in 0.1f64..500.0, s in 0.0f64..45.0) {
            let w = WaterConditions::new(Celsius::new(10.0), Salinity::from_psu(s), Depth::from_m(50.0));
            let a_lo = absorption_db_per_km(Frequency::from_khz(f), &w);
            let a_hi = absorption_db_per_km(Frequency::from_khz(f * 1.3), &w);
            prop_assert!(a_hi >= a_lo, "a({}) = {} > a({}) = {}", f, a_lo, f * 1.3, a_hi);
        }

        /// Absorption is non-negative everywhere.
        #[test]
        fn non_negative(f in 0.01f64..1_000.0, t in -2.0f64..40.0, s in 0.0f64..45.0, z in 0.0f64..5_000.0) {
            let w = WaterConditions::new(Celsius::new(t), Salinity::from_psu(s), Depth::from_m(z));
            prop_assert!(absorption_db_per_km(Frequency::from_khz(f), &w) >= 0.0);
        }

        /// Salt water absorbs at least as much as fresh water at the same
        /// conditions (chemical relaxation only adds loss).
        #[test]
        fn saltwater_geq_freshwater(f in 0.1f64..100.0, t in 0.0f64..30.0) {
            let fresh = WaterConditions::new(Celsius::new(t), Salinity::FRESH, Depth::from_m(10.0));
            let salty = WaterConditions::new(Celsius::new(t), Salinity::OCEAN, Depth::from_m(10.0));
            let af = absorption_db_per_km(Frequency::from_khz(f), &fresh);
            let as_ = absorption_db_per_km(Frequency::from_khz(f), &salty);
            prop_assert!(as_ >= af);
        }
    }
}
