//! Propagation media and water conditions.
//!
//! Sound speed in water follows Medwin's equation (paper ref. \[30\]):
//!
//! ```text
//! c = 1449.2 + 4.6 T − 0.055 T² + 0.00029 T³ + (1.34 − 0.010 T)(S − 35) + 0.016 z
//! ```
//!
//! with `T` in °C, `S` in PSU, `z` in metres. The paper's §5 observations —
//! speed rises with temperature, salinity, and depth — fall straight out of
//! this formula and are property-tested below.

use crate::units::{Celsius, Depth, Salinity};
use serde::{Deserialize, Serialize};

/// A bulk propagation medium with density and sound speed.
///
/// Used for characteristic impedance (`ρc`) at material interfaces and for
/// the air/water speed comparison in the paper's §2.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Medium {
    /// Air at room temperature.
    Air,
    /// Dry nitrogen gas, the fill of Project Natick-style vessels.
    Nitrogen,
    /// Water with explicit conditions.
    Water(WaterConditions),
}

impl Medium {
    /// Density in kg/m³.
    pub fn density_kg_m3(&self) -> f64 {
        match self {
            Medium::Air => 1.204,
            Medium::Nitrogen => 1.165,
            Medium::Water(w) => w.density_kg_m3(),
        }
    }

    /// Sound speed in m/s.
    pub fn sound_speed_m_s(&self) -> f64 {
        match self {
            Medium::Air => 343.0,
            Medium::Nitrogen => 349.0,
            Medium::Water(w) => w.sound_speed_m_s(),
        }
    }

    /// Characteristic acoustic impedance ρc in rayl (Pa·s/m).
    pub fn impedance_rayl(&self) -> f64 {
        self.density_kg_m3() * self.sound_speed_m_s()
    }
}

/// The water state relevant to sound propagation: temperature, salinity,
/// and depth.
///
/// # Example
///
/// ```
/// use deepnote_acoustics::{WaterConditions, Celsius, Salinity, Depth};
///
/// let tank = WaterConditions::tank_freshwater();
/// let natick = WaterConditions::new(
///     Celsius::new(10.0),
///     Salinity::OCEAN,
///     Depth::from_m(36.0),
/// );
/// // Colder but saltier/deeper: Medwin's terms trade off.
/// assert!(natick.sound_speed_m_s() > 1480.0);
/// assert!(tank.sound_speed_m_s() > 1400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaterConditions {
    temperature: Celsius,
    salinity: Salinity,
    depth: Depth,
}

impl WaterConditions {
    /// Creates water conditions.
    pub fn new(temperature: Celsius, salinity: Salinity, depth: Depth) -> Self {
        WaterConditions {
            temperature,
            salinity,
            depth,
        }
    }

    /// The paper's laboratory tank: room-temperature fresh water at
    /// negligible depth.
    pub fn tank_freshwater() -> Self {
        WaterConditions::new(Celsius::new(21.0), Salinity::FRESH, Depth::from_m(0.5))
    }

    /// Microsoft Project Natick deployment conditions: ~36 m deep seawater
    /// (paper ref. \[22\]), North Sea temperature.
    pub fn natick_seawater() -> Self {
        WaterConditions::new(Celsius::new(10.0), Salinity::OCEAN, Depth::from_m(36.0))
    }

    /// Planned Hainan (Offshore Oil Engineering Co.) deployment, ~20 m deep
    /// warm seawater (paper ref. \[35\]).
    pub fn hainan_seawater() -> Self {
        WaterConditions::new(
            Celsius::new(24.0),
            Salinity::from_psu(33.0),
            Depth::from_m(20.0),
        )
    }

    /// Water temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Water salinity.
    pub fn salinity(&self) -> Salinity {
        self.salinity
    }

    /// Depth below the surface.
    pub fn depth(&self) -> Depth {
        self.depth
    }

    /// Returns a copy with a different temperature.
    pub fn with_temperature(mut self, t: Celsius) -> Self {
        self.temperature = t;
        self
    }

    /// Returns a copy with a different salinity.
    pub fn with_salinity(mut self, s: Salinity) -> Self {
        self.salinity = s;
        self
    }

    /// Returns a copy with a different depth.
    pub fn with_depth(mut self, d: Depth) -> Self {
        self.depth = d;
        self
    }

    /// Sound speed via Medwin (1975), m/s.
    pub fn sound_speed_m_s(&self) -> f64 {
        let t = self.temperature.deg_c();
        let s = self.salinity.psu();
        let z = self.depth.m();
        1449.2 + 4.6 * t - 0.055 * t * t
            + 0.00029 * t * t * t
            + (1.34 - 0.010 * t) * (s - 35.0)
            + 0.016 * z
    }

    /// Approximate density, kg/m³: fresh 998, plus ~0.78 kg/m³ per PSU,
    /// plus weak compression with depth.
    pub fn density_kg_m3(&self) -> f64 {
        998.0 + 0.78 * self.salinity.psu() + 0.0045 * self.depth.m()
    }

    /// Hydrostatic pressure at depth, in atmospheres (used by absorption
    /// formulas), including the 1 atm surface pressure.
    pub fn pressure_atm(&self) -> f64 {
        1.0 + self.depth.m() / 10.06
    }
}

impl Default for WaterConditions {
    fn default() -> Self {
        Self::tank_freshwater()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn medwin_reference_value() {
        // T = 10 °C, S = 35 PSU, z = 0: published value ≈ 1490 m/s.
        let w = WaterConditions::new(Celsius::new(10.0), Salinity::OCEAN, Depth::SURFACE);
        let c = w.sound_speed_m_s();
        assert!((1489.0..1492.0).contains(&c), "c = {c}");
    }

    #[test]
    fn water_speed_about_4x_air() {
        // §2.2: "Sound wave travels approximately 4 times faster in water
        // than air."
        let ratio =
            WaterConditions::tank_freshwater().sound_speed_m_s() / Medium::Air.sound_speed_m_s();
        assert!((3.9..4.6).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn impedance_ordering() {
        let air = Medium::Air.impedance_rayl();
        let water = Medium::Water(WaterConditions::tank_freshwater()).impedance_rayl();
        assert!(
            water / air > 3_000.0,
            "water/air impedance = {}",
            water / air
        );
        let n2 = Medium::Nitrogen.impedance_rayl();
        assert!((n2 - air).abs() / air < 0.1);
    }

    #[test]
    fn presets_are_distinct() {
        let tank = WaterConditions::tank_freshwater();
        let natick = WaterConditions::natick_seawater();
        assert_ne!(tank, natick);
        assert!(natick.pressure_atm() > tank.pressure_atm());
        assert!(natick.density_kg_m3() > tank.density_kg_m3());
    }

    #[test]
    fn with_builders_replace_fields() {
        let w = WaterConditions::tank_freshwater()
            .with_temperature(Celsius::new(30.0))
            .with_salinity(Salinity::from_psu(10.0))
            .with_depth(Depth::from_m(100.0));
        assert_eq!(w.temperature().deg_c(), 30.0);
        assert_eq!(w.salinity().psu(), 10.0);
        assert_eq!(w.depth().m(), 100.0);
    }

    proptest! {
        /// §5 "Water Conditions": as temperature increases, sound speed
        /// increases (below ~40 °C where the quadratic term wins, Medwin is
        /// monotone; we stay within the validated range).
        #[test]
        fn speed_increases_with_temperature(t in -2.0f64..35.0, s in 0.0f64..45.0, z in 0.0f64..1000.0) {
            let base = WaterConditions::new(Celsius::new(t), Salinity::from_psu(s), Depth::from_m(z));
            let hotter = base.with_temperature(Celsius::new(t + 2.0_f64.min(35.0 - t).max(0.5)));
            prop_assert!(hotter.sound_speed_m_s() > base.sound_speed_m_s());
        }

        /// §5: higher salinity increases speed.
        #[test]
        fn speed_increases_with_salinity(t in -2.0f64..40.0, s in 0.0f64..40.0, z in 0.0f64..1000.0) {
            let base = WaterConditions::new(Celsius::new(t), Salinity::from_psu(s), Depth::from_m(z));
            let saltier = base.with_salinity(Salinity::from_psu(s + 5.0));
            prop_assert!(saltier.sound_speed_m_s() > base.sound_speed_m_s());
        }

        /// §5: increasing depth increases sound speed.
        #[test]
        fn speed_increases_with_depth(t in -2.0f64..40.0, s in 0.0f64..45.0, z in 0.0f64..5000.0) {
            let base = WaterConditions::new(Celsius::new(t), Salinity::from_psu(s), Depth::from_m(z));
            let deeper = base.with_depth(Depth::from_m(z + 100.0));
            prop_assert!(deeper.sound_speed_m_s() > base.sound_speed_m_s());
        }

        /// Sound speed stays within physically plausible water bounds.
        #[test]
        fn speed_plausible(t in -2.0f64..40.0, s in 0.0f64..45.0, z in 0.0f64..11_000.0) {
            let w = WaterConditions::new(Celsius::new(t), Salinity::from_psu(s), Depth::from_m(z));
            let c = w.sound_speed_m_s();
            prop_assert!((1350.0..1750.0).contains(&c), "c = {}", c);
        }
    }
}
