//! The attacker's signal chain: generator → amplifier → underwater speaker.
//!
//! The paper drives a Clark Synthesis AQ339 "Diluvio" underwater speaker
//! from a TOA BG-2120 amplifier, fed by a laptop running GNU Radio emitting
//! sine waves. [`SignalChain`] assembles those pieces and produces an
//! [`AcousticEmission`]: the frequency and source level actually radiated
//! into the water, including the speaker's band limits.

use crate::spl::Spl;
use crate::units::{Distance, Frequency, Gain};
use serde::{Deserialize, Serialize};

/// A pure sine-wave source (what GNU Radio generates in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SineSource {
    frequency: Frequency,
    /// Drive level as a fraction of full scale, `0.0..=1.0`.
    drive: f64,
}

impl SineSource {
    /// Creates a full-scale sine source at `frequency`.
    pub fn new(frequency: Frequency) -> Self {
        SineSource {
            frequency,
            drive: 1.0,
        }
    }

    /// Sets the drive level (fraction of full scale).
    ///
    /// # Panics
    ///
    /// Panics if `drive` is outside `0.0..=1.0`.
    pub fn with_drive(mut self, drive: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drive),
            "drive must be within 0..=1, got {drive}"
        );
        self.drive = drive;
        self
    }

    /// The generated frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// The drive level fraction.
    pub fn drive(&self) -> f64 {
        self.drive
    }

    /// Drive level in dB relative to full scale (≤ 0).
    pub fn drive_db(&self) -> f64 {
        if self.drive <= 0.0 {
            f64::NEG_INFINITY
        } else {
            20.0 * self.drive.log10()
        }
    }
}

/// A power amplifier with a gain and a clipping ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Amplifier {
    gain_db: f64,
    max_output_db: f64,
}

impl Amplifier {
    /// Creates an amplifier with the given gain, clipping at
    /// `max_output_db` (dB relative to chain full scale).
    ///
    /// # Panics
    ///
    /// Panics if `max_output_db` is non-finite.
    pub fn new(gain: Gain, max_output_db: f64) -> Self {
        assert!(max_output_db.is_finite());
        Amplifier {
            gain_db: gain.db(),
            max_output_db,
        }
    }

    /// The TOA BG-2120 mixer/amplifier used in the paper: 120 W into the
    /// speaker, modelled as 40 dB of gain with the rail at exactly the
    /// level that drives the speaker to full output.
    pub fn toa_bg2120() -> Self {
        Amplifier::new(Gain::from_db(40.0), SignalChain::FULL_SCALE_LINE_DB)
    }

    /// Gain applied to the input level, with clipping at `max_output_db`
    /// (dB relative to chain full scale).
    pub fn amplify_db(&self, input_db: f64) -> f64 {
        (input_db + self.gain_db).min(self.max_output_db)
    }

    /// The configured gain in dB.
    pub fn gain_db(&self) -> f64 {
        self.gain_db
    }
}

/// An underwater loudspeaker: band limits, maximum source level, and an
/// effective radiating radius used by near-field propagation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Speaker {
    name: String,
    band_low: Frequency,
    band_high: Frequency,
    max_source_level: Spl,
    radius: Distance,
    rolloff_db_per_octave: f64,
}

impl Speaker {
    /// Creates a speaker model.
    ///
    /// # Panics
    ///
    /// Panics if the band is empty or the rolloff is negative.
    pub fn new(
        name: impl Into<String>,
        band_low: Frequency,
        band_high: Frequency,
        max_source_level: Spl,
        radius: Distance,
        rolloff_db_per_octave: f64,
    ) -> Self {
        assert!(
            band_low.hz() < band_high.hz(),
            "speaker band must be non-empty"
        );
        assert!(rolloff_db_per_octave >= 0.0, "rolloff must be non-negative");
        Speaker {
            name: name.into(),
            band_low,
            band_high,
            max_source_level,
            radius,
            rolloff_db_per_octave,
        }
    }

    /// The Clark Synthesis AQ339 "Diluvio" underwater loudspeaker used in
    /// the paper: usable from ~20 Hz to ~17 kHz, capable of the paper's
    /// 140 dB re 1 µPa source level, ~20 cm diameter.
    pub fn aq339_diluvio() -> Self {
        Speaker::new(
            "Clark Synthesis AQ339 Diluvio",
            Frequency::from_hz(20.0),
            Frequency::from_khz(17.0),
            Spl::water_db(140.0),
            Distance::from_cm(6.0),
            24.0,
        )
    }

    /// A military-grade projector for the paper's §5 "Effective Range"
    /// discussion: far higher source level.
    pub fn military_projector() -> Self {
        Speaker::new(
            "military-grade projector",
            Frequency::from_hz(10.0),
            Frequency::from_khz(40.0),
            Spl::water_db(200.0),
            Distance::from_cm(25.0),
            24.0,
        )
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Effective radiating radius (sets the near-field boundary).
    pub fn radius(&self) -> Distance {
        self.radius
    }

    /// Maximum achievable source level inside the passband.
    pub fn max_source_level(&self) -> Spl {
        self.max_source_level
    }

    /// Frequency response in dB (≤ 0): flat in the passband, rolling off
    /// at `rolloff_db_per_octave` outside it.
    pub fn response_db(&self, f: Frequency) -> f64 {
        let hz = f.hz();
        if hz <= 0.0 {
            return f64::NEG_INFINITY;
        }
        if hz < self.band_low.hz() {
            let octaves = (self.band_low.hz() / hz).log2();
            -self.rolloff_db_per_octave * octaves
        } else if hz > self.band_high.hz() {
            let octaves = (hz / self.band_high.hz()).log2();
            -self.rolloff_db_per_octave * octaves
        } else {
            0.0
        }
    }

    /// The source level radiated for a given drive level (dB rel. full
    /// scale, ≤ 0) at frequency `f`.
    pub fn radiate(&self, drive_db: f64, f: Frequency) -> Spl {
        self.max_source_level
            .plus_db(drive_db.min(0.0))
            .plus_db(self.response_db(f))
    }
}

/// What actually leaves the speaker: a tone at `frequency` with source
/// level `source_level` (defined at the transducer face), radiating from an
/// aperture of radius `source_radius`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcousticEmission {
    /// Transmitted tone frequency.
    pub frequency: Frequency,
    /// Source level at the transducer face (dB re 1 µPa).
    pub source_level: Spl,
    /// Effective radiating radius (near-field boundary).
    pub source_radius: Distance,
}

/// The attacker's full signal chain.
///
/// # Example
///
/// ```
/// use deepnote_acoustics::{SignalChain, Frequency};
///
/// // The paper's setup at its best attack frequency.
/// let chain = SignalChain::paper_setup(Frequency::from_hz(650.0));
/// let e = chain.emission();
/// assert!((e.source_level.db() - 140.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalChain {
    source: SineSource,
    amplifier: Amplifier,
    speaker: Speaker,
}

impl SignalChain {
    /// Line level (dB) that corresponds to the speaker's full output; the
    /// paper's TOA amplifier at full gain with a full-scale sine reaches
    /// exactly this level.
    pub const FULL_SCALE_LINE_DB: f64 = 40.0;

    /// Assembles a chain from parts.
    pub fn new(source: SineSource, amplifier: Amplifier, speaker: Speaker) -> Self {
        SignalChain {
            source,
            amplifier,
            speaker,
        }
    }

    /// The paper's setup: GNU Radio sine → TOA BG-2120 → AQ339 Diluvio at
    /// full drive (140 dB re 1 µPa source level).
    pub fn paper_setup(frequency: Frequency) -> Self {
        SignalChain::new(
            SineSource::new(frequency),
            Amplifier::toa_bg2120(),
            Speaker::aq339_diluvio(),
        )
    }

    /// The transmitted frequency.
    pub fn frequency(&self) -> Frequency {
        self.source.frequency()
    }

    /// Returns a copy of the chain retuned to a different frequency,
    /// keeping drive/amplifier/speaker.
    pub fn retuned(&self, frequency: Frequency) -> Self {
        let mut chain = self.clone();
        chain.source = SineSource::new(frequency).with_drive(self.source.drive());
        chain
    }

    /// The speaker in the chain.
    pub fn speaker(&self) -> &Speaker {
        &self.speaker
    }

    /// Computes the radiated emission.
    pub fn emission(&self) -> AcousticEmission {
        // Drive (≤0 dBFS) through the amp, then re-referenced so that the
        // full-scale line level maps to the speaker's maximum output.
        let line_db = self.amplifier.amplify_db(self.source.drive_db()) - Self::FULL_SCALE_LINE_DB;
        AcousticEmission {
            frequency: self.source.frequency(),
            source_level: self
                .speaker
                .radiate(line_db.min(0.0), self.source.frequency()),
            source_radius: self.speaker.radius(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_drive_reaches_max_source_level() {
        let chain = SignalChain::paper_setup(Frequency::from_hz(650.0));
        let e = chain.emission();
        assert!((e.source_level.db() - 140.0).abs() < 1e-9);
        assert_eq!(e.frequency.hz(), 650.0);
    }

    #[test]
    fn reduced_drive_reduces_level() {
        let chain = SignalChain::new(
            SineSource::new(Frequency::from_hz(650.0)).with_drive(0.5),
            Amplifier::toa_bg2120(),
            Speaker::aq339_diluvio(),
        );
        let db = chain.emission().source_level.db();
        assert!((db - (140.0 - 6.0206)).abs() < 0.01, "db = {db}");
    }

    #[test]
    fn speaker_band_edges_roll_off() {
        let sp = Speaker::aq339_diluvio();
        assert_eq!(sp.response_db(Frequency::from_hz(650.0)), 0.0);
        assert_eq!(sp.response_db(Frequency::from_khz(16.9)), 0.0);
        // One octave below the low edge: one full rolloff step down.
        let below = sp.response_db(Frequency::from_hz(10.0));
        assert!((below + 24.0).abs() < 0.1, "below = {below}");
        let above = sp.response_db(Frequency::from_khz(34.0));
        assert!((above + 24.0).abs() < 0.1, "above = {above}");
    }

    #[test]
    fn out_of_band_emission_is_weaker() {
        let in_band = SignalChain::paper_setup(Frequency::from_hz(650.0))
            .emission()
            .source_level
            .db();
        let out_band = SignalChain::paper_setup(Frequency::from_hz(5.0))
            .emission()
            .source_level
            .db();
        assert!(out_band < in_band - 20.0);
    }

    #[test]
    fn retuned_keeps_drive() {
        let chain = SignalChain::new(
            SineSource::new(Frequency::from_hz(100.0)).with_drive(0.25),
            Amplifier::toa_bg2120(),
            Speaker::aq339_diluvio(),
        );
        let retuned = chain.retuned(Frequency::from_hz(650.0));
        assert_eq!(retuned.frequency().hz(), 650.0);
        assert_eq!(
            retuned.emission().source_level,
            chain.emission().source_level
        );
    }

    #[test]
    fn military_projector_outguns_aq339() {
        assert!(
            Speaker::military_projector().max_source_level().db()
                > Speaker::aq339_diluvio().max_source_level().db() + 50.0
        );
    }

    #[test]
    #[should_panic(expected = "drive")]
    fn drive_out_of_range_panics() {
        SineSource::new(Frequency::from_hz(100.0)).with_drive(1.5);
    }
}
