//! Sound pressure levels with explicit reference pressures.
//!
//! A dB SPL number is meaningless without its reference: in air the
//! convention is 20 µPa, in water 1 µPa. The paper (§2.2) converts with
//!
//! ```text
//! SPL_water = SPL_air + 20·log10(20 µPa / 1 µPa) = SPL_air + 26 dB
//! ```
//!
//! (the additional +35.5 dB impedance correction for equal *intensity* is
//! exposed as [`Spl::to_water_equal_intensity`]). [`Spl`] carries its
//! reference in the type state so the two scales cannot be mixed silently.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Reference pressure of an SPL value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplReference {
    /// 20 µPa — the in-air convention.
    Air20uPa,
    /// 1 µPa — the underwater convention.
    Water1uPa,
}

impl SplReference {
    /// The reference pressure in pascals.
    pub fn pressure_pa(self) -> f64 {
        match self {
            SplReference::Air20uPa => 20e-6,
            SplReference::Water1uPa => 1e-6,
        }
    }
}

impl fmt::Display for SplReference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplReference::Air20uPa => write!(f, "re 20µPa"),
            SplReference::Water1uPa => write!(f, "re 1µPa"),
        }
    }
}

/// A sound pressure level: decibels relative to an explicit reference.
///
/// # Example
///
/// ```
/// use deepnote_acoustics::{Spl, SplReference};
///
/// // The paper's attack level: 140 dB SPL re 1 µPa underwater.
/// let attack = Spl::water_db(140.0);
/// assert_eq!(attack.reference(), SplReference::Water1uPa);
/// // 140 dB re 1 µPa is exactly 10 Pa RMS.
/// assert!((attack.pressure_pa() - 10.0).abs() < 1e-9);
/// // The same pressure expressed on the in-air scale is ~26 dB lower.
/// assert!((attack.to_air_reference().db() - 114.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spl {
    db: f64,
    reference: SplReference,
}

/// The dB offset between the air and water reference scales:
/// `20·log10(20 µPa / 1 µPa) ≈ 26 dB` (§2.2 of the paper).
pub const AIR_TO_WATER_REFERENCE_DB: f64 = 26.020599913279625;

/// Additional offset for equal acoustic *intensity* (not just equal
/// reference) between air and water, from the impedance ratio
/// `10·log10(ρc_water / ρc_air) ≈ 35.5 dB`.
pub const AIR_TO_WATER_INTENSITY_DB: f64 = 35.5;

impl Spl {
    /// Creates an SPL with an explicit reference.
    ///
    /// # Panics
    ///
    /// Panics if `db` is non-finite.
    pub fn new(db: f64, reference: SplReference) -> Self {
        assert!(db.is_finite(), "SPL must be finite, got {db}");
        Spl { db, reference }
    }

    /// An underwater SPL (dB re 1 µPa).
    pub fn water_db(db: f64) -> Self {
        Spl::new(db, SplReference::Water1uPa)
    }

    /// An in-air SPL (dB re 20 µPa).
    pub fn air_db(db: f64) -> Self {
        Spl::new(db, SplReference::Air20uPa)
    }

    /// The level in decibels (relative to [`Spl::reference`]).
    pub fn db(self) -> f64 {
        self.db
    }

    /// The reference pressure scale.
    pub fn reference(self) -> SplReference {
        self.reference
    }

    /// RMS acoustic pressure in pascals.
    pub fn pressure_pa(self) -> f64 {
        self.reference.pressure_pa() * 10f64.powf(self.db / 20.0)
    }

    /// Builds an SPL from an RMS pressure.
    ///
    /// # Panics
    ///
    /// Panics if `pa` is not strictly positive.
    pub fn from_pressure_pa(pa: f64, reference: SplReference) -> Self {
        assert!(
            pa.is_finite() && pa > 0.0,
            "pressure must be positive and finite, got {pa}"
        );
        Spl::new(20.0 * (pa / reference.pressure_pa()).log10(), reference)
    }

    /// Re-expresses this level on the underwater (re 1 µPa) scale. The
    /// physical pressure is unchanged.
    pub fn to_water_reference(self) -> Spl {
        match self.reference {
            SplReference::Water1uPa => self,
            SplReference::Air20uPa => Spl::water_db(self.db + AIR_TO_WATER_REFERENCE_DB),
        }
    }

    /// Re-expresses this level on the in-air (re 20 µPa) scale. The
    /// physical pressure is unchanged.
    pub fn to_air_reference(self) -> Spl {
        match self.reference {
            SplReference::Air20uPa => self,
            SplReference::Water1uPa => Spl::air_db(self.db - AIR_TO_WATER_REFERENCE_DB),
        }
    }

    /// The underwater SPL that carries the same acoustic *intensity* as
    /// this in-air SPL (reference shift + impedance correction). Matches
    /// the convention used when comparing "140 dB in air" attacks with
    /// underwater sources.
    ///
    /// # Panics
    ///
    /// Panics if `self` is already a water-referenced level.
    pub fn to_water_equal_intensity(self) -> Spl {
        assert_eq!(
            self.reference,
            SplReference::Air20uPa,
            "to_water_equal_intensity expects an air-referenced level"
        );
        Spl::water_db(self.db + AIR_TO_WATER_REFERENCE_DB + AIR_TO_WATER_INTENSITY_DB)
    }

    /// Adds a gain (or attenuation, if negative) in dB on the same
    /// reference scale.
    pub fn plus_db(self, gain_db: f64) -> Spl {
        assert!(gain_db.is_finite(), "gain must be finite");
        Spl::new(self.db + gain_db, self.reference)
    }
}

impl fmt::Display for Spl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}dB SPL {}", self.db, self.reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_conversion_constant() {
        // §2.2: SPL_water = SPL_air + 26 dB.
        assert!((AIR_TO_WATER_REFERENCE_DB - 26.0).abs() < 0.1);
    }

    #[test]
    fn pressure_of_140db_water() {
        let spl = Spl::water_db(140.0);
        assert!((spl.pressure_pa() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn pressure_of_sonar_220db() {
        // §4: "220 dB SPL pressure level typically used in underwater
        // sonars" → 10^(220/20) µPa = 10^11 µPa = 100 kPa.
        let spl = Spl::water_db(220.0);
        assert!((spl.pressure_pa() - 1e5).abs() / 1e5 < 1e-9);
    }

    #[test]
    fn reference_roundtrip_preserves_pressure() {
        let air = Spl::air_db(94.0); // 1 Pa in air scale.
        assert!((air.pressure_pa() - 1.0).abs() < 0.02);
        let water = air.to_water_reference();
        assert!((water.pressure_pa() - air.pressure_pa()).abs() < 1e-12);
        let back = water.to_air_reference();
        assert!((back.db() - 94.0).abs() < 1e-9);
    }

    #[test]
    fn equal_intensity_larger_than_equal_reference() {
        let air = Spl::air_db(140.0);
        let same_pressure = air.to_water_reference();
        let same_intensity = air.to_water_equal_intensity();
        assert!(same_intensity.db() > same_pressure.db());
    }

    #[test]
    #[should_panic(expected = "air-referenced")]
    fn equal_intensity_rejects_water_input() {
        Spl::water_db(140.0).to_water_equal_intensity();
    }

    #[test]
    fn plus_db_attenuates() {
        let spl = Spl::water_db(140.0).plus_db(-20.0);
        assert_eq!(spl.db(), 120.0);
        assert!((spl.pressure_pa() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_shows_reference() {
        assert_eq!(Spl::water_db(140.0).to_string(), "140.0dB SPL re 1µPa");
        assert_eq!(Spl::air_db(94.0).to_string(), "94.0dB SPL re 20µPa");
    }

    proptest! {
        /// from_pressure / pressure round-trips.
        #[test]
        fn pressure_roundtrip(db in -20.0f64..240.0) {
            let spl = Spl::water_db(db);
            let back = Spl::from_pressure_pa(spl.pressure_pa(), SplReference::Water1uPa);
            prop_assert!((back.db() - db).abs() < 1e-9);
        }

        /// +6 dB doubles pressure.
        #[test]
        fn six_db_doubles_pressure(db in 0.0f64..200.0) {
            let a = Spl::water_db(db).pressure_pa();
            let b = Spl::water_db(db + 6.020599913279624).pressure_pa();
            prop_assert!((b / a - 2.0).abs() < 1e-9);
        }

        /// Water-referenced numbers are always 26 dB above the same
        /// pressure on the air scale.
        #[test]
        fn reference_offset_constant(db in 0.0f64..200.0) {
            let w = Spl::water_db(db);
            let a = w.to_air_reference();
            prop_assert!((w.db() - a.db() - AIR_TO_WATER_REFERENCE_DB).abs() < 1e-9);
        }
    }
}
