//! Source directivity: how the speaker's output varies off-axis.
//!
//! A circular piston of radius `a` radiating at wavenumber `k` has the
//! classic far-field pattern `D(θ) = 2·J₁(ka·sinθ)/(ka·sinθ)`. Two
//! regimes matter for the attack:
//!
//! * In the paper's vulnerable band (300 Hz–1.7 kHz underwater,
//!   λ = 0.9–5 m) the AQ339's ~6 cm radius gives `ka ≪ 1`: the source is
//!   **omnidirectional**. The attack cannot be narrowed to one enclosure,
//!   and a defender cannot hide a rack "off to the side".
//! * Above ~10 kHz the beam narrows, which is why ultrasonic
//!   (shock-sensor) attacks in the Blue Note tradition *are* aimable.

use crate::medium::WaterConditions;
use crate::units::{Distance, Frequency};

/// First-kind Bessel function J₁: ascending series for small arguments,
/// the standard asymptotic form for large ones (the series loses
/// precision to cancellation past `x ≈ 20`).
fn bessel_j1(x: f64) -> f64 {
    let x = x.abs();
    if x > 18.0 {
        // J1(x) ≈ sqrt(2/(πx)) · cos(x − 3π/4), error O(x^-1).
        return (2.0 / (std::f64::consts::PI * x)).sqrt()
            * (x - 3.0 * std::f64::consts::FRAC_PI_4).cos();
    }
    let half = x / 2.0;
    let mut term = half; // m = 0 term: (x/2)^1 / (0! * 1!)
    let mut sum = term;
    for m in 1..60 {
        term *= -(half * half) / (m as f64 * (m as f64 + 1.0));
        sum += term;
        if term.abs() < 1e-16 {
            break;
        }
    }
    sum
}

/// The piston directivity factor `D(θ)` (linear pressure ratio, 1 on
/// axis), for a source of radius `a` at frequency `f` in water `w`.
///
/// # Panics
///
/// Panics if the angle is not finite.
pub fn piston_directivity(
    f: Frequency,
    radius: Distance,
    w: &WaterConditions,
    angle_rad: f64,
) -> f64 {
    assert!(angle_rad.is_finite(), "angle must be finite");
    let k = f.angular() / w.sound_speed_m_s();
    let x = k * radius.m() * angle_rad.sin().abs();
    if x < 1e-9 {
        return 1.0;
    }
    (2.0 * bessel_j1(x) / x).abs()
}

/// Off-axis attenuation in dB (≥ 0) at `angle_rad` from the axis.
pub fn off_axis_attenuation_db(
    f: Frequency,
    radius: Distance,
    w: &WaterConditions,
    angle_rad: f64,
) -> f64 {
    let d = piston_directivity(f, radius, w, angle_rad).max(1e-6);
    -20.0 * d.log10()
}

/// The half-power (−3 dB) beamwidth in radians (full angle), found by
/// scanning; `None` when the source is effectively omnidirectional
/// (no −3 dB point within ±90°).
pub fn half_power_beamwidth_rad(
    f: Frequency,
    radius: Distance,
    w: &WaterConditions,
) -> Option<f64> {
    let mut theta = 0.0_f64;
    while theta <= std::f64::consts::FRAC_PI_2 {
        if off_axis_attenuation_db(f, radius, w, theta) >= 3.0 {
            return Some(2.0 * theta);
        }
        theta += 1e-3;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn water() -> WaterConditions {
        WaterConditions::tank_freshwater()
    }

    #[test]
    fn bessel_j1_reference_values() {
        // Abramowitz & Stegun: J1(1) = 0.4400506, J1(2) = 0.5767248,
        // J1(5) = -0.3275791.
        assert!((bessel_j1(1.0) - 0.4400506).abs() < 1e-6);
        assert!((bessel_j1(2.0) - 0.5767248).abs() < 1e-6);
        assert!((bessel_j1(5.0) + 0.3275791).abs() < 1e-6);
        assert_eq!(bessel_j1(0.0), 0.0);
    }

    #[test]
    fn on_axis_is_unity() {
        let d = piston_directivity(
            Frequency::from_hz(650.0),
            Distance::from_cm(6.0),
            &water(),
            0.0,
        );
        assert_eq!(d, 1.0);
        assert_eq!(
            off_axis_attenuation_db(
                Frequency::from_khz(30.0),
                Distance::from_cm(6.0),
                &water(),
                0.0
            ),
            0.0
        );
    }

    #[test]
    fn attack_band_is_omnidirectional() {
        // ka at 650 Hz with a 6 cm radius in water ≈ 0.16: even at 90°
        // off-axis the level barely drops — the attack cannot be aimed,
        // and racks cannot hide beside the source.
        let w = water();
        for hz in [300.0, 650.0, 1_300.0] {
            let att = off_axis_attenuation_db(
                Frequency::from_hz(hz),
                Distance::from_cm(6.0),
                &w,
                std::f64::consts::FRAC_PI_2,
            );
            assert!(att < 0.5, "{hz} Hz: {att} dB at 90°");
            assert!(
                half_power_beamwidth_rad(Frequency::from_hz(hz), Distance::from_cm(6.0), &w)
                    .is_none()
            );
        }
    }

    #[test]
    fn ultrasound_beams_narrow() {
        // At 100 kHz (λ = 1.5 cm) the same aperture is 8λ wide: a real
        // beam forms, with a measurable half-power width.
        let w = water();
        let bw = half_power_beamwidth_rad(Frequency::from_khz(100.0), Distance::from_cm(6.0), &w)
            .expect("beam must form at ultrasound");
        let degrees = bw.to_degrees();
        assert!((2.0..30.0).contains(&degrees), "beamwidth = {degrees}°");
    }

    #[test]
    fn beam_narrows_with_frequency() {
        let w = water();
        let bw50 = half_power_beamwidth_rad(Frequency::from_khz(50.0), Distance::from_cm(6.0), &w)
            .expect("beam at 50 kHz");
        let bw150 =
            half_power_beamwidth_rad(Frequency::from_khz(150.0), Distance::from_cm(6.0), &w)
                .expect("beam at 150 kHz");
        assert!(bw150 < bw50);
    }

    proptest! {
        /// Directivity is bounded by the on-axis value.
        #[test]
        fn never_exceeds_on_axis(khz in 0.1f64..200.0, deg in 0.0f64..90.0) {
            let d = piston_directivity(
                Frequency::from_khz(khz),
                Distance::from_cm(6.0),
                &water(),
                deg.to_radians(),
            );
            prop_assert!((0.0..=1.0 + 1e-9).contains(&d), "d = {}", d);
        }
    }
}
