//! Frequency-sweep planning.
//!
//! §4.1 of the paper: "we perform a frequency sweep starting at 100 Hz and
//! ending at 16.9 kHz and narrowing to 50 Hz increments between vulnerable
//! frequencies". [`SweepPlan`] reproduces that methodology: a coarse
//! geometric or linear pass over the full band, then (driven by the
//! caller's measurements) a fine linear pass across any band found
//! vulnerable.

use crate::units::Frequency;
use serde::{Deserialize, Serialize};

/// One step of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepStep {
    /// Frequency to transmit.
    pub frequency: Frequency,
    /// Whether this step belongs to the fine (refinement) pass.
    pub fine: bool,
}

/// A frequency sweep plan.
///
/// # Example
///
/// ```
/// use deepnote_acoustics::{SweepPlan, Frequency};
///
/// let plan = SweepPlan::paper_sweep();
/// let freqs: Vec<_> = plan.coarse_steps().collect();
/// assert_eq!(freqs.first().unwrap().frequency.hz(), 100.0);
/// assert!(freqs.last().unwrap().frequency.hz() <= 16_900.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPlan {
    start: Frequency,
    end: Frequency,
    coarse_step_hz: f64,
    fine_step_hz: f64,
}

impl SweepPlan {
    /// Creates a sweep plan.
    ///
    /// # Panics
    ///
    /// Panics if the band is empty or a step is non-positive, or the fine
    /// step is larger than the coarse step.
    pub fn new(
        start: Frequency,
        end: Frequency,
        coarse_step: Frequency,
        fine_step: Frequency,
    ) -> Self {
        let (coarse_step_hz, fine_step_hz) = (coarse_step.hz(), fine_step.hz());
        assert!(start.hz() < end.hz(), "sweep band must be non-empty");
        assert!(
            coarse_step_hz > 0.0 && fine_step_hz > 0.0,
            "sweep steps must be positive"
        );
        assert!(
            fine_step_hz <= coarse_step_hz,
            "fine step must not exceed coarse step"
        );
        SweepPlan {
            start,
            end,
            coarse_step_hz,
            fine_step_hz,
        }
    }

    /// The paper's sweep: 100 Hz → 16.9 kHz, 100 Hz coarse steps, 50 Hz
    /// refinement.
    pub fn paper_sweep() -> Self {
        SweepPlan::new(
            Frequency::from_hz(100.0),
            Frequency::from_khz(16.9),
            Frequency::from_hz(100.0),
            Frequency::from_hz(50.0),
        )
    }

    /// Start of the sweep band.
    pub fn start(&self) -> Frequency {
        self.start
    }

    /// End of the sweep band (inclusive).
    pub fn end(&self) -> Frequency {
        self.end
    }

    /// The coarse pass: linear steps across the whole band, inclusive of
    /// both edges.
    pub fn coarse_steps(&self) -> impl Iterator<Item = SweepStep> + '_ {
        let n = ((self.end.hz() - self.start.hz()) / self.coarse_step_hz).round() as usize;
        (0..=n).map(move |i| SweepStep {
            frequency: Frequency::from_hz(
                (self.start.hz() + i as f64 * self.coarse_step_hz).min(self.end.hz()),
            ),
            fine: false,
        })
    }

    /// The refinement pass between `lo` and `hi` (both clamped to the
    /// plan's band): fine linear steps, inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn fine_steps(&self, lo: Frequency, hi: Frequency) -> impl Iterator<Item = SweepStep> + '_ {
        assert!(lo.hz() < hi.hz(), "refinement band must be non-empty");
        let lo_hz = lo.hz().max(self.start.hz());
        let hi_hz = hi.hz().min(self.end.hz());
        let n = ((hi_hz - lo_hz) / self.fine_step_hz).round() as usize;
        (0..=n).map(move |i| SweepStep {
            frequency: Frequency::from_hz((lo_hz + i as f64 * self.fine_step_hz).min(hi_hz)),
            fine: true,
        })
    }

    /// Full adaptive plan: run the coarse pass, call `probe` on each
    /// frequency (returning `true` when the target looks vulnerable, e.g.
    /// throughput dipped), then refine one coarse step around every
    /// vulnerable coarse frequency. Returns all visited steps in order.
    pub fn run_adaptive(&self, mut probe: impl FnMut(Frequency) -> bool) -> Vec<SweepStep> {
        let mut visited = Vec::new();
        let mut vulnerable = Vec::new();
        for step in self.coarse_steps() {
            if probe(step.frequency) {
                vulnerable.push(step.frequency);
            }
            visited.push(step);
        }
        for f in vulnerable {
            let lo = Frequency::from_hz((f.hz() - self.coarse_step_hz).max(self.start.hz()));
            let hi = Frequency::from_hz((f.hz() + self.coarse_step_hz).min(self.end.hz()));
            if lo.hz() < hi.hz() {
                for step in self.fine_steps(lo, hi) {
                    // Refinement probes too (results recorded by caller).
                    let _ = probe(step.frequency);
                    visited.push(step);
                }
            }
        }
        visited
    }
}

impl Default for SweepPlan {
    fn default() -> Self {
        Self::paper_sweep()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_covers_band_inclusive() {
        let plan = SweepPlan::paper_sweep();
        let steps: Vec<_> = plan.coarse_steps().collect();
        assert_eq!(steps.first().unwrap().frequency.hz(), 100.0);
        assert_eq!(steps.last().unwrap().frequency.hz(), 16_900.0);
        assert!(steps.iter().all(|s| !s.fine));
        // 100 Hz steps over 16.8 kHz: 169 posts.
        assert_eq!(steps.len(), 169);
    }

    #[test]
    fn fine_steps_are_50hz() {
        let plan = SweepPlan::paper_sweep();
        let steps: Vec<_> = plan
            .fine_steps(Frequency::from_hz(300.0), Frequency::from_hz(500.0))
            .collect();
        let freqs: Vec<f64> = steps.iter().map(|s| s.frequency.hz()).collect();
        assert_eq!(freqs, vec![300.0, 350.0, 400.0, 450.0, 500.0]);
        assert!(steps.iter().all(|s| s.fine));
    }

    #[test]
    fn fine_steps_clamped_to_band() {
        let plan = SweepPlan::paper_sweep();
        let steps: Vec<_> = plan
            .fine_steps(Frequency::from_hz(0.0), Frequency::from_hz(200.0))
            .collect();
        assert_eq!(steps.first().unwrap().frequency.hz(), 100.0);
    }

    #[test]
    fn adaptive_refines_around_hits() {
        let plan = SweepPlan::new(
            Frequency::from_hz(100.0),
            Frequency::from_hz(1_000.0),
            Frequency::from_hz(100.0),
            Frequency::from_hz(50.0),
        );
        // Pretend only 600 Hz-ish is vulnerable.
        let visited = plan.run_adaptive(|f| (550.0..=650.0).contains(&f.hz()));
        let fine: Vec<f64> = visited
            .iter()
            .filter(|s| s.fine)
            .map(|s| s.frequency.hz())
            .collect();
        // 600 Hz coarse hit refines 500..700 in 50 Hz steps.
        assert_eq!(fine, vec![500.0, 550.0, 600.0, 650.0, 700.0]);
    }

    #[test]
    fn adaptive_no_hits_no_fine_pass() {
        let plan = SweepPlan::paper_sweep();
        let visited = plan.run_adaptive(|_| false);
        assert!(visited.iter().all(|s| !s.fine));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_band_panics() {
        SweepPlan::new(
            Frequency::from_hz(500.0),
            Frequency::from_hz(100.0),
            Frequency::from_hz(10.0),
            Frequency::from_hz(5.0),
        );
    }
}
