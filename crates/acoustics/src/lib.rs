//! Underwater acoustic physics for the Deep Note reproduction.
//!
//! This crate models everything between the attacker's signal generator and
//! the outer wall of the victim enclosure, following the formulas the paper
//! cites:
//!
//! * **Units** — strongly typed [`Frequency`], [`Spl`], [`Distance`],
//!   [`Celsius`], [`Salinity`], [`Depth`] ([`units`]).
//! * **Medium** — water conditions and Medwin's sound-speed equation,
//!   plus air/nitrogen/water medium properties ([`medium`]).
//! * **Absorption** — the van Moll/Ainslie–McColm simplification of
//!   Fisher & Simmons seawater absorption ([`absorption`]).
//! * **SPL** — sound pressure levels with explicit reference pressures and
//!   the paper's `SPL_water = SPL_air + 26 dB` / `+ 61.5 dB` relations
//!   ([`spl`]).
//! * **Propagation** — near-field-aware spherical spreading plus frequency-
//!   dependent absorption, producing received SPL at a distance
//!   ([`propagation`]).
//! * **Source** — the attacker's signal chain: sine generator → amplifier →
//!   underwater speaker (Clark Synthesis AQ339 preset) ([`source`]).
//! * **Sweep** — frequency-sweep planning used by the paper's §4.1
//!   methodology ([`sweep`]).
//! * **Cache** — exact-key, deterministic memoization of the transfer
//!   path for campaign hot loops ([`cache`]).
//!
//! # Example
//!
//! ```
//! use deepnote_acoustics::prelude::*;
//!
//! let water = WaterConditions::tank_freshwater();
//! let chain = SignalChain::paper_setup(Frequency::from_hz(650.0));
//! let emission = chain.emission();
//! let received = received_spl(&emission, Distance::from_cm(10.0), &water);
//! assert!(received.db() < emission.source_level.db());
//! ```

pub mod absorption;
pub mod cache;
pub mod directivity;
pub mod medium;
pub mod propagation;
pub mod source;
pub mod spl;
pub mod sweep;
pub mod units;

pub use absorption::absorption_db_per_km;
pub use cache::{OperatingPoint, TransferPathTable};
pub use directivity::{half_power_beamwidth_rad, off_axis_attenuation_db, piston_directivity};
pub use medium::{Medium, WaterConditions};
pub use propagation::{
    lloyd_mirror_factor, max_effective_range_m, received_spl, received_spl_lloyd,
    received_spl_with, transmission_loss_db, PropagationModel,
};
pub use source::{AcousticEmission, Amplifier, SignalChain, SineSource, Speaker};
pub use spl::{Spl, SplReference};
pub use sweep::{SweepPlan, SweepStep};
pub use units::{Celsius, Depth, Distance, Frequency, Gain, Salinity};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::absorption::absorption_db_per_km;
    pub use crate::cache::{OperatingPoint, TransferPathTable};
    pub use crate::directivity::{
        half_power_beamwidth_rad, off_axis_attenuation_db, piston_directivity,
    };
    pub use crate::medium::{Medium, WaterConditions};
    pub use crate::propagation::{
        lloyd_mirror_factor, max_effective_range_m, received_spl, received_spl_lloyd,
        received_spl_with, transmission_loss_db, PropagationModel,
    };
    pub use crate::source::{AcousticEmission, Amplifier, SignalChain, SineSource, Speaker};
    pub use crate::spl::{Spl, SplReference};
    pub use crate::sweep::{SweepPlan, SweepStep};
    pub use crate::units::{Celsius, Depth, Distance, Frequency, Gain, Salinity};
}
