//! Exact-key memoization of the acoustic transfer path.
//!
//! The received SPL (and everything downstream of it: chassis
//! displacement, servo off-track excursion) is a pure function of the
//! steady-state operating point — attack frequency, receiver distance,
//! water column, structural scenario. Campaign hot loops evaluate the
//! same handful of operating points millions of times (every heartbeat
//! retune, every metrics scrape, every traced degraded op re-walks the
//! spreading-loss/absorption/servo chain), so a table precomputed at
//! setup turns that recomputation into a lookup.
//!
//! # Determinism
//!
//! The table must stay inside the workspace's determinism lint regime
//! (DESIGN.md §7): no `HashMap` (iteration order), no hashing of
//! floats. Instead every [`OperatingPoint`] is reduced to a bit-exact
//! integer key — the IEEE-754 bit patterns of its coordinates via
//! [`f64::to_bits`] plus the caller's context discriminant — and the
//! table is a `Vec` sorted by that key, probed with binary search.
//! Lookups therefore hit only for *exactly* the operating point that
//! was precomputed (no epsilon matching: `0.1 + 0.2` will not find
//! `0.3`), which is precisely what memoizing a pure function needs:
//! a hit returns the very value the miss path would recompute, so
//! results are byte-identical with the cache on or off.
//!
//! The table is generic over the cached value so each layer stores
//! what it needs: received SPL and chassis displacement at the
//! testbed, residual off-track nanometers at the servo consumers.

use crate::medium::WaterConditions;
use crate::units::{Distance, Frequency};

/// One steady-state tone: attack frequency, receiver distance, water
/// column, plus a caller-supplied discriminant for everything the
/// acoustics layer cannot name (this crate sits below the structural
/// model, so e.g. the scenario enters as its numeric id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    frequency: Frequency,
    distance: Distance,
    water: WaterConditions,
    context: u64,
}

/// The bit-exact sort/search key for an operating point.
type Key = [u64; 6];

impl OperatingPoint {
    /// Builds an operating point. `context` discriminates anything
    /// beyond the acoustic coordinates (structural scenario, drive
    /// model, …); use `0` when there is nothing to discriminate.
    pub fn new(
        frequency: Frequency,
        distance: Distance,
        water: &WaterConditions,
        context: u64,
    ) -> Self {
        OperatingPoint {
            frequency,
            distance,
            water: *water,
            context,
        }
    }

    /// Returns a copy keyed to a different frequency. Consumers that
    /// sit at a fixed position (a drive at its rack slot) keep one
    /// point as a template and mint per-tone keys with this.
    pub fn with_frequency(mut self, frequency: Frequency) -> Self {
        self.frequency = frequency;
        self
    }

    /// The attack frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// The receiver distance.
    pub fn distance(&self) -> Distance {
        self.distance
    }

    /// The water column.
    pub fn water(&self) -> &WaterConditions {
        &self.water
    }

    /// The caller-supplied context discriminant.
    pub fn context(&self) -> u64 {
        self.context
    }

    /// The bit-exact key: IEEE-754 bit patterns, so two points compare
    /// equal exactly when every coordinate is the same bits (`-0.0`
    /// and `0.0` are distinct keys, which is fine — a miss only costs
    /// the recomputation a hit would have saved).
    fn key(&self) -> Key {
        [
            self.frequency.hz().to_bits(),
            self.distance.m().to_bits(),
            self.water.temperature().deg_c().to_bits(),
            self.water.salinity().psu().to_bits(),
            self.water.depth().m().to_bits(),
            self.context,
        ]
    }
}

/// A precomputed transfer-path table: sorted `(key, value)` pairs
/// probed with binary search. Build once at campaign setup, share
/// read-only (wrap in `Arc`) across the hot loop.
#[derive(Debug, Clone)]
pub struct TransferPathTable<V> {
    entries: Vec<(Key, V)>,
}

impl<V> Default for TransferPathTable<V> {
    fn default() -> Self {
        TransferPathTable::empty()
    }
}

impl<V> TransferPathTable<V> {
    /// A table with no entries; every lookup misses.
    pub fn empty() -> Self {
        TransferPathTable {
            entries: Vec::new(),
        }
    }

    /// Builds a table from `(point, value)` pairs. Entries are sorted
    /// by bit-exact key; on duplicate keys the first occurrence wins
    /// (the sort is stable), so the result is a deterministic function
    /// of the input sequence.
    pub fn build(points: impl IntoIterator<Item = (OperatingPoint, V)>) -> Self {
        let mut entries: Vec<(Key, V)> = points
            .into_iter()
            .map(|(point, value)| (point.key(), value))
            .collect();
        entries.sort_by_key(|e| e.0);
        entries.dedup_by(|a, b| a.0 == b.0);
        TransferPathTable { entries }
    }

    /// Builds a table by evaluating `compute` at every operating
    /// point — the precompute pass. `compute` must be the exact
    /// function the miss path calls, which is what guarantees cache-on
    /// and cache-off runs produce byte-identical results.
    pub fn precompute(
        points: impl IntoIterator<Item = OperatingPoint>,
        mut compute: impl FnMut(&OperatingPoint) -> V,
    ) -> Self {
        TransferPathTable::build(points.into_iter().map(|p| {
            let v = compute(&p);
            (p, v)
        }))
    }

    /// Looks up the value for exactly this operating point (bit-exact
    /// key match), or `None` — callers fall back to recomputing.
    pub fn get(&self, point: &OperatingPoint) -> Option<&V> {
        let key = point.key();
        self.entries
            .binary_search_by(|entry| entry.0.cmp(&key))
            .ok()
            .and_then(|i| self.entries.get(i))
            .map(|entry| &entry.1)
    }

    /// Number of distinct operating points in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Celsius, Depth, Salinity};

    fn water() -> WaterConditions {
        WaterConditions::new(
            Celsius::new(20.0),
            Salinity::from_psu(0.5),
            Depth::from_m(0.3),
        )
    }

    fn point(hz: f64, cm: f64, context: u64) -> OperatingPoint {
        OperatingPoint::new(
            Frequency::from_hz(hz),
            Distance::from_cm(cm),
            &water(),
            context,
        )
    }

    #[test]
    fn hits_exact_points_and_misses_everything_else() {
        let table = TransferPathTable::precompute(
            [
                point(650.0, 5.0, 1),
                point(650.0, 10.0, 1),
                point(800.0, 5.0, 1),
            ],
            |p| p.frequency().hz() + p.distance().m(),
        );
        assert_eq!(table.len(), 3);
        assert_eq!(table.get(&point(650.0, 5.0, 1)), Some(&650.05));
        assert_eq!(table.get(&point(650.0, 10.0, 1)), Some(&650.1));
        // Different context, frequency, or water → miss.
        assert_eq!(table.get(&point(650.0, 5.0, 2)), None);
        assert_eq!(table.get(&point(651.0, 5.0, 1)), None);
        let other_water = WaterConditions::new(
            Celsius::new(21.0),
            Salinity::from_psu(0.5),
            Depth::from_m(0.3),
        );
        let warm = OperatingPoint::new(
            Frequency::from_hz(650.0),
            Distance::from_cm(5.0),
            &other_water,
            1,
        );
        assert_eq!(table.get(&warm), None);
    }

    #[test]
    fn duplicate_points_keep_the_first_value() {
        let table =
            TransferPathTable::build([(point(100.0, 1.0, 0), 1u32), (point(100.0, 1.0, 0), 2u32)]);
        assert_eq!(table.len(), 1);
        assert_eq!(table.get(&point(100.0, 1.0, 0)), Some(&1));
    }

    #[test]
    fn empty_table_always_misses() {
        let table = TransferPathTable::<f64>::empty();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.get(&point(650.0, 5.0, 0)), None);
    }

    #[test]
    fn keys_are_bit_exact() {
        // 0.1 + 0.2 != 0.3 in IEEE-754: the table must not pretend
        // otherwise.
        let table = TransferPathTable::build([(point(0.3, 1.0, 0), 3u8)]);
        assert!(table.get(&point(0.1 + 0.2, 1.0, 0)).is_none());
        assert!(table.get(&point(0.3, 1.0, 0)).is_some());
    }

    #[test]
    fn large_tables_stay_sorted_and_searchable() {
        let points: Vec<_> = (0..500)
            .rev() // deliberately unsorted input
            .map(|i| (point(100.0 + i as f64, 5.0, 0), i))
            .collect();
        let table = TransferPathTable::build(points);
        assert_eq!(table.len(), 500);
        for i in (0..500).step_by(37) {
            assert_eq!(table.get(&point(100.0 + i as f64, 5.0, 0)), Some(&i));
        }
    }
}
