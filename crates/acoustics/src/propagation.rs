//! Sound propagation from source to target.
//!
//! Transmission loss has two parts:
//!
//! 1. **Geometric spreading.** At the centimetre ranges of the paper's tank
//!    experiments the speaker is a finite aperture, so we use a
//!    near-field-regularized spherical law: pressure falls as
//!    `a / (a + r)` where `a` is the source radius. At ranges far beyond
//!    `a` this converges to the familiar `20·log10(r)` spherical law;
//!    at `r = 0` (contact) the loss is zero.
//! 2. **Absorption.** Frequency- and water-dependent loss in dB/km from
//!    [`crate::absorption`] — negligible in the tank, decisive for the §5
//!    long-range discussion.
//!
//! [`PropagationModel`] selects spherical (default) or cylindrical
//! spreading (for shallow-channel long-range estimates).

use crate::absorption::absorption_loss_db;
use crate::medium::WaterConditions;
use crate::source::AcousticEmission;
use crate::spl::Spl;
use crate::units::{Depth, Distance, Frequency};
use serde::{Deserialize, Serialize};

/// Geometric spreading law.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PropagationModel {
    /// Spherical spreading with near-field regularization (open water).
    #[default]
    Spherical,
    /// Cylindrical spreading (sound trapped in a shallow channel): half
    /// the dB slope of spherical beyond the reference distance.
    Cylindrical,
    /// Empirical tank-scale law for the paper's testbed: in a small
    /// reverberant tank the field around a large transducer decays more
    /// slowly than spherical (direct + reverberant energy), following
    /// `p ∝ r^(−0.715)` referenced to 1 cm — fitted to the distance
    /// profile of the paper's Table 1.
    TankReverberant,
}

impl PropagationModel {
    /// Pressure-decay exponent of the tank-reverberant law.
    pub const TANK_EXPONENT: f64 = 0.715;
    /// Reference range of the tank-reverberant law, metres (1 cm).
    pub const TANK_REFERENCE_M: f64 = 0.01;

    /// Geometric spreading loss in dB at range `r` from a source of
    /// radius `a`. Zero at contact, monotone increasing in `r`.
    pub fn spreading_loss_db(self, r: Distance, a: Distance) -> f64 {
        let a_m = a.m().max(1e-3);
        let ratio = (a_m + r.m()) / a_m;
        match self {
            PropagationModel::Spherical => 20.0 * ratio.log10(),
            PropagationModel::Cylindrical => 10.0 * ratio.log10(),
            PropagationModel::TankReverberant => {
                // Zero loss at or inside the 1 cm reference point.
                let ratio = (r.m() / Self::TANK_REFERENCE_M).max(1.0);
                20.0 * Self::TANK_EXPONENT * ratio.log10()
            }
        }
    }
}

/// Total one-way transmission loss in dB: spreading + absorption.
///
/// # Example
///
/// ```
/// use deepnote_acoustics::prelude::*;
///
/// let chain = SignalChain::paper_setup(Frequency::from_hz(650.0));
/// let e = chain.emission();
/// let water = WaterConditions::tank_freshwater();
/// let tl_1cm = transmission_loss_db(&e, Distance::from_cm(1.0), &water,
///                                   PropagationModel::Spherical);
/// let tl_25cm = transmission_loss_db(&e, Distance::from_cm(25.0), &water,
///                                    PropagationModel::Spherical);
/// assert!(tl_25cm > tl_1cm);
/// ```
pub fn transmission_loss_db(
    emission: &AcousticEmission,
    range: Distance,
    water: &WaterConditions,
    model: PropagationModel,
) -> f64 {
    let spreading = model.spreading_loss_db(range, emission.source_radius);
    let absorption = absorption_loss_db(emission.frequency, water, range.km());
    spreading + absorption
}

/// The SPL received at `range` from the emitting source, using spherical
/// spreading. See [`received_spl_with`] to choose the spreading model.
pub fn received_spl(emission: &AcousticEmission, range: Distance, water: &WaterConditions) -> Spl {
    received_spl_with(emission, range, water, PropagationModel::Spherical)
}

/// The SPL received at `range` with an explicit spreading model.
pub fn received_spl_with(
    emission: &AcousticEmission,
    range: Distance,
    water: &WaterConditions,
    model: PropagationModel,
) -> Spl {
    emission
        .source_level
        .plus_db(-transmission_loss_db(emission, range, water, model))
}

/// The Lloyd-mirror interference factor: the pressure ratio (linear, in
/// `0..=2`) between the two-path field (direct + surface-reflected, with
/// the reflection phase-inverted at the pressure-release sea surface)
/// and the direct path alone.
///
/// Shallow sources attacking deep targets at long range sit deep in the
/// cancellation regime (`factor ≪ 1`): the surface "mirror" eats the
/// low-frequency energy, an inherent protection for deep deployments
/// against surface vessels.
///
/// # Panics
///
/// Panics if the horizontal range or either depth is not positive.
pub fn lloyd_mirror_factor(
    f: Frequency,
    water: &WaterConditions,
    horizontal_range: Distance,
    source_depth: Depth,
    target_depth: Depth,
) -> f64 {
    let (horizontal_range_m, source_depth_m, target_depth_m) =
        (horizontal_range.m(), source_depth.m(), target_depth.m());
    assert!(
        horizontal_range_m > 0.0 && source_depth_m > 0.0 && target_depth_m > 0.0,
        "range and depths must be positive"
    );
    let dz = source_depth_m - target_depth_m;
    let sz = source_depth_m + target_depth_m;
    let r1 = (horizontal_range_m * horizontal_range_m + dz * dz).sqrt();
    let r2 = (horizontal_range_m * horizontal_range_m + sz * sz).sqrt();
    let k = f.angular() / water.sound_speed_m_s();
    // p = e^{ikr1}/r1 − e^{ikr2}/r2 (surface reflection inverts phase);
    // normalize by the direct term 1/r1.
    let (re, im) = (
        1.0 / r1 * (k * r1).cos() - 1.0 / r2 * (k * r2).cos(),
        1.0 / r1 * (k * r1).sin() - 1.0 / r2 * (k * r2).sin(),
    );
    (re * re + im * im).sqrt() * r1
}

/// Received SPL including the surface-reflection (Lloyd mirror) path:
/// spherical spreading along the direct slant path, absorption, and the
/// interference factor.
pub fn received_spl_lloyd(
    emission: &AcousticEmission,
    water: &WaterConditions,
    horizontal_range: Distance,
    source_depth: Depth,
    target_depth: Depth,
) -> Spl {
    let r_m = horizontal_range.m();
    let dz = source_depth.m() - target_depth.m();
    let slant = Distance::from_m((r_m * r_m + dz * dz).sqrt());
    let factor = lloyd_mirror_factor(
        emission.frequency,
        water,
        horizontal_range,
        source_depth,
        target_depth,
    );
    received_spl_with(emission, slant, water, PropagationModel::Spherical)
        .plus_db(20.0 * factor.max(1e-9).log10())
}

/// The maximum range (in metres, searched up to `max_m`) at which the
/// received level still meets `required`, or `None` if even contact is too
/// quiet. Used for the §5 "Effective Range" ablation.
pub fn max_effective_range_m(
    emission: &AcousticEmission,
    required: Spl,
    water: &WaterConditions,
    model: PropagationModel,
    max_m: f64,
) -> Option<f64> {
    assert!(max_m > 0.0, "search range must be positive");
    let meets = |r_m: f64| {
        received_spl_with(emission, Distance::from_m(r_m), water, model).db() >= required.db()
    };
    if !meets(0.0) {
        return None;
    }
    if meets(max_m) {
        return Some(max_m);
    }
    // Bisection: loss is monotone in range.
    let (mut lo, mut hi) = (0.0, max_m);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SignalChain;
    use crate::units::Frequency;
    use proptest::prelude::*;

    fn emission_650() -> AcousticEmission {
        SignalChain::paper_setup(Frequency::from_hz(650.0)).emission()
    }

    #[test]
    fn contact_has_no_loss() {
        let e = emission_650();
        let w = WaterConditions::tank_freshwater();
        let tl = transmission_loss_db(&e, Distance::ZERO, &w, PropagationModel::Spherical);
        assert!(tl.abs() < 1e-9, "tl = {tl}");
        assert!((received_spl(&e, Distance::ZERO, &w).db() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn table1_distances_are_ordered() {
        let e = emission_650();
        let w = WaterConditions::tank_freshwater();
        let levels: Vec<f64> = [1.0, 5.0, 10.0, 15.0, 20.0, 25.0]
            .iter()
            .map(|&cm| received_spl(&e, Distance::from_cm(cm), &w).db())
            .collect();
        for pair in levels.windows(2) {
            assert!(pair[0] > pair[1], "levels not decreasing: {levels:?}");
        }
        // The whole tank-scale span stays within ~15 dB: near-field.
        assert!(
            levels[0] - levels[5] < 16.0,
            "span = {}",
            levels[0] - levels[5]
        );
    }

    #[test]
    fn far_field_converges_to_spherical_law() {
        let e = emission_650();
        let model = PropagationModel::Spherical;
        let a = e.source_radius;
        let tl_100 = model.spreading_loss_db(Distance::from_m(100.0), a);
        let tl_1000 = model.spreading_loss_db(Distance::from_m(1000.0), a);
        // One decade of range ⇒ ~20 dB in the far field.
        assert!((tl_1000 - tl_100 - 20.0).abs() < 0.1);
    }

    #[test]
    fn tank_law_matches_fitted_profile() {
        let model = PropagationModel::TankReverberant;
        let a = Distance::from_cm(6.0);
        // No loss at the 1 cm reference (and inside it).
        assert_eq!(model.spreading_loss_db(Distance::from_cm(1.0), a), 0.0);
        assert_eq!(model.spreading_loss_db(Distance::from_cm(0.5), a), 0.0);
        // One decade of range: 20·0.715 ≈ 14.3 dB.
        let tl10 = model.spreading_loss_db(Distance::from_cm(10.0), a);
        assert!((tl10 - 14.3).abs() < 0.1, "tl10 = {tl10}");
        // Slower than spherical from the same aperture at long range.
        let far = Distance::from_m(10.0);
        assert!(
            model.spreading_loss_db(far, a)
                < PropagationModel::Spherical.spreading_loss_db(far, Distance::from_cm(1.0))
        );
    }

    #[test]
    fn cylindrical_spreads_slower() {
        let a = Distance::from_cm(6.0);
        let r = Distance::from_m(500.0);
        let sph = PropagationModel::Spherical.spreading_loss_db(r, a);
        let cyl = PropagationModel::Cylindrical.spreading_loss_db(r, a);
        assert!((sph - 2.0 * cyl).abs() < 1e-9);
    }

    #[test]
    fn effective_range_extends_with_louder_source() {
        let w = WaterConditions::natick_seawater();
        let quiet = emission_650();
        let loud = AcousticEmission {
            source_level: quiet.source_level.plus_db(40.0),
            ..quiet
        };
        let need = Spl::water_db(126.0);
        let r_quiet =
            max_effective_range_m(&quiet, need, &w, PropagationModel::Spherical, 1e5).unwrap();
        let r_loud =
            max_effective_range_m(&loud, need, &w, PropagationModel::Spherical, 1e5).unwrap();
        assert!(r_loud > 10.0 * r_quiet, "quiet={r_quiet} loud={r_loud}");
    }

    #[test]
    fn effective_range_none_when_source_too_quiet() {
        let e = emission_650();
        let w = WaterConditions::tank_freshwater();
        assert!(max_effective_range_m(
            &e,
            Spl::water_db(200.0),
            &w,
            PropagationModel::Spherical,
            1e5
        )
        .is_none());
    }

    #[test]
    fn lloyd_mirror_cancels_for_shallow_sources_at_long_range() {
        let w = WaterConditions::natick_seawater();
        let f = Frequency::from_hz(650.0);
        // Shallow source (2 m) vs deep source (30 m), target at 36 m,
        // 10 km out: the shallow source is deep in cancellation.
        let shallow = lloyd_mirror_factor(
            f,
            &w,
            Distance::from_km(10.0),
            Depth::from_m(2.0),
            Depth::from_m(36.0),
        );
        let deep = lloyd_mirror_factor(
            f,
            &w,
            Distance::from_km(10.0),
            Depth::from_m(30.0),
            Depth::from_m(36.0),
        );
        assert!(shallow < 0.15, "shallow factor = {shallow}");
        assert!(deep > 2.0 * shallow, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn lloyd_mirror_near_field_shows_interference_fringes() {
        let w = WaterConditions::natick_seawater();
        let f = Frequency::from_khz(5.0);
        // Close in, the factor oscillates between ~0 (null) and ~2
        // (constructive); scan a range span and require both extremes.
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut r = 50.0;
        while r < 500.0 {
            let v = lloyd_mirror_factor(
                f,
                &w,
                Distance::from_m(r),
                Depth::from_m(10.0),
                Depth::from_m(36.0),
            );
            min = min.min(v);
            max = max.max(v);
            r += 0.5;
        }
        assert!(min < 0.4, "min = {min}");
        assert!(max > 1.5, "max = {max}");
        assert!(max <= 2.0 + 1e-9);
    }

    #[test]
    fn lloyd_received_level_below_free_field_when_cancelling() {
        let w = WaterConditions::natick_seawater();
        let e = AcousticEmission {
            source_level: Spl::water_db(200.0),
            ..emission_650()
        };
        let free = received_spl_with(
            &e,
            Distance::from_m(10_000.0),
            &w,
            PropagationModel::Spherical,
        );
        let mirrored = received_spl_lloyd(
            &e,
            &w,
            Distance::from_km(10.0),
            Depth::from_m(2.0),
            Depth::from_m(36.0),
        );
        assert!(
            mirrored.db() < free.db() - 10.0,
            "mirrored {mirrored} vs free {free}"
        );
    }

    proptest! {
        /// The Lloyd factor is bounded by 2 (full constructive).
        #[test]
        fn lloyd_factor_bounded(r in 10.0f64..50_000.0, zs in 1.0f64..100.0, zt in 1.0f64..100.0, khz in 0.1f64..10.0) {
            let w = WaterConditions::natick_seawater();
            let v = lloyd_mirror_factor(Frequency::from_khz(khz), &w, Distance::from_m(r), Depth::from_m(zs), Depth::from_m(zt));
            prop_assert!((0.0..=2.0 + 1e-6).contains(&v), "factor = {}", v);
        }

        /// Transmission loss is monotone in range.
        #[test]
        fn loss_monotone_in_range(r1 in 0.0f64..1_000.0, dr in 0.001f64..1_000.0) {
            let e = emission_650();
            let w = WaterConditions::natick_seawater();
            let tl1 = transmission_loss_db(&e, Distance::from_m(r1), &w, PropagationModel::Spherical);
            let tl2 = transmission_loss_db(&e, Distance::from_m(r1 + dr), &w, PropagationModel::Spherical);
            prop_assert!(tl2 > tl1);
        }

        /// Received SPL never exceeds the source level.
        #[test]
        fn received_bounded_by_source(r in 0.0f64..10_000.0) {
            let e = emission_650();
            let w = WaterConditions::natick_seawater();
            prop_assert!(received_spl(&e, Distance::from_m(r), &w).db() <= e.source_level.db() + 1e-12);
        }
    }
}
