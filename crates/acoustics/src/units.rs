//! Strongly typed physical units.
//!
//! Newtypes prevent the classic mixups in acoustic code: Hz vs kHz,
//! metres vs centimetres, dB re 20 µPa vs dB re 1 µPa. Constructors
//! validate ranges; accessors expose raw `f64`s for math.

use core::fmt;
use core::ops::{Add, Div, Mul, Sub};
use serde::{Deserialize, Serialize};

macro_rules! assert_finite {
    ($v:expr, $what:literal) => {
        assert!(
            $v.is_finite(),
            concat!($what, " must be finite, got {}"),
            $v
        )
    };
}

/// An acoustic frequency.
///
/// # Example
///
/// ```
/// use deepnote_acoustics::Frequency;
///
/// let f = Frequency::from_khz(1.3);
/// assert_eq!(f.hz(), 1300.0);
/// assert_eq!(f.khz(), 1.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is negative or non-finite.
    pub fn from_hz(hz: f64) -> Self {
        assert_finite!(hz, "frequency");
        assert!(hz >= 0.0, "frequency must be non-negative, got {hz}");
        Frequency { hz }
    }

    /// Creates a frequency from kilohertz.
    pub fn from_khz(khz: f64) -> Self {
        Self::from_hz(khz * 1_000.0)
    }

    /// Hertz.
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Kilohertz.
    pub fn khz(self) -> f64 {
        self.hz / 1_000.0
    }

    /// The period of one cycle in seconds. Infinite for 0 Hz.
    pub fn period_s(self) -> f64 {
        // deepnote-lint: allow(float-eq): 0.0 is an exact sentinel (DC), not a computed value
        if self.hz == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.hz
        }
    }

    /// Angular frequency ω = 2πf in rad/s.
    pub fn angular(self) -> f64 {
        std::f64::consts::TAU * self.hz
    }

    /// Acoustic wavelength in a medium with the given sound speed (m/s).
    ///
    /// # Panics
    ///
    /// Panics if `sound_speed_m_s` is not positive.
    pub fn wavelength_m(self, sound_speed_m_s: f64) -> f64 {
        assert!(sound_speed_m_s > 0.0, "sound speed must be positive");
        // deepnote-lint: allow(float-eq): 0.0 is an exact sentinel (DC), not a computed value
        if self.hz == 0.0 {
            f64::INFINITY
        } else {
            sound_speed_m_s / self.hz
        }
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz >= 1_000.0 {
            write!(f, "{:.3}kHz", self.khz())
        } else {
            write!(f, "{:.1}Hz", self.hz)
        }
    }
}

/// A distance.
///
/// # Example
///
/// ```
/// use deepnote_acoustics::Distance;
///
/// let d = Distance::from_cm(25.0);
/// assert_eq!(d.m(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Distance {
    m: f64,
}

impl Distance {
    /// Zero distance (contact).
    pub const ZERO: Distance = Distance { m: 0.0 };

    /// Creates a distance from metres.
    ///
    /// # Panics
    ///
    /// Panics if `m` is negative or non-finite.
    pub fn from_m(m: f64) -> Self {
        assert_finite!(m, "distance");
        assert!(m >= 0.0, "distance must be non-negative, got {m}");
        Distance { m }
    }

    /// Creates a distance from centimetres.
    pub fn from_cm(cm: f64) -> Self {
        Self::from_m(cm / 100.0)
    }

    /// Creates a distance from kilometres.
    pub fn from_km(km: f64) -> Self {
        Self::from_m(km * 1_000.0)
    }

    /// Metres.
    pub fn m(self) -> f64 {
        self.m
    }

    /// Centimetres.
    pub fn cm(self) -> f64 {
        self.m * 100.0
    }

    /// Kilometres.
    pub fn km(self) -> f64 {
        self.m / 1_000.0
    }
}

impl Add for Distance {
    type Output = Distance;
    fn add(self, rhs: Distance) -> Distance {
        Distance::from_m(self.m + rhs.m)
    }
}

impl Sub for Distance {
    type Output = Distance;
    fn sub(self, rhs: Distance) -> Distance {
        Distance::from_m((self.m - rhs.m).max(0.0))
    }
}

impl Mul<f64> for Distance {
    type Output = Distance;
    fn mul(self, rhs: f64) -> Distance {
        Distance::from_m(self.m * rhs)
    }
}

impl Div<f64> for Distance {
    type Output = Distance;
    fn div(self, rhs: f64) -> Distance {
        // deepnote-lint: allow(float-eq): guards exact division by literal zero
        assert!(rhs != 0.0, "division of distance by zero");
        Distance::from_m(self.m / rhs)
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.m < 1.0 {
            write!(f, "{:.1}cm", self.cm())
        } else if self.m < 1_000.0 {
            write!(f, "{:.2}m", self.m)
        } else {
            write!(f, "{:.3}km", self.km())
        }
    }
}

/// A gain (or, negative, an attenuation) in decibels — a ratio applied
/// to a signal, not an absolute level like [`crate::Spl`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Gain(f64);

impl Gain {
    /// Unity gain (0 dB).
    pub const UNITY: Gain = Gain(0.0);

    /// Creates a gain from decibels.
    ///
    /// # Panics
    ///
    /// Panics if `db` is non-finite.
    pub fn from_db(db: f64) -> Self {
        assert_finite!(db, "gain");
        Gain(db)
    }

    /// Decibels.
    pub fn db(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Gain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.1}dB", self.0)
    }
}

/// A temperature in degrees Celsius.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature.
    ///
    /// # Panics
    ///
    /// Panics outside the liquid-water range used by the sound-speed
    /// formulas (−2 °C to 45 °C).
    pub fn new(deg_c: f64) -> Self {
        assert_finite!(deg_c, "temperature");
        assert!(
            (-2.0..=45.0).contains(&deg_c),
            "temperature {deg_c} °C outside the validity range of the water formulas (−2..45)"
        );
        Celsius(deg_c)
    }

    /// Degrees Celsius.
    pub fn deg_c(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°C", self.0)
    }
}

/// Water salinity in practical salinity units (≈ parts per thousand).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Salinity(f64);

impl Salinity {
    /// Fresh water (0 PSU).
    pub const FRESH: Salinity = Salinity(0.0);
    /// Typical open-ocean salinity (35 PSU).
    pub const OCEAN: Salinity = Salinity(35.0);

    /// Creates a salinity value.
    ///
    /// # Panics
    ///
    /// Panics outside 0–45 PSU (the validity range of Medwin's equation).
    pub fn from_psu(psu: f64) -> Self {
        assert_finite!(psu, "salinity");
        assert!(
            (0.0..=45.0).contains(&psu),
            "salinity {psu} PSU outside 0..45"
        );
        Salinity(psu)
    }

    /// Practical salinity units.
    pub fn psu(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Salinity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}PSU", self.0)
    }
}

/// Depth below the water surface.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Depth(f64);

impl Depth {
    /// The surface.
    pub const SURFACE: Depth = Depth(0.0);

    /// Creates a depth in metres.
    ///
    /// # Panics
    ///
    /// Panics if negative, non-finite, or deeper than the ocean (11 km).
    pub fn from_m(m: f64) -> Self {
        assert_finite!(m, "depth");
        assert!(
            (0.0..=11_000.0).contains(&m),
            "depth {m} m outside 0..11000"
        );
        Depth(m)
    }

    /// Metres below the surface.
    pub fn m(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Depth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}m deep", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_khz(16.9);
        assert!((f.hz() - 16_900.0).abs() < 1e-9);
        assert!((Frequency::from_hz(650.0).period_s() - 1.0 / 650.0).abs() < 1e-12);
        assert_eq!(Frequency::from_hz(0.0).period_s(), f64::INFINITY);
    }

    #[test]
    fn frequency_wavelength() {
        // 1500 m/s water, 1500 Hz → 1 m wavelength.
        let f = Frequency::from_hz(1500.0);
        assert!((f.wavelength_m(1500.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn frequency_rejects_negative() {
        Frequency::from_hz(-1.0);
    }

    #[test]
    fn distance_conversions_and_arithmetic() {
        let d = Distance::from_cm(150.0);
        assert!((d.m() - 1.5).abs() < 1e-12);
        assert!((Distance::from_km(2.0).m() - 2_000.0).abs() < 1e-9);
        assert_eq!((d + Distance::from_cm(50.0)).m(), 2.0);
        assert_eq!((d * 2.0).m(), 3.0);
        assert_eq!((d / 3.0).cm(), 50.0);
        // Subtraction saturates at zero.
        assert_eq!((Distance::from_m(1.0) - Distance::from_m(5.0)).m(), 0.0);
    }

    #[test]
    fn displays_pick_units() {
        assert_eq!(Frequency::from_hz(650.0).to_string(), "650.0Hz");
        assert_eq!(Frequency::from_khz(1.3).to_string(), "1.300kHz");
        assert_eq!(Distance::from_cm(25.0).to_string(), "25.0cm");
        assert_eq!(Distance::from_m(36.0).to_string(), "36.00m");
        assert_eq!(Distance::from_km(1.0).to_string(), "1.000km");
    }

    #[test]
    fn environment_units_validate() {
        assert_eq!(Celsius::new(20.0).deg_c(), 20.0);
        assert_eq!(Salinity::OCEAN.psu(), 35.0);
        assert_eq!(Depth::from_m(36.0).m(), 36.0);
    }

    #[test]
    #[should_panic(expected = "salinity")]
    fn salinity_range_checked() {
        Salinity::from_psu(99.0);
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn temperature_range_checked() {
        Celsius::new(80.0);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn depth_range_checked() {
        Depth::from_m(-3.0);
    }
}
