//! Online SLO burn-rate incident detection.
//!
//! The classic SRE formulation: with an availability objective `o`, the
//! error *budget* is `1 − o`, and the burn rate over a trailing window
//! is `error_ratio / (1 − o)` — burn 1 spends the budget exactly on
//! schedule, burn 10 exhausts a 30-day budget in 3 days. Two windows
//! watch the same stream: a **fast** window with a high threshold
//! (pages within seconds of a real outage) and a **slow** window with a
//! low threshold (catches a simmering degradation the fast window's
//! noise gate would forgive). Each window is a raised/cleared state
//! machine; every transition lands in the alert timeline with the burn
//! rate and sample count that justified it.
//!
//! Operations are folded into fixed-width buckets keyed by integer
//! bucket index, so the monitor is O(window/bucket) per tick and — like
//! everything else in this workspace — a pure function of its inputs.

use deepnote_sim::{SimDuration, SimTime};

/// One trailing window and its paging threshold.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BurnWindow {
    /// Trailing window length.
    pub window: SimDuration,
    /// Burn rate at or above which the window raises.
    pub threshold: f64,
}

/// The monitor's configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SloPolicy {
    /// Availability objective in `(0, 1)`; the budget is `1 − objective`.
    pub objective: f64,
    /// The fast-burn window (short, high threshold).
    pub fast: BurnWindow,
    /// The slow-burn window (long, low threshold).
    pub slow: BurnWindow,
    /// Bucket width for the trailing aggregation.
    pub bucket: SimDuration,
    /// Minimum operations in a window before it may raise (noise gate).
    pub min_ops: u64,
}

impl Default for SloPolicy {
    /// 99% availability, 10 s fast window paging at 10× burn, 40 s slow
    /// window paging at 2× burn — scaled to campaign timelines the way
    /// the canonical 5 m/1 h/6 h windows scale to a 30-day budget.
    fn default() -> Self {
        SloPolicy {
            objective: 0.99,
            fast: BurnWindow {
                window: SimDuration::from_secs(10),
                threshold: 10.0,
            },
            slow: BurnWindow {
                window: SimDuration::from_secs(40),
                threshold: 2.0,
            },
            bucket: SimDuration::from_secs(1),
            min_ops: 20,
        }
    }
}

/// One transition of a window's raised/cleared state.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// When the monitor observed the transition.
    pub at: SimTime,
    /// `"fast"` or `"slow"`.
    pub window: &'static str,
    /// `true` for raised, `false` for cleared.
    pub raised: bool,
    /// Burn rate over the window at the transition.
    pub burn_rate: f64,
    /// Error ratio over the window at the transition.
    pub error_ratio: f64,
    /// Operations observed in the window at the transition.
    pub ops: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    index: u64,
    ok: u64,
    err: u64,
}

/// The online monitor. Feed every operation outcome through
/// [`record_op`](Self::record_op) and call [`tick`](Self::tick) at a
/// fixed cadence; transitions accumulate in the alert timeline.
#[derive(Debug, Clone)]
pub struct BurnRateMonitor {
    policy: SloPolicy,
    buckets: Vec<Bucket>,
    alerts: Vec<SloAlert>,
    fast_raised: bool,
    slow_raised: bool,
}

impl BurnRateMonitor {
    /// A monitor with no history.
    pub fn new(policy: SloPolicy) -> Self {
        BurnRateMonitor {
            policy,
            buckets: Vec::new(),
            alerts: Vec::new(),
            fast_raised: false,
            slow_raised: false,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    fn bucket_nanos(&self) -> u64 {
        self.policy.bucket.as_nanos().max(1)
    }

    /// Folds one operation outcome into the trailing buckets.
    pub fn record_op(&mut self, at: SimTime, ok: bool) {
        let index = at.as_nanos() / self.bucket_nanos();
        // The campaign feeds time-ordered events; scan from the back so
        // the common case is O(1) and stragglers still land correctly.
        let pos = self.buckets.iter().rposition(|b| b.index <= index);
        let bucket = match pos {
            Some(i) if self.buckets[i].index == index => &mut self.buckets[i],
            Some(i) => {
                self.buckets.insert(i + 1, Bucket::default());
                self.buckets[i + 1].index = index;
                &mut self.buckets[i + 1]
            }
            None => {
                self.buckets.insert(0, Bucket::default());
                self.buckets[0].index = index;
                &mut self.buckets[0]
            }
        };
        if ok {
            bucket.ok += 1;
        } else {
            bucket.err += 1;
        }
    }

    fn window_totals(&self, now: SimTime, window: SimDuration) -> (u64, u64) {
        let bucket = self.bucket_nanos();
        let now_index = now.as_nanos() / bucket;
        let span = (window.as_nanos() / bucket).max(1);
        let floor = now_index.saturating_sub(span - 1);
        self.buckets
            .iter()
            .filter(|b| b.index >= floor && b.index <= now_index)
            .fold((0, 0), |(ok, err), b| (ok + b.ok, err + b.err))
    }

    /// Evaluates both windows at `now`, appending any transitions to
    /// the timeline, and prunes buckets older than the slow window.
    pub fn tick(&mut self, now: SimTime) {
        let policy = self.policy;
        let fast = Self::evaluate(
            &policy,
            self.window_totals(now, policy.fast.window),
            policy.fast.threshold,
        );
        let slow = Self::evaluate(
            &policy,
            self.window_totals(now, policy.slow.window),
            policy.slow.threshold,
        );
        let mut fast_raised = self.fast_raised;
        let mut slow_raised = self.slow_raised;
        Self::transition(&mut self.alerts, now, "fast", &mut fast_raised, fast);
        Self::transition(&mut self.alerts, now, "slow", &mut slow_raised, slow);
        self.fast_raised = fast_raised;
        self.slow_raised = slow_raised;
        // Retention: the slow window plus one bucket of slack.
        let bucket = self.bucket_nanos();
        let keep = (policy.slow.window.as_nanos() / bucket).max(1) + 1;
        let floor = (now.as_nanos() / bucket).saturating_sub(keep);
        self.buckets.retain(|b| b.index >= floor);
    }

    /// `(raise?, burn, error_ratio, ops)` for one window's totals.
    fn evaluate(
        policy: &SloPolicy,
        (ok, err): (u64, u64),
        threshold: f64,
    ) -> (bool, f64, f64, u64) {
        let ops = ok + err;
        if ops == 0 {
            return (false, 0.0, 0.0, 0);
        }
        let error_ratio = err as f64 / ops as f64;
        let budget = (1.0 - policy.objective).max(1e-9);
        let burn = error_ratio / budget;
        let raise = burn >= threshold && ops >= policy.min_ops;
        (raise, burn, error_ratio, ops)
    }

    fn transition(
        alerts: &mut Vec<SloAlert>,
        now: SimTime,
        window: &'static str,
        raised: &mut bool,
        (raise, burn_rate, error_ratio, ops): (bool, f64, f64, u64),
    ) {
        if raise == *raised {
            return;
        }
        *raised = raise;
        alerts.push(SloAlert {
            at: now,
            window,
            raised: raise,
            burn_rate,
            error_ratio,
            ops,
        });
    }

    /// The transition timeline so far.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Consumes the monitor into its timeline.
    pub fn into_alerts(self) -> Vec<SloAlert> {
        self.alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(m: &mut BurnRateMonitor, from_s: u64, to_s: u64, per_s: u64, ok: bool) {
        for s in from_s..to_s {
            for i in 0..per_s {
                m.record_op(SimTime::from_nanos(s * 1_000_000_000 + i * 1_000_000), ok);
            }
        }
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let mut m = BurnRateMonitor::new(SloPolicy::default());
        feed(&mut m, 0, 60, 20, true);
        for s in (0..60).step_by(5) {
            m.tick(SimTime::from_secs(s));
        }
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn outage_raises_fast_then_clears_after_recovery() {
        let mut m = BurnRateMonitor::new(SloPolicy::default());
        feed(&mut m, 0, 20, 20, true);
        m.tick(SimTime::from_secs(20));
        assert!(m.alerts().is_empty(), "{:?}", m.alerts());
        // Total outage for 20 s.
        feed(&mut m, 20, 40, 20, false);
        m.tick(SimTime::from_secs(30));
        let raised: Vec<_> = m.alerts().iter().filter(|a| a.raised).collect();
        assert!(
            raised.iter().any(|a| a.window == "fast"),
            "{:?}",
            m.alerts()
        );
        assert!(raised.iter().all(|a| a.burn_rate >= 10.0));
        // Recovery: everything succeeds again, both windows drain.
        feed(&mut m, 40, 120, 20, true);
        for s in (40..120).step_by(5) {
            m.tick(SimTime::from_secs(s));
        }
        let last_fast = m.alerts().iter().rfind(|a| a.window == "fast").unwrap();
        assert!(!last_fast.raised, "{:?}", m.alerts());
    }

    #[test]
    fn slow_window_catches_a_simmering_burn_the_fast_window_forgives() {
        let mut m = BurnRateMonitor::new(SloPolicy::default());
        // 5% errors: burn 5 — under the fast threshold (10), over the
        // slow one (2).
        for s in 0..60u64 {
            for i in 0..20u64 {
                let ok = i != 0; // 1 in 20 fails
                m.record_op(SimTime::from_nanos(s * 1_000_000_000 + i * 1_000_000), ok);
            }
            m.tick(SimTime::from_secs(s));
        }
        assert!(m.alerts().iter().any(|a| a.window == "slow" && a.raised));
        assert!(!m.alerts().iter().any(|a| a.window == "fast" && a.raised));
    }

    #[test]
    fn thin_traffic_is_gated_by_min_ops() {
        let mut m = BurnRateMonitor::new(SloPolicy::default());
        // Five failures in ten seconds: a 100% error ratio, but far too
        // few samples to page on.
        for s in 0..5u64 {
            m.record_op(SimTime::from_secs(s), false);
        }
        m.tick(SimTime::from_secs(5));
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn out_of_order_records_still_land() {
        let mut m = BurnRateMonitor::new(SloPolicy::default());
        m.record_op(SimTime::from_secs(5), false);
        m.record_op(SimTime::from_secs(3), false);
        m.record_op(SimTime::from_secs(5), false);
        let (ok, err) = m.window_totals(SimTime::from_secs(5), SimDuration::from_secs(10));
        assert_eq!((ok, err), (0, 3));
    }
}
