//! The unified metrics registry: named per-layer time series.
//!
//! Unlike a production registry there is no background scraper thread —
//! the campaign event loop *is* the scraper: it registers its series up
//! front, then records one point per series at every fixed-interval
//! scrape event. Series order is registration order and points arrive
//! in time order, so the resulting report sections are deterministic.

use crate::tracer::Layer;
use deepnote_sim::SimTime;

/// What a series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone running total (faults injected, retries, syncs).
    Counter,
    /// Point-in-time level (SPL, queue depth, off-track excursion).
    Gauge,
}

impl MetricKind {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One sampled point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricPoint {
    /// Sample instant on the cluster timeline.
    pub at: SimTime,
    /// Sampled value.
    pub value: f64,
}

/// One named series.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Originating layer.
    pub layer: Layer,
    /// Series name (includes the node, e.g. `node0/seek_retries`).
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Points in scrape order.
    pub points: Vec<MetricPoint>,
}

/// Handle returned by [`MetricsRegistry::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(usize);

/// The registry: series are registered once, then recorded into by id.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    series: Vec<MetricSeries>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry { series: Vec::new() }
    }

    /// Registers a series; ids are dense and deterministic.
    pub fn register(
        &mut self,
        layer: Layer,
        name: impl Into<String>,
        kind: MetricKind,
    ) -> MetricId {
        self.series.push(MetricSeries {
            layer,
            name: name.into(),
            kind,
            points: Vec::new(),
        });
        MetricId(self.series.len() - 1)
    }

    /// Appends one point to a series (out-of-range ids are ignored —
    /// the registry is internal and never panics the serving path).
    pub fn record(&mut self, id: MetricId, at: SimTime, value: f64) {
        if let Some(s) = self.series.get_mut(id.0) {
            s.points.push(MetricPoint { at, value });
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Consumes the registry into its series, in registration order.
    pub fn into_series(self) -> Vec<MetricSeries> {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keep_registration_and_time_order() {
        let mut r = MetricsRegistry::new();
        let spl = r.register(Layer::Acoustics, "node0/spl_db", MetricKind::Gauge);
        let retries = r.register(Layer::Hdd, "node0/seek_retries", MetricKind::Counter);
        assert_eq!(r.len(), 2);
        r.record(spl, SimTime::from_secs(1), 120.0);
        r.record(retries, SimTime::from_secs(1), 3.0);
        r.record(spl, SimTime::from_secs(2), 131.5);
        let series = r.into_series();
        assert_eq!(series[0].name, "node0/spl_db");
        assert_eq!(series[0].points.len(), 2);
        assert_eq!(series[0].points[1].at, SimTime::from_secs(2));
        assert_eq!(series[1].kind, MetricKind::Counter);
        assert_eq!(series[1].points.len(), 1);
    }

    #[test]
    fn recording_into_a_bogus_id_is_a_no_op() {
        let mut r = MetricsRegistry::new();
        r.record(MetricId(99), SimTime::ZERO, 1.0);
        assert!(r.is_empty());
    }
}
