//! Deterministic cross-layer observability for the deepnote stack.
//!
//! The paper's causal chain — received SPL → head off-track → throughput
//! collapse → filesystem/application failure — spans five layers of this
//! workspace. This crate makes the whole chain visible on one timeline
//! without giving up the property everything else here is built on:
//! **a campaign is a pure function of its seed**. Every timestamp is a
//! [`deepnote_sim::SimTime`]; there are no wall clocks, no global state,
//! and the disabled tracer is a no-op handle a hot path can carry for
//! free.
//!
//! Three pieces:
//!
//! * [`tracer`] — span/instant events with per-layer filtering, a
//!   bounded ring buffer, and per-track time-offset mapping so events
//!   emitted on a node's *private* virtual clock land on the cluster's
//!   shared timeline.
//! * [`chrome`] — hand-written Chrome trace-event JSON export; the file
//!   loads in Perfetto (`ui.perfetto.dev`) and shows tone arrivals,
//!   servo excursions, device retries, quorum decisions, failovers, and
//!   scrubber repairs side by side.
//! * [`metrics`] + [`slo`] — a registry of named per-layer time series
//!   scraped at fixed intervals, and an online multi-window SLO
//!   burn-rate monitor (fast/slow burn, à la SRE) that produces the
//!   alert timeline the paper's victims lacked.
//!
//! [`schema`] is the hand-rolled JSON reader the CI job (and the
//! `deepnote trace-check` subcommand) uses to validate emitted traces
//! and reports without any external dependency.

pub mod chrome;
pub mod metrics;
pub mod schema;
pub mod slo;
pub mod tracer;

pub use chrome::export as export_chrome_trace;
pub use metrics::{MetricId, MetricKind, MetricPoint, MetricSeries, MetricsRegistry};
pub use slo::{BurnRateMonitor, BurnWindow, SloAlert, SloPolicy};
pub use tracer::{EventKind, Layer, TraceEvent, TraceLog, Tracer, Value, CONTROL_TRACK};
