//! The tracer: SimTime-stamped spans and instants in a bounded ring.
//!
//! A [`Tracer`] is a cheap-clone handle. Disabled (the default) it holds
//! nothing and every emit returns immediately — the serving path carries
//! it for free. Enabled, it appends [`TraceEvent`]s to a bounded buffer
//! behind a mutex; when the buffer fills, *new* events are counted as
//! dropped and the earliest window of the campaign is kept, so repeated
//! runs of the same seed still produce byte-identical logs.
//!
//! # Tracks and time offsets
//!
//! Every node in the cluster is its own virtual-time world (a private
//! [`deepnote_sim::Clock`]), embedded in the shared cluster timeline
//! through its `busy_until` bridging. Layers below the node (device,
//! filesystem, store) only know the private clock, so the tracer keeps a
//! per-track offset: the node sets `offset = dispatch_start − private_now`
//! before handing a request down, and every event emitted on that track
//! is shifted onto the cluster timeline at push time. Control-plane
//! emitters use [`CONTROL_TRACK`], whose offset is always zero.

use deepnote_sim::{SimDuration, SimTime};
use std::sync::{Arc, Mutex, MutexGuard};

/// The stack layer an event belongs to (the Perfetto category).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// Tone propagation: what SPL each enclosure receives.
    Acoustics,
    /// The mechanical drive: servo excursions, retries, parks.
    Hdd,
    /// The block layer: I/O errors and injected chaos faults.
    Blockdev,
    /// The filesystem: journal commits.
    Fs,
    /// The KV store: WAL syncs, memtable flushes, compactions.
    Kv,
    /// The cluster control plane: quorums, failovers, repairs.
    Cluster,
}

impl Layer {
    /// Every layer, in filter-mask order.
    pub const ALL: [Layer; 6] = [
        Layer::Acoustics,
        Layer::Hdd,
        Layer::Blockdev,
        Layer::Fs,
        Layer::Kv,
        Layer::Cluster,
    ];

    /// The layer's stable name (the `cat` field of the Chrome export).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Acoustics => "acoustics",
            Layer::Hdd => "hdd",
            Layer::Blockdev => "blockdev",
            Layer::Fs => "fs",
            Layer::Kv => "kv",
            Layer::Cluster => "cluster",
        }
    }

    fn bit(self) -> u8 {
        match self {
            Layer::Acoustics => 1,
            Layer::Hdd => 1 << 1,
            Layer::Blockdev => 1 << 2,
            Layer::Fs => 1 << 3,
            Layer::Kv => 1 << 4,
            Layer::Cluster => 1 << 5,
        }
    }
}

/// One event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counters, ids, counts).
    U64(u64),
    /// A float (physical quantities; serialized with `null` for
    /// non-finite values, like the campaign report JSON).
    F64(f64),
    /// A static label.
    Str(&'static str),
    /// An owned label (phase names and other dynamic strings).
    Text(String),
}

/// Span vs point-in-time event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span: `at .. at + dur` (Chrome `ph: "X"`).
    Span,
    /// An instantaneous event (Chrome `ph: "i"`).
    Instant,
}

/// One collected event, already on the cluster timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Cluster-timeline start.
    pub at: SimTime,
    /// Span duration (zero for instants).
    pub dur: SimDuration,
    /// Span or instant.
    pub kind: EventKind,
    /// Originating layer.
    pub layer: Layer,
    /// Track (thread row in Perfetto): node id, or [`CONTROL_TRACK`].
    pub track: u32,
    /// Event name.
    pub name: &'static str,
    /// Structured arguments, in emission order.
    pub args: Vec<(&'static str, Value)>,
}

/// The track control-plane events are emitted on (its offset is pinned
/// to zero: control-plane emitters already speak cluster time).
pub const CONTROL_TRACK: u32 = u32::MAX;

/// Everything a tracer collected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// Events rejected because the ring was full.
    pub dropped: u64,
}

#[derive(Debug)]
struct Ring {
    events: Vec<TraceEvent>,
    cap: usize,
    dropped: u64,
    /// Per-track nanosecond offsets private-clock → cluster timeline,
    /// indexed by track id (tracks are small node ids in practice).
    offsets: Vec<i64>,
}

impl Ring {
    fn offset(&self, track: u32) -> i64 {
        if track == CONTROL_TRACK {
            return 0;
        }
        self.offsets.get(track as usize).copied().unwrap_or(0)
    }

    fn push(&mut self, mut ev: TraceEvent) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let shifted = ev.at.as_nanos() as i64 + self.offset(ev.track);
        ev.at = SimTime::from_nanos(shifted.max(0) as u64);
        self.events.push(ev);
    }
}

#[derive(Debug)]
struct Inner {
    /// Bitmask of enabled layers.
    filter: u8,
    ring: Mutex<Ring>,
}

/// A handle events are emitted through. Clone freely; all clones share
/// one buffer. The default handle is disabled and free to carry.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// The no-op tracer: every emit returns immediately.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer collecting every layer into a ring of `cap` events.
    pub fn ring(cap: usize) -> Self {
        Self::with_layers(cap, &Layer::ALL)
    }

    /// A tracer collecting only the given layers.
    pub fn with_layers(cap: usize, layers: &[Layer]) -> Self {
        let filter = layers.iter().fold(0u8, |m, l| m | l.bit());
        Tracer {
            inner: Some(Arc::new(Inner {
                filter,
                ring: Mutex::new(Ring {
                    events: Vec::new(),
                    cap,
                    dropped: 0,
                    offsets: Vec::new(),
                }),
            })),
        }
    }

    /// Whether any collection is active at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether events of `layer` would be collected. Callers use this
    /// to skip building argument vectors on the fast path.
    pub fn enabled(&self, layer: Layer) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.filter & layer.bit() != 0)
    }

    /// A poison-proof lock: a panicking emitter cannot exist (emits do
    /// not panic), but the serving path must not unwrap either way.
    fn lock(inner: &Inner) -> MutexGuard<'_, Ring> {
        match inner.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Sets the private-clock → cluster-timeline offset for `track`.
    /// Nodes call this at every dispatch, before work enters the stack.
    pub fn set_offset(&self, track: u32, offset_nanos: i64) {
        let Some(inner) = &self.inner else { return };
        if track == CONTROL_TRACK {
            return;
        }
        let mut ring = Self::lock(inner);
        let idx = track as usize;
        if ring.offsets.len() <= idx {
            ring.offsets.resize(idx + 1, 0);
        }
        ring.offsets[idx] = offset_nanos;
    }

    /// Emits an instantaneous event at `at` (track-local time).
    pub fn instant(
        &self,
        layer: Layer,
        track: u32,
        name: &'static str,
        at: SimTime,
        args: Vec<(&'static str, Value)>,
    ) {
        self.emit(
            layer,
            track,
            name,
            at,
            SimDuration::ZERO,
            EventKind::Instant,
            args,
        );
    }

    /// Emits a complete span `[at, at + dur]` (track-local time).
    pub fn span(
        &self,
        layer: Layer,
        track: u32,
        name: &'static str,
        at: SimTime,
        dur: SimDuration,
        args: Vec<(&'static str, Value)>,
    ) {
        self.emit(layer, track, name, at, dur, EventKind::Span, args);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        layer: Layer,
        track: u32,
        name: &'static str,
        at: SimTime,
        dur: SimDuration,
        kind: EventKind,
        args: Vec<(&'static str, Value)>,
    ) {
        let Some(inner) = &self.inner else { return };
        if inner.filter & layer.bit() == 0 {
            return;
        }
        Self::lock(inner).push(TraceEvent {
            at,
            dur,
            kind,
            layer,
            track,
            name,
            args,
        });
    }

    /// Drains the collected log (events in emission order).
    pub fn take(&self) -> TraceLog {
        let Some(inner) = &self.inner else {
            return TraceLog::default();
        };
        let mut ring = Self::lock(inner);
        TraceLog {
            events: std::mem::take(&mut ring.events),
            dropped: std::mem::replace(&mut ring.dropped, 0),
        }
    }

    /// A copy of the collected log without draining it.
    pub fn snapshot(&self) -> TraceLog {
        let Some(inner) = &self.inner else {
            return TraceLog::default();
        };
        let ring = Self::lock(inner);
        TraceLog {
            events: ring.events.clone(),
            dropped: ring.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_collects_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.enabled(Layer::Hdd));
        t.instant(Layer::Hdd, 0, "x", SimTime::ZERO, Vec::new());
        assert_eq!(t.take(), TraceLog::default());
    }

    #[test]
    fn events_are_collected_in_emission_order() {
        let t = Tracer::ring(8);
        t.instant(
            Layer::Cluster,
            CONTROL_TRACK,
            "a",
            SimTime::from_secs(1),
            Vec::new(),
        );
        t.span(
            Layer::Kv,
            0,
            "b",
            SimTime::from_secs(2),
            SimDuration::from_millis(5),
            vec![("n", Value::U64(3))],
        );
        let log = t.take();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].name, "a");
        assert_eq!(log.events[1].kind, EventKind::Span);
        assert_eq!(log.events[1].args, vec![("n", Value::U64(3))]);
        assert_eq!(log.dropped, 0);
        // take() drained it.
        assert!(t.take().events.is_empty());
    }

    #[test]
    fn layer_filter_suppresses_other_layers() {
        let t = Tracer::with_layers(8, &[Layer::Acoustics]);
        assert!(t.enabled(Layer::Acoustics));
        assert!(!t.enabled(Layer::Kv));
        t.instant(Layer::Kv, 0, "kv", SimTime::ZERO, Vec::new());
        t.instant(Layer::Acoustics, 0, "tone", SimTime::ZERO, Vec::new());
        let log = t.take();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].name, "tone");
    }

    #[test]
    fn full_ring_keeps_the_earliest_window_and_counts_drops() {
        let t = Tracer::ring(2);
        for i in 0..5u64 {
            t.instant(
                Layer::Cluster,
                CONTROL_TRACK,
                "e",
                SimTime::from_secs(i),
                Vec::new(),
            );
        }
        let log = t.take();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped, 3);
        assert_eq!(log.events[0].at, SimTime::ZERO);
        assert_eq!(log.events[1].at, SimTime::from_secs(1));
    }

    #[test]
    fn track_offsets_map_private_clocks_onto_the_shared_timeline() {
        let t = Tracer::ring(8);
        // Node 3's private clock reads 2 s when the cluster is at 10 s.
        t.set_offset(3, 8_000_000_000);
        t.instant(Layer::Fs, 3, "commit", SimTime::from_secs(2), Vec::new());
        // Control events are never shifted.
        t.instant(
            Layer::Cluster,
            CONTROL_TRACK,
            "hb",
            SimTime::from_secs(10),
            Vec::new(),
        );
        let log = t.take();
        assert_eq!(log.events[0].at, SimTime::from_secs(10));
        assert_eq!(log.events[1].at, SimTime::from_secs(10));
    }

    #[test]
    fn negative_offsets_saturate_at_zero() {
        let t = Tracer::ring(8);
        t.set_offset(0, -5_000_000_000);
        t.instant(Layer::Hdd, 0, "io", SimTime::from_secs(1), Vec::new());
        let log = t.take();
        assert_eq!(log.events[0].at, SimTime::ZERO);
    }
}
