//! A hand-rolled JSON reader and the trace/report schema checks.
//!
//! CI validates every artifact the telemetry layer emits; pulling in a
//! JSON crate for that would break the workspace's no-new-dependencies
//! rule, so this module carries a small recursive-descent parser (object
//! keys keep their order in a `Vec` — no hash maps in determinism-policed
//! crates) and two validators: one for Chrome trace files, one for the
//! campaign report array `deepnote cluster --json` writes.

/// A parsed JSON value. Object members keep document order.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("json error at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8:
                    // it came in as &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// What a valid trace file contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Span + instant events (metadata excluded).
    pub events: usize,
    /// Complete spans.
    pub spans: usize,
    /// Instants.
    pub instants: usize,
    /// Distinct layer categories seen, sorted.
    pub layers: Vec<String>,
}

/// Validates a Chrome trace-event file as exported by [`crate::chrome`].
///
/// # Errors
///
/// A description of the first violation: unparsable JSON, a missing
/// `traceEvents` array, or an event without the fields Perfetto needs.
pub fn validate_trace(input: &str) -> Result<TraceSummary, String> {
    let doc = parse(input)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("top-level object must carry a traceEvents array")?;
    let mut summary = TraceSummary {
        events: 0,
        spans: 0,
        instants: 0,
        layers: Vec::new(),
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for field in ["pid", "tid"] {
            ev.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i}: missing numeric {field}"))?;
        }
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        match ph {
            "M" => continue,
            "X" | "i" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i}: ts must be finite and non-negative"));
        }
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i}: span missing dur"))?;
            if !dur.is_finite() || dur < 0.0 {
                return Err(format!("event {i}: dur must be finite and non-negative"));
            }
            summary.spans += 1;
        } else {
            summary.instants += 1;
        }
        summary.events += 1;
        let cat = ev
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing cat"))?;
        if !summary.layers.iter().any(|l| l == cat) {
            summary.layers.push(cat.to_string());
        }
    }
    summary.layers.sort();
    Ok(summary)
}

/// What a valid report array contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportSummary {
    /// Campaign runs in the array.
    pub runs: usize,
    /// Alert transitions across all runs.
    pub alerts: usize,
    /// Alert transitions that were raises.
    pub raised: usize,
    /// Metric series across all runs.
    pub series: usize,
}

/// Validates the report array written by `deepnote cluster --json`:
/// every run must carry its label, phases, alert timeline, and metric
/// series in the expected shapes.
///
/// # Errors
///
/// A description of the first violation.
pub fn validate_report(input: &str) -> Result<ReportSummary, String> {
    let doc = parse(input)?;
    let runs = doc.as_arr().ok_or("report file must be a JSON array")?;
    if runs.is_empty() {
        return Err("report array is empty".to_string());
    }
    let mut summary = ReportSummary {
        runs: runs.len(),
        alerts: 0,
        raised: 0,
        series: 0,
    };
    for (i, run) in runs.iter().enumerate() {
        run.get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("run {i}: missing label"))?;
        let phases = run
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("run {i}: missing phases array"))?;
        if phases.is_empty() {
            return Err(format!("run {i}: phases array is empty"));
        }
        let alerts = run
            .get("alerts")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("run {i}: missing alerts array"))?;
        for (k, a) in alerts.iter().enumerate() {
            a.get("at_s")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("run {i} alert {k}: missing at_s"))?;
            let window = a
                .get("window")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("run {i} alert {k}: missing window"))?;
            if window != "fast" && window != "slow" {
                return Err(format!("run {i} alert {k}: bad window {window:?}"));
            }
            a.get("burn_rate")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("run {i} alert {k}: missing burn_rate"))?;
            if a.get("raised")
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("run {i} alert {k}: missing raised"))?
            {
                summary.raised += 1;
            }
            summary.alerts += 1;
        }
        let series = run
            .get("series")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("run {i}: missing series array"))?;
        for (k, s) in series.iter().enumerate() {
            for field in ["layer", "name", "kind"] {
                s.get(field)
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("run {i} series {k}: missing {field}"))?;
            }
            let points = s
                .get("points")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("run {i} series {k}: missing points"))?;
            for (p, pt) in points.iter().enumerate() {
                pt.get("at_s")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("run {i} series {k} point {p}: missing at_s"))?;
                pt.get("value")
                    .ok_or_else(|| format!("run {i} series {k} point {p}: missing value"))?;
            }
            summary.series += 1;
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_roundtrips_the_basics() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":"x\"\n","c":null,"d":true}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x\"\n"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert!((arr[2].as_num().unwrap() + 300.0).abs() < 1e-9);
        assert!(matches!(doc.get("c"), Some(Json::Null)));
        assert_eq!(doc.get("d").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} tail").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn trace_validator_accepts_the_exporter_output() {
        use crate::tracer::{Layer, Tracer, Value};
        use deepnote_sim::{SimDuration, SimTime};
        let t = Tracer::ring(8);
        t.instant(
            Layer::Acoustics,
            0,
            "tone",
            SimTime::ZERO,
            vec![("hz", Value::F64(650.0))],
        );
        t.span(
            Layer::Hdd,
            0,
            "degraded_io",
            SimTime::from_secs(1),
            SimDuration::from_millis(45),
            Vec::new(),
        );
        let json = crate::chrome::export(&[("run", &t.take())]);
        let summary = validate_trace(&json).unwrap();
        assert_eq!(summary.events, 2);
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.layers, vec!["acoustics", "hdd"]);
    }

    #[test]
    fn trace_validator_rejects_malformed_events() {
        assert!(validate_trace("[]").is_err());
        assert!(validate_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        let negative =
            r#"{"traceEvents":[{"ph":"i","pid":1,"tid":0,"ts":-1,"s":"t","cat":"c","name":"n"}]}"#;
        assert!(validate_trace(negative).is_err());
    }

    #[test]
    fn report_validator_counts_alerts_and_series() {
        let body = r#"[{"label":"x","phases":[{"label":"baseline"}],
            "alerts":[{"at_s":12.0,"window":"fast","raised":true,"burn_rate":25.0},
                      {"at_s":40.0,"window":"fast","raised":false,"burn_rate":0.5}],
            "series":[{"layer":"hdd","name":"node0/seek_retries","kind":"counter",
                       "points":[{"at_s":1.0,"value":3}]}]}]"#;
        let summary = validate_report(body).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.alerts, 2);
        assert_eq!(summary.raised, 1);
        assert_eq!(summary.series, 1);
    }

    #[test]
    fn report_validator_rejects_missing_sections() {
        assert!(validate_report("[]").is_err());
        assert!(validate_report(r#"[{"label":"x","phases":[{}]}]"#).is_err());
        let bad_window = r#"[{"label":"x","phases":[{}],"series":[],
            "alerts":[{"at_s":1.0,"window":"medium","raised":true,"burn_rate":1.0}]}]"#;
        assert!(validate_report(bad_window).is_err());
    }
}
