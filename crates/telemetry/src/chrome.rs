//! Hand-written Chrome trace-event JSON export.
//!
//! The output follows the Trace Event Format's "JSON object" flavor —
//! `{"displayTimeUnit":"ms","traceEvents":[...]}` — using complete
//! spans (`ph: "X"`), instants (`ph: "i"`), and metadata (`ph: "M"`)
//! records only, which is the subset Perfetto loads directly. Each run
//! becomes one process (pid = run index + 1, named by its label); each
//! track becomes one thread (tid 0 is the control plane, node `n` is
//! tid `n + 1`). Timestamps are microseconds with fixed three-decimal
//! nanosecond remainders, written with integer arithmetic so identical
//! logs serialize byte-identically.

use crate::tracer::{EventKind, TraceLog, Value, CONTROL_TRACK};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Serializes `runs` (label + collected log) as one Chrome trace.
pub fn export(runs: &[(&str, &TraceLog)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (i, (label, log)) in runs.iter().enumerate() {
        let pid = i + 1;
        write_meta_process(&mut out, &mut first, pid, label, log.dropped);
        let tracks: BTreeSet<u32> = log.events.iter().map(|e| e.track).collect();
        for track in &tracks {
            write_meta_thread(&mut out, &mut first, pid, *track);
        }
        for ev in &log.events {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\":\"{}\",\"pid\":{pid},\"tid\":{},\"ts\":",
                match ev.kind {
                    EventKind::Span => 'X',
                    EventKind::Instant => 'i',
                },
                tid(ev.track)
            );
            push_micros(&mut out, ev.at.as_nanos());
            if ev.kind == EventKind::Span {
                out.push_str(",\"dur\":");
                push_micros(&mut out, ev.dur.as_nanos());
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"cat\":");
            push_json_string(&mut out, ev.layer.name());
            out.push_str(",\"name\":");
            push_json_string(&mut out, ev.name);
            out.push_str(",\"args\":{");
            for (k, (name, value)) in ev.args.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, name);
                out.push(':');
                push_value(&mut out, value);
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}\n");
    out
}

/// Thread id for a track: the control plane is tid 0 so it sorts first.
fn tid(track: u32) -> u64 {
    if track == CONTROL_TRACK {
        0
    } else {
        u64::from(track) + 1
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn write_meta_process(out: &mut String, first: &mut bool, pid: usize, label: &str, dropped: u64) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":"
    );
    push_json_string(out, label);
    let _ = write!(out, ",\"dropped_events\":{dropped}}}}}");
}

fn write_meta_thread(out: &mut String, first: &mut bool, pid: usize, track: u32) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":",
        tid(track)
    );
    if track == CONTROL_TRACK {
        push_json_string(out, "control");
    } else {
        let name = format!("node-{track}");
        push_json_string(out, &name);
    }
    out.push_str("}}");
}

/// Nanoseconds as a microsecond decimal (`123.456`), integer-exact.
fn push_micros(out: &mut String, nanos: u64) {
    let _ = write!(out, "{}.{:03}", nanos / 1_000, nanos % 1_000);
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => push_json_string(out, s),
        Value::Text(s) => push_json_string(out, s),
    }
}

/// Appends a JSON string literal with escaping.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Layer, Tracer};
    use deepnote_sim::{SimDuration, SimTime};

    fn sample_log() -> TraceLog {
        let t = Tracer::ring(16);
        t.instant(
            Layer::Acoustics,
            2,
            "tone",
            SimTime::from_nanos(1_234_567),
            vec![("spl_db", Value::F64(130.5)), ("hz", Value::F64(650.0))],
        );
        t.span(
            Layer::Kv,
            2,
            "wal_sync",
            SimTime::from_secs(1),
            SimDuration::from_micros(81),
            vec![("ops", Value::U64(128))],
        );
        t.instant(
            Layer::Cluster,
            CONTROL_TRACK,
            "failover",
            SimTime::from_secs(2),
            vec![("shard", Value::U64(7)), ("why", Value::Str("down"))],
        );
        t.take()
    }

    #[test]
    fn export_is_deterministic_and_well_formed() {
        let log = sample_log();
        let a = export(&[("run", &log)]);
        let b = export(&[("run", &log)]);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(a.ends_with("]}\n"));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"cat\":\"acoustics\""));
        assert!(a.contains("\"name\":\"wal_sync\""));
        // 1_234_567 ns = 1234.567 µs, integer-exact.
        assert!(a.contains("\"ts\":1234.567"), "{a}");
    }

    #[test]
    fn runs_become_processes_and_tracks_become_threads() {
        let log = sample_log();
        let j = export(&[("first", &log), ("second", &log)]);
        assert!(j.contains("\"pid\":1"));
        assert!(j.contains("\"pid\":2"));
        assert!(j.contains("\"name\":\"process_name\",\"args\":{\"name\":\"first\""));
        assert!(j.contains("\"args\":{\"name\":\"second\""));
        // Node 2 is tid 3; the control plane is tid 0.
        assert!(j.contains("\"tid\":3"));
        assert!(j.contains("\"args\":{\"name\":\"node-2\"}"));
        assert!(j.contains("\"args\":{\"name\":\"control\"}"));
    }

    #[test]
    fn empty_log_still_produces_a_loadable_file() {
        let log = TraceLog::default();
        let j = export(&[("empty", &log)]);
        assert!(j.contains("traceEvents"));
        assert!(j.ends_with("]}\n"));
    }
}
