//! A discrete-event scheduler.
//!
//! Periodic background activities — journal commit timers, page-writeback
//! daemons, attack schedules — register callbacks on an [`EventQueue`].
//! Driving the queue with [`EventQueue::run_until`] fires the callbacks in
//! timestamp order, advancing the shared [`Clock`] to each event's deadline.

use crate::clock::Clock;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

/// What the scheduler should do with a periodic event after it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repeat {
    /// Fire once and forget.
    Once,
    /// Re-arm after the given period.
    Every(SimDuration),
}

type Callback<'a> = Box<dyn FnMut(&mut EventCtx) + 'a>;

/// Context handed to event callbacks.
#[derive(Debug)]
pub struct EventCtx {
    now: SimTime,
    cancel_self: bool,
}

impl EventCtx {
    /// The instant the event fired at.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// For periodic events: do not re-arm after this firing.
    pub fn cancel(&mut self) {
        self.cancel_self = true;
    }
}

struct Scheduled<'a> {
    at: SimTime,
    seq: u64,
    id: EventId,
    repeat: Repeat,
    callback: Callback<'a>,
}

impl PartialEq for Scheduled<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled<'_> {}
impl PartialOrd for Scheduled<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event queue bound to a [`Clock`].
///
/// Events scheduled for the same instant fire in insertion order.
///
/// # Example
///
/// ```
/// use deepnote_sim::{Clock, EventQueue, SimDuration, SimTime};
///
/// let clock = Clock::new();
/// let mut queue = EventQueue::new(clock.clone());
/// let mut fired = 0u32;
/// queue.schedule_every(SimDuration::from_secs(5), |_ctx| fired += 1);
/// queue.run_until(SimTime::from_secs(21));
/// drop(queue);
/// assert_eq!(fired, 4); // t = 5, 10, 15, 20
/// ```
pub struct EventQueue<'a> {
    clock: Clock,
    heap: BinaryHeap<Reverse<Scheduled<'a>>>,
    cancelled: BTreeSet<EventId>,
    next_seq: u64,
    next_id: u64,
}

impl std::fmt::Debug for EventQueue<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.clock.now())
            .field("pending", &self.heap.len())
            .finish()
    }
}

impl<'a> EventQueue<'a> {
    /// Creates an empty queue driving the given clock.
    pub fn new(clock: Clock) -> Self {
        Self::with_capacity(clock, 0)
    }

    /// Creates an empty queue with room for `capacity` events before the
    /// heap reallocates. Drivers that know their steady-state event
    /// population (one slot per recurring stream) pre-size with this so
    /// the hot loop never grows the heap.
    pub fn with_capacity(clock: Clock, capacity: usize) -> Self {
        EventQueue {
            clock,
            heap: BinaryHeap::with_capacity(capacity),
            cancelled: BTreeSet::new(),
            next_seq: 0,
            next_id: 0,
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Events the queue can hold before reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The clock this queue advances.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len().min(self.heap.len())
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, at: SimTime, repeat: Repeat, callback: Callback<'a>) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            at,
            seq,
            id,
            repeat,
            callback,
        }));
        id
    }

    /// Schedules `callback` to fire once at absolute time `at`.
    ///
    /// If `at` is in the past it fires at the current instant on the next
    /// run.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        callback: impl FnMut(&mut EventCtx) + 'a,
    ) -> EventId {
        self.push(at, Repeat::Once, Box::new(callback))
    }

    /// Schedules a batch of one-shot events, reserving heap capacity for
    /// the whole batch up front (one allocation instead of log-many
    /// doubling steps). Events at equal deadlines fire in batch order,
    /// exactly as if each had been passed to [`EventQueue::schedule_at`]
    /// in sequence. Returns the ids in batch order.
    pub fn push_many<F>(&mut self, events: impl IntoIterator<Item = (SimTime, F)>) -> Vec<EventId>
    where
        F: FnMut(&mut EventCtx) + 'a,
    {
        let events = events.into_iter();
        self.heap.reserve(events.size_hint().0);
        events
            .map(|(at, callback)| self.push(at, Repeat::Once, Box::new(callback)))
            .collect()
    }

    /// Schedules `callback` to fire once after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        callback: impl FnMut(&mut EventCtx) + 'a,
    ) -> EventId {
        let at = self.clock.now() + delay;
        self.schedule_at(at, callback)
    }

    /// Schedules `callback` to fire every `period`, first firing one period
    /// from now.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the queue would livelock).
    pub fn schedule_every(
        &mut self,
        period: SimDuration,
        callback: impl FnMut(&mut EventCtx) + 'a,
    ) -> EventId {
        assert!(!period.is_zero(), "periodic event period must be non-zero");
        let at = self.clock.now() + period;
        self.push(at, Repeat::Every(period), Box::new(callback))
    }

    /// Cancels a pending event. Cancelling an already-fired or unknown event
    /// is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Fires all events with deadlines `<= until`, advancing the clock to
    /// each deadline and finally to `until`. Returns the number of callbacks
    /// fired.
    pub fn run_until(&mut self, until: SimTime) -> usize {
        let mut fired = 0;
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > until {
                break;
            }
            let Reverse(mut ev) = self.heap.pop().expect("peeked event vanished");
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            self.clock.advance_to(ev.at);
            let mut ctx = EventCtx {
                now: self.clock.now(),
                cancel_self: false,
            };
            (ev.callback)(&mut ctx);
            fired += 1;
            if let Repeat::Every(period) = ev.repeat {
                if !ctx.cancel_self {
                    ev.at += period;
                    ev.seq = self.next_seq;
                    self.next_seq += 1;
                    self.heap.push(Reverse(ev));
                }
            }
        }
        self.clock.advance_to(until);
        fired
    }

    /// Fires all events for the next `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> usize {
        let until = self.clock.now() + d;
        self.run_until(until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn one_shot_fires_in_order() {
        let clock = Clock::new();
        let log = RefCell::new(Vec::new());
        let mut q = EventQueue::new(clock.clone());
        q.schedule_at(SimTime::from_secs(2), |ctx| {
            log.borrow_mut().push((2u64, ctx.now()));
        });
        q.schedule_at(SimTime::from_secs(1), |ctx| {
            log.borrow_mut().push((1, ctx.now()));
        });
        let fired = q.run_until(SimTime::from_secs(3));
        drop(q);
        assert_eq!(fired, 2);
        assert_eq!(
            log.into_inner(),
            vec![(1, SimTime::from_secs(1)), (2, SimTime::from_secs(2))]
        );
        assert_eq!(clock.now(), SimTime::from_secs(3));
    }

    #[test]
    fn same_deadline_fires_in_insertion_order() {
        let clock = Clock::new();
        let log = RefCell::new(Vec::new());
        let mut q = EventQueue::new(clock);
        for i in 0..5u32 {
            let log = &log;
            q.schedule_at(SimTime::from_secs(1), move |_| {
                log.borrow_mut().push(i);
            });
        }
        q.run_until(SimTime::from_secs(1));
        drop(q);
        assert_eq!(log.into_inner(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn periodic_event_repeats_and_cancels() {
        let clock = Clock::new();
        let count = RefCell::new(0u32);
        let mut q = EventQueue::new(clock);
        q.schedule_every(SimDuration::from_secs(10), |ctx| {
            let mut c = count.borrow_mut();
            *c += 1;
            if *c == 3 {
                ctx.cancel();
            }
        });
        q.run_until(SimTime::from_secs(100));
        assert!(q.is_empty());
        drop(q);
        assert_eq!(count.into_inner(), 3);
    }

    #[test]
    fn cancel_prevents_firing() {
        let clock = Clock::new();
        let fired = RefCell::new(false);
        let mut q = EventQueue::new(clock);
        let id = q.schedule_in(SimDuration::from_secs(1), |_| {
            *fired.borrow_mut() = true;
        });
        q.cancel(id);
        assert!(q.is_empty());
        q.run_until(SimTime::from_secs(2));
        drop(q);
        assert!(!fired.into_inner());
    }

    #[test]
    fn events_scheduled_during_run_fire_if_due() {
        let clock = Clock::new();
        let hits = RefCell::new(Vec::new());
        let mut q = EventQueue::new(clock);
        // A periodic event that records; another event scheduled mid-run
        // via interior state is covered by periodic re-arming above, so here
        // just check run_for twice continues the timeline.
        q.schedule_every(SimDuration::from_secs(3), |ctx| {
            hits.borrow_mut().push(ctx.now().as_secs_f64() as u64);
        });
        q.run_for(SimDuration::from_secs(7)); // fires at 3, 6
        q.run_for(SimDuration::from_secs(7)); // fires at 9, 12
        drop(q);
        assert_eq!(hits.into_inner(), vec![3, 6, 9, 12]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let mut q = EventQueue::new(Clock::new());
        q.schedule_every(SimDuration::ZERO, |_| {});
    }

    #[test]
    fn push_many_fires_in_time_then_batch_order() {
        let clock = Clock::new();
        let log = RefCell::new(Vec::new());
        let mut q = EventQueue::new(clock);
        let ids = q.push_many((0..6u64).map(|i| {
            let log = &log;
            // Two events per deadline (3 - i/2 seconds), batch order is
            // the tie-break within a deadline.
            (SimTime::from_secs(3 - i / 2), move |_: &mut EventCtx| {
                log.borrow_mut().push(i);
            })
        }));
        assert_eq!(ids.len(), 6);
        assert!(q.capacity() >= 6, "capacity = {}", q.capacity());
        q.run_until(SimTime::from_secs(3));
        drop(q);
        assert_eq!(log.into_inner(), vec![4, 5, 2, 3, 0, 1]);
    }

    #[test]
    fn push_many_ids_are_cancellable() {
        let clock = Clock::new();
        let count = RefCell::new(0u32);
        let mut q = EventQueue::new(clock);
        let ids = q.push_many((0..4u64).map(|i| {
            let count = &count;
            (SimTime::from_secs(i), move |_: &mut EventCtx| {
                *count.borrow_mut() += 1;
            })
        }));
        q.cancel(ids[1]);
        q.cancel(ids[3]);
        q.run_until(SimTime::from_secs(10));
        drop(q);
        assert_eq!(count.into_inner(), 2);
    }

    #[test]
    fn capacity_is_reservable_up_front() {
        let clock = Clock::new();
        let mut q = EventQueue::with_capacity(clock, 32);
        assert!(q.capacity() >= 32);
        q.reserve(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
    }
}
