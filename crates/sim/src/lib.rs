//! Deterministic discrete-event simulation substrate for the Deep Note
//! reproduction.
//!
//! Every experiment in this workspace runs on *virtual time*: a shared
//! [`Clock`] that components advance explicitly. This makes the whole
//! reproduction deterministic (a given seed always yields the same tables)
//! and fast (simulating an 81-second attack takes milliseconds of wall time).
//!
//! The crate provides four building blocks:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual
//!   timestamps and durations ([`time`]).
//! * [`Clock`] — a cheaply cloneable handle to a shared virtual clock
//!   ([`clock`]).
//! * [`EventQueue`] — a discrete-event scheduler for periodic daemons such
//!   as journal commit threads and writeback flushers ([`event`]).
//! * Statistics — [`OnlineStats`], [`Histogram`], [`RateMeter`], and
//!   [`TimeSeries`] for measuring throughput, latency, and sweeps
//!   ([`stats`], [`series`]).
//!
//! # Example
//!
//! ```
//! use deepnote_sim::{Clock, SimDuration};
//!
//! let clock = Clock::new();
//! clock.advance(SimDuration::from_millis(5));
//! assert_eq!(clock.now().as_millis_f64(), 5.0);
//! ```

// Not a serving-path crate (see DESIGN.md §7): the expect/unwrap sites
// here are arithmetic-overflow invariants on virtual time, where
// aborting beats silently wrapping the clock.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod clock;
pub mod event;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use clock::Clock;
pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{Histogram, OnlineStats, RateMeter};
pub use time::{SimDuration, SimTime};
