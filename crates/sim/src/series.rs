//! Time-series and sweep-series recording.
//!
//! A [`TimeSeries`] stores `(x, y)` points — either virtual time vs. a
//! metric, or an independent sweep variable (frequency, distance) vs. a
//! metric — and offers the small set of queries the experiment harnesses
//! need: extremes, crossings, and contiguous regions below a threshold
//! (e.g. "the frequency band where throughput is zero").

use serde::{Deserialize, Serialize};

/// An ordered series of `(x, y)` samples.
///
/// `x` is whatever the experiment sweeps (seconds, Hz, cm); `y` is the
/// measured metric. Points must be appended in non-decreasing `x` order.
///
/// # Example
///
/// ```
/// use deepnote_sim::TimeSeries;
///
/// let mut s = TimeSeries::new("throughput", "Hz", "MB/s");
/// s.push(100.0, 22.7);
/// s.push(650.0, 0.0);
/// s.push(2000.0, 22.5);
/// let dead = s.regions_below(1.0);
/// assert_eq!(dead, vec![(650.0, 650.0)]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    x_unit: String,
    y_unit: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with descriptive labels.
    pub fn new(
        name: impl Into<String>,
        x_unit: impl Into<String>,
        y_unit: impl Into<String>,
    ) -> Self {
        TimeSeries {
            name: name.into(),
            x_unit: x_unit.into(),
            y_unit: y_unit.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit label of the independent variable.
    pub fn x_unit(&self) -> &str {
        &self.x_unit
    }

    /// Unit label of the dependent variable.
    pub fn y_unit(&self) -> &str {
        &self.y_unit
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `x` is less than the previous point's `x`, or if either
    /// coordinate is NaN.
    pub fn push(&mut self, x: f64, y: f64) {
        assert!(!x.is_nan() && !y.is_nan(), "series point must not be NaN");
        if let Some(&(last_x, _)) = self.points.last() {
            assert!(
                x >= last_x,
                "series x must be non-decreasing ({x} after {last_x})"
            );
        }
        self.points.push((x, y));
    }

    /// The recorded points in order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The minimum `y` value and its `x`, or `None` if empty.
    pub fn min_point(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The maximum `y` value and its `x`, or `None` if empty.
    pub fn max_point(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Mean of `y` values, or 0 if empty.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }

    /// `y` at the sample closest to `x`, or `None` if empty.
    pub fn nearest_y(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| (a.0 - x).abs().total_cmp(&(b.0 - x).abs()))
            .map(|p| p.1)
    }

    /// Maximal contiguous `x` regions where `y < threshold`, returned as
    /// `(first_x, last_x)` pairs of the *samples* inside the region.
    pub fn regions_below(&self, threshold: f64) -> Vec<(f64, f64)> {
        let mut regions = Vec::new();
        let mut current: Option<(f64, f64)> = None;
        for &(x, y) in &self.points {
            if y < threshold {
                current = Some(match current {
                    Some((start, _)) => (start, x),
                    None => (x, x),
                });
            } else if let Some(region) = current.take() {
                regions.push(region);
            }
        }
        if let Some(region) = current {
            regions.push(region);
        }
        regions
    }

    /// The widest region below `threshold`, by `x` span.
    pub fn widest_region_below(&self, threshold: f64) -> Option<(f64, f64)> {
        self.regions_below(threshold)
            .into_iter()
            .max_by(|a, b| (a.1 - a.0).total_cmp(&(b.1 - b.0)))
    }

    /// Renders the series as simple tab-separated text (header + rows),
    /// convenient for dumping into plots.
    pub fn to_tsv(&self) -> String {
        let mut out = format!("# {} ({} vs {})\n", self.name, self.y_unit, self.x_unit);
        for &(x, y) in &self.points {
            out.push_str(&format!("{x}\t{y}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> TimeSeries {
        let mut s = TimeSeries::new("tp", "Hz", "MB/s");
        for (x, y) in [
            (100.0, 20.0),
            (300.0, 0.5),
            (650.0, 0.0),
            (1000.0, 0.2),
            (2000.0, 19.0),
            (4000.0, 20.0),
        ] {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn extremes_and_mean() {
        let s = sample_series();
        assert_eq!(s.min_point(), Some((650.0, 0.0)));
        // Two points tie at y = 20.0; max_by keeps the last one.
        assert_eq!(s.max_point(), Some((4000.0, 20.0)));
        assert!((s.mean_y() - (20.0 + 0.5 + 0.0 + 0.2 + 19.0 + 20.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_lookup() {
        let s = sample_series();
        assert_eq!(s.nearest_y(640.0), Some(0.0));
        assert_eq!(s.nearest_y(90.0), Some(20.0));
        assert_eq!(TimeSeries::new("e", "x", "y").nearest_y(1.0), None);
    }

    #[test]
    fn regions_below_finds_dead_band() {
        let s = sample_series();
        let regions = s.regions_below(1.0);
        assert_eq!(regions, vec![(300.0, 1000.0)]);
        assert_eq!(s.widest_region_below(1.0), Some((300.0, 1000.0)));
    }

    #[test]
    fn regions_below_handles_trailing_region() {
        let mut s = TimeSeries::new("t", "x", "y");
        s.push(1.0, 0.0);
        s.push(2.0, 5.0);
        s.push(3.0, 0.0);
        s.push(4.0, 0.0);
        assert_eq!(s.regions_below(1.0), vec![(1.0, 1.0), (3.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn push_rejects_unordered_x() {
        let mut s = TimeSeries::new("t", "x", "y");
        s.push(2.0, 0.0);
        s.push(1.0, 0.0);
    }

    #[test]
    fn tsv_contains_points() {
        let s = sample_series();
        let tsv = s.to_tsv();
        assert!(tsv.contains("650\t0\n"));
        assert!(tsv.starts_with("# tp"));
    }
}
