//! Online statistics: running moments, latency histograms, and rate meters.
//!
//! These are the measurement instruments the benchmark harnesses use to
//! produce the numbers in the paper's tables: mean/percentile latency,
//! throughput in MB/s, and operation rates.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Running count/mean/variance/min/max via Welford's algorithm.
///
/// # Example
///
/// ```
/// use deepnote_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (statistics would silently poison).
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot record NaN sample");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A log-bucketed histogram for positive values (latencies, sizes).
///
/// Buckets grow geometrically from `min_value` with `buckets_per_decade`
/// buckets per factor of ten, giving bounded relative quantile error across
/// many orders of magnitude — the same trick HdrHistogram and fio use.
///
/// # Example
///
/// ```
/// use deepnote_sim::Histogram;
///
/// let mut h = Histogram::new_latency();
/// for us in [100.0, 200.0, 300.0, 10_000.0] {
///     h.record(us);
/// }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 >= 100.0 && p50 <= 400.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    min_value: f64,
    buckets_per_decade: usize,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    stats: OnlineStats,
}

impl Histogram {
    /// Creates a histogram covering `[min_value, min_value * 10^decades)`.
    ///
    /// # Panics
    ///
    /// Panics if `min_value <= 0`, `decades == 0`, or
    /// `buckets_per_decade == 0`.
    pub fn new(min_value: f64, decades: usize, buckets_per_decade: usize) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(decades > 0 && buckets_per_decade > 0);
        Histogram {
            min_value,
            buckets_per_decade,
            counts: vec![0; decades * buckets_per_decade + 1],
            underflow: 0,
            total: 0,
            stats: OnlineStats::new(),
        }
    }

    /// A histogram suitable for latencies in microseconds: 1 µs to 1000 s.
    pub fn new_latency() -> Self {
        Self::new(1.0, 9, 20)
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.min_value {
            return None;
        }
        let pos = (x / self.min_value).log10() * self.buckets_per_decade as f64;
        Some((pos as usize).min(self.counts.len() - 1))
    }

    /// Records one sample. Values below `min_value` are counted in an
    /// underflow bin and treated as `min_value` for quantiles; values above
    /// the top are clamped into the last bucket.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or negative.
    pub fn record(&mut self, x: f64) {
        assert!(
            x.is_finite() && x >= 0.0,
            "histogram sample must be finite and >= 0"
        );
        self.total += 1;
        self.stats.record(x);
        match self.bucket_of(x) {
            Some(b) => self.counts[b] += 1,
            None => self.underflow += 1,
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sample mean (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Exact minimum and maximum of recorded samples.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        Some((self.stats.min()?, self.stats.max()?))
    }

    /// The `p`-th percentile (`0 <= p <= 100`) from bucket boundaries.
    ///
    /// Returns `None` if the histogram is empty or `p` is NaN or
    /// outside `[0, 100]`. `p = 0` returns the exact minimum sample;
    /// higher ranks return the upper edge of the bucket holding the
    /// rank (so `p = 100` brackets the exact maximum from above).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if !(0.0..=100.0).contains(&p) {
            return None;
        }
        if self.total == 0 {
            return None;
        }
        if p <= 0.0 {
            return self.min_max().map(|(min, _)| min);
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= rank {
            return Some(self.min_value);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i.
                let edge =
                    self.min_value * 10f64.powf((i as f64 + 1.0) / self.buckets_per_decade as f64);
                return Some(edge);
            }
        }
        self.min_max().map(|(_, max)| max)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.min_value, other.min_value,
            "histogram geometry mismatch"
        );
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram geometry mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.stats.merge(&other.stats);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new_latency()
    }
}

/// Measures an event rate and byte throughput over virtual time.
///
/// # Example
///
/// ```
/// use deepnote_sim::{RateMeter, SimTime, SimDuration};
///
/// let mut m = RateMeter::starting_at(SimTime::ZERO);
/// m.record_bytes(4096);
/// let t = SimTime::ZERO + SimDuration::from_millis(1);
/// assert!((m.throughput_mb_per_s(t) - 4.096).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMeter {
    start: SimTime,
    ops: u64,
    bytes: u64,
}

impl RateMeter {
    /// Creates a meter whose window opens at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        RateMeter {
            start,
            ops: 0,
            bytes: 0,
        }
    }

    /// Records one completed operation moving `bytes` bytes.
    pub fn record_bytes(&mut self, bytes: u64) {
        self.ops += 1;
        self.bytes += bytes;
    }

    /// Records `n` operations with no byte movement.
    pub fn record_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Operations recorded so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Bytes recorded so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Window length at instant `now`.
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        now.saturating_duration_since(self.start)
    }

    /// Decimal megabytes per second over the window ending at `now`.
    /// Zero if no time has elapsed.
    pub fn throughput_mb_per_s(&self, now: SimTime) -> f64 {
        let secs = self.elapsed(now).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / secs
        }
    }

    /// Operations per second over the window ending at `now`.
    pub fn ops_per_s(&self, now: SimTime) -> f64 {
        let secs = self.elapsed(now).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..33] {
            a.record(x);
        }
        for &x in &xs[33..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn online_stats_rejects_nan() {
        OnlineStats::new().record(f64::NAN);
    }

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = Histogram::new_latency();
        for i in 1..=1000u32 {
            h.record(i as f64);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        // Relative bucket error at 20 buckets/decade is ~12%.
        assert!((450.0..650.0).contains(&p50), "p50={p50}");
        assert!((900.0..1300.0).contains(&p99), "p99={p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn histogram_underflow_and_clamp() {
        let mut h = Histogram::new(1.0, 2, 10); // covers [1, 100)
        h.record(0.5); // underflow
        h.record(1e9); // clamped into top bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(25.0), Some(1.0));
        assert!(h.percentile(100.0).unwrap() >= 100.0);
    }

    #[test]
    fn histogram_empty_has_no_percentile() {
        let h = Histogram::new_latency();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(100.0), None);
    }

    #[test]
    fn histogram_percentile_rejects_out_of_range_gracefully() {
        let mut h = Histogram::new_latency();
        h.record(42.0);
        assert_eq!(h.percentile(-1.0), None);
        assert_eq!(h.percentile(100.1), None);
        assert_eq!(h.percentile(f64::NAN), None);
    }

    #[test]
    fn histogram_percentile_zero_is_the_exact_minimum() {
        let mut h = Histogram::new_latency();
        h.record(17.0);
        h.record(400.0);
        h.record(9000.0);
        assert_eq!(h.percentile(0.0), Some(17.0));
    }

    #[test]
    fn histogram_single_sample_percentiles_bracket_it() {
        let mut h = Histogram::new_latency();
        h.record(250.0);
        assert_eq!(h.percentile(0.0), Some(250.0));
        // Every positive rank lands in the one occupied bucket; its
        // upper edge brackets the sample within one bucket's error.
        for p in [1.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!((250.0..300.0).contains(&v), "p{p}={v}");
        }
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new_latency();
        let mut b = Histogram::new_latency();
        a.record(10.0);
        b.record(1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_max(), Some((10.0, 1000.0)));
    }

    #[test]
    fn rate_meter_throughput() {
        let start = SimTime::from_secs(10);
        let mut m = RateMeter::starting_at(start);
        for _ in 0..250 {
            m.record_bytes(4096);
        }
        let now = start + SimDuration::from_secs(1);
        assert!((m.throughput_mb_per_s(now) - 1.024).abs() < 1e-9);
        assert!((m.ops_per_s(now) - 250.0).abs() < 1e-9);
        assert_eq!(m.ops(), 250);
        assert_eq!(m.bytes(), 250 * 4096);
    }

    #[test]
    fn rate_meter_zero_window() {
        let m = RateMeter::starting_at(SimTime::from_secs(5));
        assert_eq!(m.throughput_mb_per_s(SimTime::from_secs(5)), 0.0);
        assert_eq!(m.ops_per_s(SimTime::ZERO), 0.0);
    }
}
