//! Deterministic random numbers for reproducible experiments.
//!
//! All stochastic behaviour in the workspace (workload key choice, vibration
//! phase, retry jitter) flows through [`SimRng`], a seeded PRNG with a few
//! domain helpers. Two runs with the same seed produce identical results.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The workspace-wide default seed, used when an experiment does not care.
pub const DEFAULT_SEED: u64 = 0x5EED_D339; // "AQ339", the paper's speaker.

/// A deterministic, seedable random number generator.
///
/// Wraps [`rand::rngs::StdRng`] and adds helpers used across the
/// reproduction (Zipf-ish skew for key-value workloads, Bernoulli trials for
/// per-operation success).
///
/// # Example
///
/// ```
/// use deepnote_sim::SimRng;
///
/// let mut a = SimRng::seeded(42);
/// let mut b = SimRng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator with the workspace default seed.
    pub fn new() -> Self {
        Self::seeded(DEFAULT_SEED)
    }

    /// Derives an independent child generator; useful to give each
    /// component its own stream without correlation.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let seed = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seeded(seed)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// A uniform phase in `[0, 2π)`, used to randomize vibration phase
    /// relative to sector windows.
    pub fn phase(&mut self) -> f64 {
        self.inner.gen::<f64>() * std::f64::consts::TAU
    }

    /// A sample from an approximate Zipf distribution over `[0, n)` with
    /// exponent `theta` in `(0, 1)`, matching the skew used by key-value
    /// store benchmarks (YCSB-style).
    ///
    /// Uses the inverse-CDF approximation `floor(n * u^(1/(1-theta)))`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "zipf over empty domain");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "zipf exponent must be in (0, 1), got {theta}"
        );
        let u = self.inner.gen::<f64>();
        let x = (u.powf(1.0 / (1.0 - theta)) * n as f64).floor() as u64;
        x.min(n - 1)
    }

    /// Samples from an arbitrary `rand` distribution.
    pub fn sample<T, D: Distribution<T>>(&mut self, dist: &D) -> T {
        dist.sample(&mut self.inner)
    }

    /// Fills `buf` with deterministic pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl Default for SimRng {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::seeded(9);
        let mut root2 = SimRng::seeded(9);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = root1.fork(2);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = SimRng::seeded(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seeded(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_probability_roughly_holds() {
        let mut r = SimRng::seeded(5);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut r = SimRng::seeded(6);
        let n = 1_000;
        let samples: Vec<u64> = (0..10_000).map(|_| r.zipf(n, 0.9)).collect();
        assert!(samples.iter().all(|&s| s < n));
        let low = samples.iter().filter(|&&s| s < n / 10).count();
        // Strong skew: far more than the uniform 10% in the lowest decile.
        assert!(low > 5_000, "low-decile hits = {low}");
    }

    #[test]
    fn phase_in_range() {
        let mut r = SimRng::seeded(8);
        for _ in 0..1000 {
            let p = r.phase();
            assert!((0.0..std::f64::consts::TAU).contains(&p));
        }
    }
}
