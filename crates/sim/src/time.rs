//! Virtual time primitives.
//!
//! [`SimTime`] is an absolute instant on the simulation timeline and
//! [`SimDuration`] a span between instants, both with nanosecond resolution
//! backed by `u64`. The zero instant is the start of the simulation.
//!
//! These types deliberately mirror `std::time::{Instant, Duration}` but are
//! fully ordered, serializable, and constructible from constants so that
//! experiment configurations can be written down as data.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// Nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A span of virtual time with nanosecond resolution.
///
/// # Example
///
/// ```
/// use deepnote_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// assert_eq!(d.as_secs_f64(), 0.0025);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };
    /// The maximum representable duration (~584 years).
    pub const MAX: SimDuration = SimDuration { nanos: u64::MAX };

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration { nanos }
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration {
            nanos: micros * NANOS_PER_MICRO,
        }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            nanos: millis * NANOS_PER_MILLI,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            nanos: secs * NANOS_PER_SEC,
        }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * NANOS_PER_SEC as f64;
        assert!(
            nanos <= u64::MAX as f64,
            "duration of {secs} s overflows SimDuration"
        );
        SimDuration {
            nanos: nanos.round() as u64,
        }
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative, non-finite, or too large to represent.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1_000.0)
    }

    /// Whole nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Whole microseconds in this duration (truncating).
    pub const fn as_micros(self) -> u64 {
        self.nanos / NANOS_PER_MICRO
    }

    /// Whole milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.nanos / NANOS_PER_MILLI
    }

    /// Whole seconds in this duration (truncating).
    pub const fn as_secs(self) -> u64 {
        self.nanos / NANOS_PER_SEC
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / NANOS_PER_SEC as f64
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / NANOS_PER_MILLI as f64
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(rhs.nanos),
        }
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.nanos.checked_add(rhs.nanos) {
            Some(nanos) => Some(SimDuration { nanos }),
            None => None,
        }
    }

    /// Multiplies the duration by a fractional factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self
                .nanos
                .checked_add(rhs.nanos)
                .expect("SimDuration overflow in addition"),
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            nanos: self
                .nanos
                .checked_sub(rhs.nanos)
                .expect("SimDuration underflow in subtraction"),
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            nanos: self
                .nanos
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            nanos: self.nanos / rhs,
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.nanos >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", self.nanos as f64 / NANOS_PER_MICRO as f64)
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

/// An absolute instant on the virtual timeline.
///
/// Time zero is the start of the simulation. Instants are totally ordered
/// and support the usual instant/duration arithmetic.
///
/// # Example
///
/// ```
/// use deepnote_sim::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_secs(3);
/// assert_eq!(t1 - t0, SimDuration::from_secs(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime { nanos: 0 };
    /// The farthest representable instant.
    pub const MAX: SimTime = SimTime { nanos: u64::MAX };

    /// Creates an instant `nanos` nanoseconds after the start of the
    /// simulation.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime { nanos }
    }

    /// Creates an instant `secs` seconds after the start of the simulation.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime {
            nanos: secs * NANOS_PER_SEC,
        }
    }

    /// Nanoseconds since the start of the simulation.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Seconds since the start of the simulation, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds since the start of the simulation, fractional.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration {
            nanos: self
                .nanos
                .checked_sub(earlier.nanos)
                .expect("duration_since called with a later instant"),
        }
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub const fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration {
            nanos: self.nanos.saturating_sub(earlier.nanos),
        }
    }

    /// Checked addition of a duration; `None` on overflow.
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.nanos.checked_add(d.as_nanos()) {
            Some(nanos) => Some(SimTime { nanos }),
            None => None,
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime {
            nanos: self
                .nanos
                .checked_add(rhs.as_nanos())
                .expect("SimTime overflow in addition"),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime {
            nanos: self
                .nanos
                .checked_sub(rhs.as_nanos())
                .expect("SimTime underflow in subtraction"),
        }
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
        let m = SimDuration::from_millis_f64(0.2);
        assert_eq!(m.as_micros(), 200);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(2);
        assert_eq!((a + b).as_millis(), 5);
        assert_eq!((a - b).as_millis(), 1);
        assert_eq!((a * 4).as_millis(), 12);
        assert_eq!((a / 3).as_millis(), 1);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_subtraction_underflow_panics() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn duration_from_negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let later = t + SimDuration::from_millis(500);
        assert_eq!(later.duration_since(t).as_millis(), 500);
        assert_eq!(later - t, SimDuration::from_millis(500));
        assert_eq!(later - SimDuration::from_millis(500), t);
        assert_eq!(t.saturating_duration_since(later), SimDuration::ZERO);
    }

    #[test]
    fn time_is_ordered() {
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_nanos(1);
        assert!(t0 < t1);
        assert!(t1 <= SimTime::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_secs(2).to_string(), "t+2.000000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10).mul_f64(0.5);
        assert_eq!(d.as_secs(), 5);
    }

    #[test]
    fn checked_ops_catch_overflow() {
        assert!(SimDuration::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_secs(1))
            .is_some());
    }
}
