//! A shared virtual clock.
//!
//! Every component in a simulation (drive, filesystem, benchmark runner,
//! attacker) holds a clone of the same [`Clock`]. Whoever performs work
//! advances the clock by the virtual cost of that work; everyone else reads
//! the same timeline.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cheaply cloneable handle to a shared virtual clock.
///
/// Clones observe and mutate the same underlying instant. The clock is
/// monotonic: it can only move forward.
///
/// # Example
///
/// ```
/// use deepnote_sim::{Clock, SimDuration, SimTime};
///
/// let clock = Clock::new();
/// let observer = clock.clone();
/// clock.advance(SimDuration::from_secs(2));
/// assert_eq!(observer.now(), SimTime::from_secs(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    nanos: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Clock {
            nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a clock already advanced to `start`.
    pub fn starting_at(start: SimTime) -> Self {
        Clock {
            nanos: Arc::new(AtomicU64::new(start.as_nanos())),
        }
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let prev = self.nanos.fetch_add(d.as_nanos(), Ordering::SeqCst);
        SimTime::from_nanos(
            prev.checked_add(d.as_nanos())
                .expect("virtual clock overflow"),
        )
    }

    /// Advances the clock to `target` if it is in the future; otherwise
    /// leaves the clock unchanged. Returns the (possibly unchanged) current
    /// instant.
    pub fn advance_to(&self, target: SimTime) -> SimTime {
        let t = target.as_nanos();
        let mut cur = self.nanos.load(Ordering::SeqCst);
        while cur < t {
            match self
                .nanos
                .compare_exchange(cur, t, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return target,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_nanos(cur)
    }

    /// Returns `true` if `other` is a handle to the same underlying clock.
    pub fn same_clock(&self, other: &Clock) -> bool {
        Arc::ptr_eq(&self.nanos, &other.nanos)
    }

    /// Elapsed virtual time since `earlier` (zero if `earlier` is in the
    /// future).
    pub fn elapsed_since(&self, earlier: SimTime) -> SimDuration {
        self.now().saturating_duration_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(SimDuration::from_millis(7));
        assert_eq!(b.now(), SimTime::from_nanos(7_000_000));
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&Clock::new()));
    }

    #[test]
    fn advance_returns_new_instant() {
        let c = Clock::new();
        let t = c.advance(SimDuration::from_secs(1));
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(c.now(), t);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = Clock::new();
        c.advance_to(SimTime::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(5));
        // Going backwards is a no-op.
        c.advance_to(SimTime::from_secs(3));
        assert_eq!(c.now(), SimTime::from_secs(5));
    }

    #[test]
    fn starting_at_offsets_origin() {
        let c = Clock::starting_at(SimTime::from_secs(100));
        assert_eq!(c.now(), SimTime::from_secs(100));
        assert_eq!(
            c.elapsed_since(SimTime::from_secs(40)),
            SimDuration::from_secs(60)
        );
        assert_eq!(c.elapsed_since(SimTime::from_secs(400)), SimDuration::ZERO);
    }
}
