//! Crash/corruption robustness: whatever state the disk is left in —
//! torn journal records, bit flips in the journal region, a crash at any
//! point — mounting must never panic, must never corrupt *committed*
//! data, and must leave a consistent filesystem.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_blockdev::{BlockDevice, MemDisk};
use deepnote_fs::{Filesystem, FS_BLOCK_SIZE};
use deepnote_sim::Clock;
use proptest::prelude::*;

const SECTORS_PER_FS_BLOCK: u64 = (FS_BLOCK_SIZE / 512) as u64;
/// The journal region spans fs blocks 1..=1024 in the default layout.
const JOURNAL_FS_BLOCKS: std::ops::Range<u64> = 1..1025;

/// Builds a filesystem with known committed content, then appends more
/// (uncommitted) activity, and crashes — returning the raw device.
fn build_crashed_device(extra_ops: usize) -> MemDisk {
    let clock = Clock::new();
    let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock).unwrap();
    fs.create("/data").unwrap();
    fs.create_file("/data/committed").unwrap();
    fs.write_file("/data/committed", 0, b"durable payload")
        .unwrap();
    fs.commit().unwrap();
    // Uncommitted tail: may or may not survive, but must never corrupt.
    for i in 0..extra_ops {
        let path = format!("/data/volatile{i}");
        fs.create_file(&path).unwrap();
        fs.write_file(&path, 0, format!("tail {i}").as_bytes())
            .unwrap();
        if i % 3 == 2 {
            // Some of the tail gets committed.
            fs.commit().unwrap();
        }
    }
    // Crash: steal the device.
    let mut out = MemDisk::new(1);
    std::mem::swap(&mut out, fs.device_mut());
    out
}

fn check_mountable(mut dev: MemDisk) {
    let clock = Clock::new();
    let (mut fs, _) = match Filesystem::mount(std::mem::replace(&mut dev, MemDisk::new(1)), clock) {
        Ok(x) => x,
        // A corrupted superblock is allowed to refuse the mount — what is
        // not allowed is a panic or a silent inconsistency.
        Err(_) => return,
    };
    // Committed data must be intact whenever the tree still resolves it.
    if fs.exists("/data/committed") {
        let content = fs.read_file("/data/committed", 0, 64).unwrap();
        assert_eq!(content, b"durable payload");
    }
    // And the filesystem must be internally consistent.
    assert_eq!(fs.fsck().unwrap(), Vec::<String>::new());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bit flips anywhere in the journal region after a crash never
    /// panic the mount and never corrupt committed data.
    #[test]
    fn journal_corruption_is_contained(
        extra_ops in 0usize..12,
        flips in proptest::collection::vec(
            (JOURNAL_FS_BLOCKS, 0usize..FS_BLOCK_SIZE, 0u8..8),
            1..16
        ),
    ) {
        let mut dev = build_crashed_device(extra_ops);
        for (fs_block, offset, bit) in flips {
            let lba = fs_block * SECTORS_PER_FS_BLOCK;
            let mut buf = vec![0u8; FS_BLOCK_SIZE];
            dev.read_blocks(lba, &mut buf).unwrap();
            buf[offset] ^= 1 << bit;
            dev.write_blocks(lba, &buf).unwrap();
        }
        check_mountable(dev);
    }

    /// Zeroing whole journal blocks (torn writes at power loss) is
    /// likewise contained.
    #[test]
    fn torn_journal_blocks_are_contained(
        extra_ops in 0usize..12,
        torn in proptest::collection::vec(JOURNAL_FS_BLOCKS, 1..8),
    ) {
        let mut dev = build_crashed_device(extra_ops);
        for fs_block in torn {
            let lba = fs_block * SECTORS_PER_FS_BLOCK;
            dev.write_blocks(lba, &vec![0u8; FS_BLOCK_SIZE]).unwrap();
        }
        check_mountable(dev);
    }

    /// Repeated crash/mount cycles with interleaved activity keep the
    /// filesystem consistent and committed data durable.
    #[test]
    fn repeated_crash_cycles(cycles in 1usize..5, ops_per_cycle in 1usize..6) {
        let clock = Clock::new();
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock.clone()).unwrap();
        fs.create_file("/anchor").unwrap();
        fs.write_file("/anchor", 0, b"anchor").unwrap();
        fs.commit().unwrap();

        for cycle in 0..cycles {
            for op in 0..ops_per_cycle {
                let path = format!("/c{cycle}o{op}");
                fs.create_file(&path).unwrap();
                fs.write_file(&path, 0, path.as_bytes()).unwrap();
            }
            if cycle % 2 == 0 {
                fs.commit().unwrap();
            }
            // Crash + remount.
            let mut dev = MemDisk::new(1);
            std::mem::swap(&mut dev, fs.device_mut());
            let (fs2, _) = Filesystem::mount(dev, clock.clone()).unwrap();
            fs = fs2;
            let anchor_content = fs.read_file("/anchor", 0, 16).unwrap();
            prop_assert_eq!(anchor_content, b"anchor".to_vec());
            prop_assert_eq!(fs.fsck().unwrap(), Vec::<String>::new());
            // Committed cycles' files must exist.
            if cycle % 2 == 0 {
                for op in 0..ops_per_cycle {
                    let path = format!("/c{cycle}o{op}");
                    prop_assert!(fs.exists(&path), "missing {}", path);
                }
            }
        }
    }
}

#[test]
fn wholesale_journal_wipe_still_mounts() {
    let mut dev = build_crashed_device(6);
    for fs_block in JOURNAL_FS_BLOCKS {
        let lba = fs_block * SECTORS_PER_FS_BLOCK;
        dev.write_blocks(lba, &vec![0u8; FS_BLOCK_SIZE]).unwrap();
    }
    check_mountable(dev);
}
