//! Model-based property testing: arbitrary operation sequences applied to
//! the real filesystem and to a trivial in-memory model must agree — on
//! every intermediate result and on the final state, including across a
//! commit + remount cycle.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use deepnote_blockdev::MemDisk;
use deepnote_fs::{Filesystem, FsError};
use deepnote_sim::Clock;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The operations the fuzzer may issue. Paths are drawn from a small
/// fixed pool so that operations actually collide.
#[derive(Debug, Clone)]
enum Op {
    CreateFile(usize),
    Mkdir(usize),
    Write(usize, u16, Vec<u8>),
    Read(usize, u16, u16),
    Unlink(usize),
    Rename(usize, usize),
    Truncate(usize, u16),
    Commit,
}

const POOL: [&str; 6] = ["/a", "/b", "/dir/x", "/dir/y", "/dir", "/c"];

fn op_strategy() -> impl Strategy<Value = Op> {
    let path = 0..POOL.len();
    prop_oneof![
        path.clone().prop_map(Op::CreateFile),
        path.clone().prop_map(Op::Mkdir),
        (
            path.clone(),
            0u16..5_000,
            proptest::collection::vec(any::<u8>(), 1..300)
        )
            .prop_map(|(p, off, data)| Op::Write(p, off, data)),
        (path.clone(), 0u16..6_000, 1u16..500).prop_map(|(p, o, l)| Op::Read(p, o, l)),
        path.clone().prop_map(Op::Unlink),
        (path.clone(), path.clone()).prop_map(|(a, b)| Op::Rename(a, b)),
        (path, 0u16..6_000).prop_map(|(p, s)| Op::Truncate(p, s)),
        Just(Op::Commit),
    ]
}

/// The reference model: a map of paths to either directory or file bytes.
#[derive(Debug, Clone, Default)]
struct Model {
    files: BTreeMap<String, Vec<u8>>,
    dirs: BTreeMap<String, ()>,
}

impl Model {
    fn new() -> Self {
        let mut m = Model::default();
        m.dirs.insert("/".into(), ());
        m
    }

    fn parent_of(path: &str) -> String {
        match path.rfind('/') {
            Some(0) => "/".to_string(),
            Some(i) => path[..i].to_string(),
            None => "/".to_string(),
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path) || self.dirs.contains_key(path)
    }

    fn has_children(&self, dir: &str) -> bool {
        let prefix = format!("{}/", dir.trim_end_matches('/'));
        self.files
            .keys()
            .chain(self.dirs.keys())
            .any(|p| p.starts_with(&prefix))
    }

    fn create_file(&mut self, path: &str) -> Result<(), &'static str> {
        if self.exists(path) {
            return Err("exists");
        }
        if !self.dirs.contains_key(&Self::parent_of(path)) {
            return Err("noparent");
        }
        self.files.insert(path.to_string(), Vec::new());
        Ok(())
    }

    fn mkdir(&mut self, path: &str) -> Result<(), &'static str> {
        if self.exists(path) {
            return Err("exists");
        }
        let parent = Self::parent_of(path);
        if !self.dirs.contains_key(&parent) {
            return Err("noparent");
        }
        self.dirs.insert(path.to_string(), ());
        Ok(())
    }

    fn write(&mut self, path: &str, offset: usize, data: &[u8]) -> Result<(), &'static str> {
        if self.dirs.contains_key(path) {
            return Err("isdir");
        }
        let Some(content) = self.files.get_mut(path) else {
            return Err("nofile");
        };
        if content.len() < offset + data.len() {
            content.resize(offset + data.len(), 0);
        }
        content[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read(&self, path: &str, offset: usize, len: usize) -> Result<Vec<u8>, &'static str> {
        if self.dirs.contains_key(path) {
            return Err("isdir");
        }
        let Some(content) = self.files.get(path) else {
            return Err("nofile");
        };
        if offset >= content.len() {
            return Ok(Vec::new());
        }
        let end = (offset + len).min(content.len());
        Ok(content[offset..end].to_vec())
    }

    fn unlink(&mut self, path: &str) -> Result<(), &'static str> {
        if self.files.remove(path).is_some() {
            return Ok(());
        }
        if self.dirs.contains_key(path) {
            if self.has_children(path) {
                return Err("notempty");
            }
            self.dirs.remove(path);
            return Ok(());
        }
        Err("nofile")
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), &'static str> {
        if !self.exists(from) {
            return Err("nofile");
        }
        if self.exists(to) {
            return Err("exists");
        }
        if !self.dirs.contains_key(&Self::parent_of(to)) {
            return Err("noparent");
        }
        // Refuse to move a directory into itself (the fixed pool cannot
        // construct that case, but keep the model honest).
        if from == "/dir" && to.starts_with("/dir/") {
            return Err("into-self");
        }
        if let Some(content) = self.files.remove(from) {
            self.files.insert(to.to_string(), content);
        } else {
            self.dirs.remove(from);
            self.dirs.insert(to.to_string(), ());
            // Move children: both files and subdirectories.
            let prefix = format!("{from}/");
            let moved_files: Vec<(String, Vec<u8>)> = self
                .files
                .iter()
                .filter(|(k, _)| k.starts_with(&prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            for (k, v) in moved_files {
                self.files.remove(&k);
                self.files.insert(format!("{to}/{}", &k[prefix.len()..]), v);
            }
            let moved_dirs: Vec<String> = self
                .dirs
                .keys()
                .filter(|k| k.starts_with(&prefix))
                .cloned()
                .collect();
            for k in moved_dirs {
                self.dirs.remove(&k);
                self.dirs.insert(format!("{to}/{}", &k[prefix.len()..]), ());
            }
        }
        Ok(())
    }

    fn truncate(&mut self, path: &str, size: usize) -> Result<(), &'static str> {
        if self.dirs.contains_key(path) {
            return Err("isdir");
        }
        let Some(content) = self.files.get_mut(path) else {
            return Err("nofile");
        };
        content.resize(size, 0);
        Ok(())
    }
}

fn apply(fs: &mut Filesystem<MemDisk>, model: &mut Model, op: &Op) {
    match op {
        Op::CreateFile(p) => {
            let path = POOL[*p];
            let real = fs.create_file(path);
            let modeled = model.create_file(path);
            assert_eq!(
                real.is_ok(),
                modeled.is_ok(),
                "create_file({path}): {real:?} vs {modeled:?}"
            );
        }
        Op::Mkdir(p) => {
            let path = POOL[*p];
            let real = fs.create(path);
            let modeled = model.mkdir(path);
            assert_eq!(
                real.is_ok(),
                modeled.is_ok(),
                "mkdir({path}): {real:?} vs {modeled:?}"
            );
        }
        Op::Write(p, off, data) => {
            let path = POOL[*p];
            let real = fs.write_file(path, *off as u64, data);
            let modeled = model.write(path, *off as usize, data);
            assert_eq!(
                real.is_ok(),
                modeled.is_ok(),
                "write({path}): {real:?} vs {modeled:?}"
            );
        }
        Op::Read(p, off, len) => {
            let path = POOL[*p];
            let real = fs.read_file(path, *off as u64, *len as usize);
            let modeled = model.read(path, *off as usize, *len as usize);
            match (&real, &modeled) {
                (Ok(r), Ok(m)) => assert_eq!(r, m, "read({path}) content mismatch"),
                (r, m) => assert_eq!(r.is_ok(), m.is_ok(), "read({path}): {r:?} vs {m:?}"),
            }
        }
        Op::Unlink(p) => {
            let path = POOL[*p];
            let real = fs.unlink(path);
            let modeled = model.unlink(path);
            assert_eq!(
                real.is_ok(),
                modeled.is_ok(),
                "unlink({path}): {real:?} vs {modeled:?}"
            );
        }
        Op::Rename(a, b) => {
            let from = POOL[*a];
            let to = POOL[*b];
            if from == to {
                return;
            }
            let real = fs.rename(from, to);
            let modeled = model.rename(from, to);
            assert_eq!(
                real.is_ok(),
                modeled.is_ok(),
                "rename({from},{to}): {real:?} vs {modeled:?}"
            );
        }
        Op::Truncate(p, size) => {
            let path = POOL[*p];
            let real = fs.truncate(path, *size as u64);
            let modeled = model.truncate(path, *size as usize);
            assert_eq!(
                real.is_ok(),
                modeled.is_ok(),
                "truncate({path}): {real:?} vs {modeled:?}"
            );
        }
        Op::Commit => {
            fs.commit().expect("commit on a healthy device");
        }
    }
}

fn check_final_state(fs: &mut Filesystem<MemDisk>, model: &Model) {
    for (path, content) in &model.files {
        let got = fs
            .read_file(path, 0, content.len().max(1))
            .unwrap_or_else(|e| panic!("final read of {path}: {e}"));
        assert_eq!(&got, content, "final content mismatch at {path}");
        assert_eq!(
            fs.stat(path).unwrap().size,
            content.len() as u64,
            "final size mismatch at {path}"
        );
    }
    for path in model.dirs.keys() {
        if path != "/" {
            assert!(fs.exists(path), "directory {path} missing");
        }
    }
    assert_eq!(fs.fsck().unwrap(), Vec::<String>::new(), "fsck problems");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences: the filesystem and the model never disagree,
    /// and the final state survives a commit + remount.
    #[test]
    fn filesystem_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let clock = Clock::new();
        let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock.clone()).unwrap();
        let mut model = Model::new();
        for op in &ops {
            apply(&mut fs, &mut model, op);
        }
        check_final_state(&mut fs, &model);

        // Remount: committed state must equal the model exactly (we
        // commit first, so nothing is lost).
        fs.commit().unwrap();
        let dev = fs.unmount().unwrap();
        let (mut fs2, _) = Filesystem::mount(dev, clock).unwrap();
        check_final_state(&mut fs2, &model);
    }
}

#[test]
fn regression_rename_then_write() {
    // A specific interleaving that once mattered: rename a file, write
    // through the new name, unlink the old directory entry's sibling.
    let clock = Clock::new();
    let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock).unwrap();
    let mut model = Model::new();
    let ops = [
        Op::Mkdir(4),      // /dir
        Op::CreateFile(2), // /dir/x
        Op::Write(2, 100, vec![7u8; 64]),
        Op::Rename(2, 3), // /dir/x -> /dir/y
        Op::Write(3, 0, vec![9u8; 32]),
        Op::Commit,
        Op::Unlink(3),
        Op::Unlink(4),
    ];
    for op in &ops {
        apply(&mut fs, &mut model, op);
    }
    check_final_state(&mut fs, &model);
}

#[test]
fn error_kinds_match_expectations() {
    let clock = Clock::new();
    let mut fs = Filesystem::format(MemDisk::new(1 << 17), clock).unwrap();
    assert_eq!(fs.read_file("/nope", 0, 1), Err(FsError::NotFound));
    fs.create("/d").unwrap();
    assert_eq!(fs.read_file("/d", 0, 1), Err(FsError::IsADirectory));
    assert_eq!(fs.write_file("/d", 0, b"x"), Err(FsError::IsADirectory));
}
