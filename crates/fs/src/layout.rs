//! On-disk layout: superblock and region arithmetic.
//!
//! Filesystem blocks are 4 KiB (8 device blocks). The disk is laid out as
//!
//! ```text
//! | sb | journal ........ | inode bmap | block bmap | inode table | data |
//!   0    1 .. 1+J           fixed 1      B blocks     T blocks      rest
//! ```

use crate::error::FsError;
use serde::{Deserialize, Serialize};

/// Filesystem block size in bytes.
pub const FS_BLOCK_SIZE: usize = 4096;
/// Device (sector) blocks per filesystem block.
pub const SECTORS_PER_FS_BLOCK: u64 = (FS_BLOCK_SIZE / 512) as u64;
/// Magic number identifying a formatted filesystem ("DPNT").
pub const MAGIC: u32 = 0x4450_4E54;
/// Bytes reserved per on-disk inode.
pub const INODE_DISK_SIZE: usize = 256;
/// Inodes per table block.
pub const INODES_PER_BLOCK: u64 = (FS_BLOCK_SIZE / INODE_DISK_SIZE) as u64;
/// The root directory's inode number.
pub const ROOT_INO: u64 = 1;

/// Filesystem-wide mount state recorded in the superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SbState {
    /// Cleanly unmounted.
    Clean,
    /// Mounted (or crashed while mounted): journal replay required.
    Dirty,
    /// The filesystem recorded a fatal error (journal abort).
    HasError,
}

impl SbState {
    fn to_u32(self) -> u32 {
        match self {
            SbState::Clean => 0,
            SbState::Dirty => 1,
            SbState::HasError => 2,
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        match v {
            0 => Some(SbState::Clean),
            1 => Some(SbState::Dirty),
            2 => Some(SbState::HasError),
            _ => None,
        }
    }
}

/// The superblock: geometry of every region plus mount state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Superblock {
    /// Total filesystem blocks (including metadata regions).
    pub total_blocks: u64,
    /// Journal region start (fs block index).
    pub journal_start: u64,
    /// Journal region length in fs blocks (incl. its own superblock).
    pub journal_blocks: u64,
    /// Inode bitmap block index.
    pub inode_bitmap_block: u64,
    /// Block bitmap start block index.
    pub block_bitmap_start: u64,
    /// Number of block-bitmap blocks.
    pub block_bitmap_blocks: u64,
    /// Inode table start block index.
    pub inode_table_start: u64,
    /// Number of inode-table blocks.
    pub inode_table_blocks: u64,
    /// First data block index.
    pub data_start: u64,
    /// Total inodes.
    pub total_inodes: u64,
    /// Mount state.
    pub state: SbState,
    /// Errno recorded when `state == HasError` (kernel convention, ≤ 0).
    pub error_code: i32,
    /// Times this filesystem has been mounted.
    pub mount_count: u32,
}

impl Superblock {
    /// Computes a layout for a device of `device_blocks` 512-byte blocks.
    ///
    /// The filesystem caps itself at 4 GiB of managed space so bitmaps
    /// stay small even on a 500 GB device (the paper's workloads never
    /// exceed this).
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] if the device is too small (< ~10 MiB).
    pub fn plan(device_blocks: u64) -> Result<Superblock, FsError> {
        let fs_blocks_available = device_blocks / SECTORS_PER_FS_BLOCK;
        let total_blocks = fs_blocks_available.min(4 * 1024 * 1024 * 1024 / FS_BLOCK_SIZE as u64);
        if total_blocks < 2_560 {
            return Err(FsError::NoSpace);
        }
        let journal_start = 1;
        let journal_blocks = 1_024; // 4 MiB journal, like small ext4.
        let inode_bitmap_block = journal_start + journal_blocks;
        // One bitmap block indexes 4096*8 = 32768 blocks.
        let bits_per_block = (FS_BLOCK_SIZE * 8) as u64;
        let block_bitmap_start = inode_bitmap_block + 1;
        let block_bitmap_blocks = total_blocks.div_ceil(bits_per_block);
        let total_inodes = (bits_per_block).min(8_192);
        let inode_table_start = block_bitmap_start + block_bitmap_blocks;
        let inode_table_blocks = total_inodes.div_ceil(INODES_PER_BLOCK);
        let data_start = inode_table_start + inode_table_blocks;
        if data_start + 256 > total_blocks {
            return Err(FsError::NoSpace);
        }
        Ok(Superblock {
            total_blocks,
            journal_start,
            journal_blocks,
            inode_bitmap_block,
            block_bitmap_start,
            block_bitmap_blocks,
            inode_table_start,
            inode_table_blocks,
            data_start,
            total_inodes,
            state: SbState::Clean,
            error_code: 0,
            mount_count: 0,
        })
    }

    /// Number of data blocks managed by the allocator.
    pub fn data_blocks(&self) -> u64 {
        self.total_blocks - self.data_start
    }

    /// Serializes the superblock into one filesystem block.
    pub fn to_block(&self) -> Vec<u8> {
        let mut buf = vec![0u8; FS_BLOCK_SIZE];
        let mut w = Writer::new(&mut buf);
        w.u32(MAGIC);
        w.u64(self.total_blocks);
        w.u64(self.journal_start);
        w.u64(self.journal_blocks);
        w.u64(self.inode_bitmap_block);
        w.u64(self.block_bitmap_start);
        w.u64(self.block_bitmap_blocks);
        w.u64(self.inode_table_start);
        w.u64(self.inode_table_blocks);
        w.u64(self.data_start);
        w.u64(self.total_inodes);
        w.u32(self.state.to_u32());
        w.i32(self.error_code);
        w.u32(self.mount_count);
        buf
    }

    /// Parses a superblock from a filesystem block.
    ///
    /// # Errors
    ///
    /// [`FsError::BadSuperblock`] if the magic or fields are invalid.
    pub fn from_block(buf: &[u8]) -> Result<Superblock, FsError> {
        if buf.len() < FS_BLOCK_SIZE {
            return Err(FsError::BadSuperblock);
        }
        let mut r = Reader::new(buf);
        let parse = |r: &mut Reader| -> Option<Superblock> {
            if r.u32()? != MAGIC {
                return None;
            }
            Some(Superblock {
                total_blocks: r.u64()?,
                journal_start: r.u64()?,
                journal_blocks: r.u64()?,
                inode_bitmap_block: r.u64()?,
                block_bitmap_start: r.u64()?,
                block_bitmap_blocks: r.u64()?,
                inode_table_start: r.u64()?,
                inode_table_blocks: r.u64()?,
                data_start: r.u64()?,
                total_inodes: r.u64()?,
                state: SbState::from_u32(r.u32()?)?,
                error_code: r.i32()?,
                mount_count: r.u32()?,
            })
        };
        let sb = parse(&mut r).ok_or(FsError::BadSuperblock)?;
        if sb.data_start >= sb.total_blocks || sb.journal_blocks == 0 {
            return Err(FsError::BadSuperblock);
        }
        Ok(sb)
    }
}

/// Little-endian field writer over a byte buffer.
pub(crate) struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    pub(crate) fn new(buf: &'a mut [u8]) -> Self {
        Writer { buf, pos: 0 }
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn i32(&mut self, v: i32) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf[self.pos..self.pos + v.len()].copy_from_slice(v);
        self.pos += v.len();
    }

    /// Bytes written so far (used by tests; readers use their own).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn position(&self) -> usize {
        self.pos
    }
}

/// Little-endian field reader over a byte buffer.
///
/// Every accessor returns `None` past the end of the buffer instead of
/// panicking: the bytes come off a (possibly attacked, possibly
/// corrupt) disk, and a torn journal descriptor or directory block must
/// surface as a parse error, not crash the node.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.buf.get(self.pos..self.pos + 4)?.try_into().ok()?);
        self.pos += 4;
        Some(v)
    }

    pub(crate) fn i32(&mut self) -> Option<i32> {
        let v = i32::from_le_bytes(self.buf.get(self.pos..self.pos + 4)?.try_into().ok()?);
        self.pos += 4;
        Some(v)
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.buf.get(self.pos..self.pos + 8)?.try_into().ok()?);
        self.pos += 8;
        Some(v)
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let v = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(v)
    }

    pub(crate) fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_regions_do_not_overlap() {
        let sb = Superblock::plan(1 << 20).unwrap(); // 512 MiB device
        assert!(sb.journal_start >= 1);
        assert!(sb.inode_bitmap_block == sb.journal_start + sb.journal_blocks);
        assert!(sb.block_bitmap_start > sb.inode_bitmap_block);
        assert!(sb.inode_table_start >= sb.block_bitmap_start + sb.block_bitmap_blocks);
        assert!(sb.data_start == sb.inode_table_start + sb.inode_table_blocks);
        assert!(sb.data_start < sb.total_blocks);
        assert!(sb.data_blocks() > 0);
    }

    #[test]
    fn plan_caps_at_4gib() {
        let sb = Superblock::plan(u64::MAX / 1024).unwrap();
        assert_eq!(
            sb.total_blocks,
            4 * 1024 * 1024 * 1024 / FS_BLOCK_SIZE as u64
        );
    }

    #[test]
    fn plan_rejects_tiny_devices() {
        assert_eq!(Superblock::plan(100), Err(FsError::NoSpace));
    }

    #[test]
    fn superblock_roundtrip() {
        let mut sb = Superblock::plan(1 << 20).unwrap();
        sb.state = SbState::HasError;
        sb.error_code = -5;
        sb.mount_count = 7;
        let parsed = Superblock::from_block(&sb.to_block()).unwrap();
        assert_eq!(parsed, sb);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; FS_BLOCK_SIZE];
        assert_eq!(Superblock::from_block(&buf), Err(FsError::BadSuperblock));
        assert_eq!(
            Superblock::from_block(&[0u8; 10]),
            Err(FsError::BadSuperblock)
        );
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut buf = vec![0u8; 64];
        let mut w = Writer::new(&mut buf);
        w.u32(0xDEAD_BEEF);
        w.i32(-42);
        w.u64(123_456_789_000);
        w.bytes(b"abc");
        assert_eq!(w.position(), 19);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.i32(), Some(-42));
        assert_eq!(r.u64(), Some(123_456_789_000));
        assert_eq!(r.bytes(3), Some(b"abc".as_slice()));
        assert_eq!(r.position(), 19);
    }

    #[test]
    fn reader_returns_none_past_the_end() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), None);
        assert_eq!(r.bytes(2), Some([1u8, 2].as_slice()));
        assert_eq!(r.bytes(2), None);
        assert_eq!(r.position(), 2);
    }
}
