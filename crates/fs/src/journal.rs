//! The JBD-style write-ahead journal.
//!
//! Transactions collect metadata block images. A commit writes, inside the
//! journal region:
//!
//! ```text
//! | descriptor (seq, block list) | image … image | commit (seq, checksum) |
//! ```
//!
//! then checkpoints the images to their home locations and finally updates
//! the **journal superblock** to mark the transaction clean. Every journal
//! write is retried against the device until a *patience budget* is
//! exhausted (default 75 virtual seconds, standing in for the kernel's
//! SCSI timeout/retry stack); exhausting it **aborts the journal with
//! errno −5** — precisely the Ext4 failure the paper observes, because
//! "the journal superblock cannot be updated due to the blocked I/O".

use crate::error::FsError;
use crate::layout::{Reader, Writer, FS_BLOCK_SIZE, SECTORS_PER_FS_BLOCK};
use deepnote_blockdev::BlockDevice;
use deepnote_sim::{Clock, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

const JSB_MAGIC: u32 = 0x4A53_4231; // "JSB1"
const JDESC_MAGIC: u32 = 0x4A44_5343; // "JDSC"
const JCOMMIT_MAGIC: u32 = 0x4A43_4D54; // "JCMT"

/// Journal tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JournalConfig {
    /// How often the running transaction is committed (ext4 default: 5 s).
    pub commit_interval: SimDuration,
    /// How long commit-path I/O is retried before the journal aborts.
    /// Models the kernel block layer's timeout/retry stack.
    pub patience: SimDuration,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            commit_interval: SimDuration::from_secs(5),
            patience: SimDuration::from_secs(75),
        }
    }
}

/// Reads one filesystem block.
pub(crate) fn read_fs_block(dev: &mut dyn BlockDevice, fs_block: u64) -> Result<Vec<u8>, FsError> {
    let mut buf = vec![0u8; FS_BLOCK_SIZE];
    dev.read_blocks(fs_block * SECTORS_PER_FS_BLOCK, &mut buf)?;
    Ok(buf)
}

/// Writes one or more contiguous filesystem blocks (single attempt).
pub(crate) fn write_fs_block(
    dev: &mut dyn BlockDevice,
    fs_block: u64,
    data: &[u8],
) -> Result<(), FsError> {
    debug_assert!(!data.is_empty() && data.len().is_multiple_of(FS_BLOCK_SIZE));
    dev.write_blocks(fs_block * SECTORS_PER_FS_BLOCK, data)?;
    Ok(())
}

fn checksum(images: &BTreeMap<u64, Vec<u8>>) -> u32 {
    let mut sum: u32 = 0;
    for (no, img) in images {
        sum = sum.wrapping_add(*no as u32).wrapping_mul(31);
        for chunk in img.chunks(4) {
            let mut b = [0u8; 4];
            b[..chunk.len()].copy_from_slice(chunk);
            sum = sum.wrapping_add(u32::from_le_bytes(b)).rotate_left(1);
        }
    }
    sum
}

/// The journal state for a mounted filesystem.
#[derive(Debug)]
pub struct Journal {
    config: JournalConfig,
    /// Journal region start (fs block index); block 0 of the region is
    /// the journal superblock.
    region_start: u64,
    region_blocks: u64,
    /// Next sequence number to commit.
    seq: u64,
    /// Highest sequence known fully checkpointed (clean).
    clean_seq: u64,
    /// Write head within the region (block offset ≥ 1).
    head: u64,
    /// The running transaction: home block → pending image.
    txn: BTreeMap<u64, Vec<u8>>,
    last_commit: SimTime,
    aborted: Option<i32>,
    commits: u64,
    write_failures: u64,
}

impl Journal {
    /// Creates a fresh (formatted) journal.
    pub fn new(config: JournalConfig, region_start: u64, region_blocks: u64, now: SimTime) -> Self {
        assert!(region_blocks >= 8, "journal region too small");
        Journal {
            config,
            region_start,
            region_blocks,
            seq: 1,
            clean_seq: 0,
            head: 1,
            txn: BTreeMap::new(),
            last_commit: now,
            aborted: None,
            commits: 0,
            write_failures: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// Whether the journal has aborted, and with what errno.
    pub fn aborted(&self) -> Option<i32> {
        self.aborted
    }

    /// Number of successful commits so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Number of individual device-write failures absorbed by the
    /// commit-path retry loop (each one is a "Buffer I/O error" in kernel
    /// terms).
    pub fn write_failures(&self) -> u64 {
        self.write_failures
    }

    /// Number of metadata blocks in the running transaction.
    pub fn pending_blocks(&self) -> usize {
        self.txn.len()
    }

    /// The pending image of a home block, if this transaction dirtied it.
    pub fn pending_image(&self, home_block: u64) -> Option<&[u8]> {
        self.txn.get(&home_block).map(|v| v.as_slice())
    }

    /// Stages a metadata block image into the running transaction.
    ///
    /// # Panics
    ///
    /// Panics if the image is not exactly one filesystem block.
    pub fn stage(&mut self, home_block: u64, image: Vec<u8>) {
        assert_eq!(
            image.len(),
            FS_BLOCK_SIZE,
            "staged image must be one fs block"
        );
        self.txn.insert(home_block, image);
    }

    /// Whether the commit interval has elapsed with work pending.
    pub fn should_commit(&self, now: SimTime) -> bool {
        self.commit_due(now, false)
    }

    /// Like [`Journal::should_commit`], also treating caller-side pending
    /// work (ordered-mode dirty data) as a reason to commit.
    pub fn commit_due(&self, now: SimTime, extra_work: bool) -> bool {
        (!self.txn.is_empty() || extra_work)
            && now.saturating_duration_since(self.last_commit) >= self.config.commit_interval
    }

    fn serialize_jsb(&self) -> Vec<u8> {
        let mut buf = vec![0u8; FS_BLOCK_SIZE];
        let mut w = Writer::new(&mut buf);
        w.u32(JSB_MAGIC);
        w.u64(self.clean_seq);
        w.u64(self.head);
        buf
    }

    /// Parses a journal superblock, returning `(clean_seq, head)`.
    fn parse_jsb(buf: &[u8]) -> Option<(u64, u64)> {
        let mut r = Reader::new(buf);
        if r.u32()? != JSB_MAGIC {
            return None;
        }
        Some((r.u64()?, r.u64()?))
    }

    /// Writes `data` to `fs_block`, retrying on failure until the patience
    /// deadline; marks the journal aborted and returns the JBD error when
    /// patience runs out.
    fn write_patiently(
        &mut self,
        dev: &mut dyn BlockDevice,
        clock: &Clock,
        deadline: SimTime,
        fs_block: u64,
        data: &[u8],
    ) -> Result<(), FsError> {
        loop {
            let before = clock.now();
            match write_fs_block(dev, fs_block, data) {
                Ok(()) => return Ok(()),
                Err(_) if clock.now() < deadline => {
                    self.write_failures += 1;
                    // Device burned some time failing; if it didn't (ideal
                    // devices with injected faults), model the block
                    // layer's requeue delay.
                    if clock.now() == before {
                        clock.advance(SimDuration::from_millis(10));
                    }
                }
                Err(_) => {
                    self.write_failures += 1;
                    self.aborted = Some(-5);
                    return Err(FsError::JournalAborted { errno: -5 });
                }
            }
        }
    }

    /// Commits the running transaction in ordered mode: pending **data
    /// runs** are flushed to their home locations first, then the journal
    /// record is written, checkpointed, and the journal superblock
    /// updated.
    ///
    /// # Errors
    ///
    /// [`FsError::JournalAborted`] once the patience budget is exhausted;
    /// the journal is then permanently aborted.
    pub fn commit(
        &mut self,
        dev: &mut dyn BlockDevice,
        clock: &Clock,
        data_runs: &[(u64, Vec<u8>)],
    ) -> Result<(), FsError> {
        if let Some(errno) = self.aborted {
            return Err(FsError::JournalAborted { errno });
        }
        if self.txn.is_empty() && data_runs.is_empty() {
            self.last_commit = clock.now();
            return Ok(());
        }
        let deadline = clock.now() + self.config.patience;

        // Ordered mode: file data reaches disk before the metadata that
        // references it becomes durable.
        for (start, buf) in data_runs {
            self.write_patiently(dev, clock, deadline, *start, buf)?;
        }
        if self.txn.is_empty() {
            self.last_commit = clock.now();
            return Ok(());
        }

        // A transaction needs descriptor + images + commit block.
        let needed = 2 + self.txn.len() as u64;
        assert!(
            needed < self.region_blocks,
            "transaction of {} blocks exceeds journal capacity",
            self.txn.len()
        );
        if self.head + needed > self.region_blocks {
            self.head = 1; // wrap
        }

        // Descriptor + images + commit block form one contiguous record in
        // the journal region; issue them as a single sequential write —
        // exactly why journaling is fast on rotating media.
        let images: Vec<(u64, Vec<u8>)> = self
            .txn
            .iter()
            .map(|(no, img)| (*no, img.clone()))
            .collect();
        let mut record = vec![0u8; FS_BLOCK_SIZE * (2 + images.len())];
        {
            let mut w = Writer::new(&mut record[..FS_BLOCK_SIZE]);
            w.u32(JDESC_MAGIC);
            w.u64(self.seq);
            w.u32(self.txn.len() as u32);
            for no in self.txn.keys() {
                w.u64(*no);
            }
        }
        for (i, (_, img)) in images.iter().enumerate() {
            let off = FS_BLOCK_SIZE * (1 + i);
            record[off..off + FS_BLOCK_SIZE].copy_from_slice(img);
        }
        {
            let off = FS_BLOCK_SIZE * (1 + images.len());
            let mut w = Writer::new(&mut record[off..]);
            w.u32(JCOMMIT_MAGIC);
            w.u64(self.seq);
            w.u32(checksum(&self.txn));
        }
        let base = self.region_start + self.head;
        self.write_patiently(dev, clock, deadline, base, &record)?;

        // Checkpoint to home locations.
        for (no, img) in &images {
            self.write_patiently(dev, clock, deadline, *no, img)?;
        }

        // Mark clean: update the journal superblock. This is the write the
        // paper calls out as the one that "cannot be updated".
        self.clean_seq = self.seq;
        self.head += needed;
        let jsb = self.serialize_jsb();
        self.write_patiently(dev, clock, deadline, self.region_start, &jsb)?;

        self.seq += 1;
        self.txn.clear();
        self.last_commit = clock.now();
        self.commits += 1;
        Ok(())
    }

    /// Replays committed-but-not-checkpointed transactions after a crash.
    /// Returns the number of transactions applied, and the reconstructed
    /// journal ready for new work.
    ///
    /// # Errors
    ///
    /// Propagates device errors encountered while reading the journal or
    /// applying images.
    pub fn recover(
        config: JournalConfig,
        dev: &mut dyn BlockDevice,
        region_start: u64,
        region_blocks: u64,
        now: SimTime,
    ) -> Result<(Journal, usize), FsError> {
        let jsb_raw = read_fs_block(dev, region_start)?;
        let (clean_seq, _head) = Self::parse_jsb(&jsb_raw).unwrap_or((0, 1));

        // Scan the whole region for valid transactions.
        let mut candidates: BTreeMap<u64, Vec<(u64, Vec<u8>)>> = BTreeMap::new();
        let mut off = 1;
        while off < region_blocks {
            let raw = read_fs_block(dev, region_start + off)?;
            // A descriptor that does not parse — bad magic, or a home
            // list torn past the end of the block — is skipped like any
            // other non-descriptor block.
            let parse_desc = |raw: &[u8]| -> Option<(u64, u64, Vec<u64>)> {
                let mut r = Reader::new(raw);
                if r.u32()? != JDESC_MAGIC {
                    return None;
                }
                let seq = r.u64()?;
                let count = r.u32()? as u64;
                if count == 0 || off + 1 + count + 1 > region_blocks {
                    return None;
                }
                let mut homes = Vec::new();
                for _ in 0..count {
                    homes.push(r.u64()?);
                }
                Some((seq, count, homes))
            };
            let Some((seq, count, homes)) = parse_desc(&raw) else {
                off += 1;
                continue;
            };
            let mut images = BTreeMap::new();
            for (i, home) in homes.iter().enumerate() {
                let img = read_fs_block(dev, region_start + off + 1 + i as u64)?;
                images.insert(*home, img);
            }
            let cmt_raw = read_fs_block(dev, region_start + off + 1 + count)?;
            let mut cr = Reader::new(&cmt_raw);
            let valid = cr.u32() == Some(JCOMMIT_MAGIC)
                && cr.u64() == Some(seq)
                && cr.u32() == Some(checksum(&images));
            if valid {
                candidates.insert(seq, images.into_iter().collect());
                off += 1 + count + 1;
            } else {
                off += 1;
            }
        }

        // Apply transactions newer than the clean mark, in order.
        let mut applied = 0;
        let mut max_seq = clean_seq;
        for (seq, images) in candidates {
            max_seq = max_seq.max(seq);
            if seq <= clean_seq {
                continue;
            }
            for (home, img) in images {
                write_fs_block(dev, home, &img)?;
            }
            applied += 1;
        }

        let mut journal = Journal::new(config, region_start, region_blocks, now);
        journal.seq = max_seq + 1;
        journal.clean_seq = max_seq;
        // Mark everything clean.
        let jsb = journal.serialize_jsb();
        write_fs_block(dev, region_start, &jsb)?;
        Ok((journal, applied))
    }

    /// Formats the journal region (zeroes the journal superblock state).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn format(
        dev: &mut dyn BlockDevice,
        region_start: u64,
        region_blocks: u64,
    ) -> Result<(), FsError> {
        assert!(region_blocks >= 8, "journal region too small");
        let jsb = {
            let mut buf = vec![0u8; FS_BLOCK_SIZE];
            let mut w = Writer::new(&mut buf);
            w.u32(JSB_MAGIC);
            w.u64(0); // clean_seq
            w.u64(1); // head
            buf
        };
        write_fs_block(dev, region_start, &jsb)?;
        // Invalidate the first descriptor slot so stale journals are not
        // replayed.
        write_fs_block(dev, region_start + 1, &vec![0u8; FS_BLOCK_SIZE])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepnote_blockdev::{FaultInjector, FaultPlan, IoError, MemDisk};

    const REGION: u64 = 1;
    const RLEN: u64 = 64;

    fn image(fill: u8) -> Vec<u8> {
        vec![fill; FS_BLOCK_SIZE]
    }

    fn fresh(dev: &mut dyn BlockDevice, clock: &Clock) -> Journal {
        Journal::format(dev, REGION, RLEN).unwrap();
        Journal::new(JournalConfig::default(), REGION, RLEN, clock.now())
    }

    #[test]
    fn commit_checkpoints_images() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        j.stage(100, image(0xAA));
        j.stage(101, image(0xBB));
        assert_eq!(j.pending_blocks(), 2);
        j.commit(&mut dev, &clock, &[]).unwrap();
        assert_eq!(j.pending_blocks(), 0);
        assert_eq!(j.commits(), 1);
        assert_eq!(read_fs_block(&mut dev, 100).unwrap(), image(0xAA));
        assert_eq!(read_fs_block(&mut dev, 101).unwrap(), image(0xBB));
    }

    #[test]
    fn empty_commit_is_cheap_and_ok() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        j.commit(&mut dev, &clock, &[]).unwrap();
        assert_eq!(j.commits(), 0);
    }

    #[test]
    fn should_commit_after_interval() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        assert!(!j.should_commit(clock.now()));
        j.stage(50, image(1));
        assert!(!j.should_commit(clock.now()));
        let later = clock.now() + SimDuration::from_secs(5);
        assert!(j.should_commit(later));
    }

    #[test]
    fn pending_image_visible_before_commit() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        j.stage(77, image(3));
        assert_eq!(j.pending_image(77).unwrap()[0], 3);
        assert!(j.pending_image(78).is_none());
    }

    #[test]
    fn blocked_device_aborts_with_minus_5_after_patience() {
        let clock = Clock::new();
        let mut dev = FaultInjector::new(
            MemDisk::new(1 << 16),
            FaultPlan::FailFrom {
                start: 0,
                error: IoError::NoResponse,
            },
        );
        let mut j = Journal::new(
            JournalConfig {
                commit_interval: SimDuration::from_secs(5),
                patience: SimDuration::from_secs(75),
            },
            REGION,
            RLEN,
            clock.now(),
        );
        j.stage(100, image(9));
        let t0 = clock.now();
        let err = j.commit(&mut dev, &clock, &[]).unwrap_err();
        assert_eq!(err, FsError::JournalAborted { errno: -5 });
        assert_eq!(j.aborted(), Some(-5));
        let waited = (clock.now() - t0).as_secs_f64();
        assert!((74.0..80.0).contains(&waited), "waited {waited}s");
        // And it stays aborted.
        assert_eq!(
            j.commit(&mut dev, &clock, &[]).unwrap_err(),
            FsError::JournalAborted { errno: -5 }
        );
    }

    #[test]
    fn recovery_applies_committed_but_not_checkpointed() {
        let clock = Clock::new();
        // Commit normally once so journal contains the records, then
        // simulate the checkpoint being lost by clobbering home blocks.
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        j.stage(200, image(0x11));
        j.stage(201, image(0x22));
        j.commit(&mut dev, &clock, &[]).unwrap();
        // Crash before checkpoint: emulate by zeroing the home blocks and
        // resetting the journal superblock's clean mark to 0.
        write_fs_block(&mut dev, 200, &image(0)).unwrap();
        write_fs_block(&mut dev, 201, &image(0)).unwrap();
        let stale_jsb = {
            let mut buf = vec![0u8; FS_BLOCK_SIZE];
            let mut w = Writer::new(&mut buf);
            w.u32(JSB_MAGIC);
            w.u64(0);
            w.u64(1);
            buf
        };
        write_fs_block(&mut dev, REGION, &stale_jsb).unwrap();

        let (j2, applied) = Journal::recover(
            JournalConfig::default(),
            &mut dev,
            REGION,
            RLEN,
            clock.now(),
        )
        .unwrap();
        assert_eq!(applied, 1);
        assert_eq!(read_fs_block(&mut dev, 200).unwrap(), image(0x11));
        assert_eq!(read_fs_block(&mut dev, 201).unwrap(), image(0x22));
        assert!(j2.aborted().is_none());
    }

    #[test]
    fn recovery_ignores_clean_transactions() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        j.stage(300, image(0x77));
        j.commit(&mut dev, &clock, &[]).unwrap();
        // Home block now holds 0x77; overwrite it directly (as if a later
        // in-place update happened) and recover: the clean transaction
        // must NOT be re-applied over the newer data.
        write_fs_block(&mut dev, 300, &image(0x99)).unwrap();
        let (_, applied) = Journal::recover(
            JournalConfig::default(),
            &mut dev,
            REGION,
            RLEN,
            clock.now(),
        )
        .unwrap();
        assert_eq!(applied, 0);
        assert_eq!(read_fs_block(&mut dev, 300).unwrap(), image(0x99));
    }

    #[test]
    fn torn_commit_not_replayed() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        j.stage(400, image(0x42));
        j.commit(&mut dev, &clock, &[]).unwrap();
        // Corrupt the commit block of the (only) transaction and reset
        // the clean mark: replay must reject the torn record.
        write_fs_block(&mut dev, 400, &image(0)).unwrap();
        // Descriptor is at region offset 1; images at 2; commit at 3.
        write_fs_block(&mut dev, REGION + 3, &image(0)).unwrap();
        let stale_jsb = {
            let mut buf = vec![0u8; FS_BLOCK_SIZE];
            let mut w = Writer::new(&mut buf);
            w.u32(JSB_MAGIC);
            w.u64(0);
            w.u64(1);
            buf
        };
        write_fs_block(&mut dev, REGION, &stale_jsb).unwrap();
        let (_, applied) = Journal::recover(
            JournalConfig::default(),
            &mut dev,
            REGION,
            RLEN,
            clock.now(),
        )
        .unwrap();
        assert_eq!(applied, 0);
        assert_eq!(read_fs_block(&mut dev, 400).unwrap(), image(0));
    }

    #[test]
    fn ordered_data_runs_written_before_metadata() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        j.stage(700, image(0x10));
        let data = vec![
            (800u64, image(0x42)),
            (900u64, vec![7u8; FS_BLOCK_SIZE * 2]),
        ];
        j.commit(&mut dev, &clock, &data).unwrap();
        assert_eq!(read_fs_block(&mut dev, 700).unwrap(), image(0x10));
        assert_eq!(read_fs_block(&mut dev, 800).unwrap(), image(0x42));
        assert_eq!(read_fs_block(&mut dev, 901).unwrap(), image(7));
    }

    #[test]
    fn data_only_commit_flushes_without_journal_record() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        j.commit(&mut dev, &clock, &[(600, image(0x77))]).unwrap();
        assert_eq!(read_fs_block(&mut dev, 600).unwrap(), image(0x77));
        // No transaction was recorded.
        assert_eq!(j.commits(), 0);
    }

    #[test]
    fn journal_wraps_when_full() {
        let clock = Clock::new();
        let mut dev = MemDisk::new(1 << 16);
        let mut j = fresh(&mut dev, &clock);
        // Each txn uses 3 region blocks (desc + 1 image + commit); the
        // 64-block region wraps after ~21 commits.
        for i in 0..40u64 {
            j.stage(500 + i, image(i as u8));
            j.commit(&mut dev, &clock, &[]).unwrap();
        }
        assert_eq!(j.commits(), 40);
        for i in 0..40u64 {
            assert_eq!(read_fs_block(&mut dev, 500 + i).unwrap(), image(i as u8));
        }
    }
}
