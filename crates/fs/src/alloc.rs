//! Bitmap allocators for inodes and data blocks.
//!
//! The bitmaps are held in memory while mounted and persisted through the
//! journal like any other metadata block.

use crate::error::FsError;
use serde::{Deserialize, Serialize};

/// A simple first-fit bitmap allocator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    bits: Vec<u8>,
    capacity: u64,
    allocated: u64,
    next_hint: u64,
}

impl Bitmap {
    /// Creates an empty bitmap tracking `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "bitmap capacity must be positive");
        Bitmap {
            bits: vec![0u8; capacity.div_ceil(8) as usize],
            capacity,
            allocated: 0,
            next_hint: 0,
        }
    }

    /// Restores a bitmap from its on-disk bytes.
    pub fn from_bytes(capacity: u64, bytes: &[u8]) -> Self {
        let mut bm = Bitmap::new(capacity);
        let n = bm.bits.len().min(bytes.len());
        bm.bits[..n].copy_from_slice(&bytes[..n]);
        bm.allocated = (0..capacity).filter(|&i| bm.is_set(i)).count() as u64;
        bm
    }

    /// The raw bitmap bytes (for persistence).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Number of tracked items.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of allocated items.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of free items.
    pub fn free(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Whether item `index` is allocated.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn is_set(&self, index: u64) -> bool {
        assert!(index < self.capacity, "bitmap index {index} out of range");
        self.bits[(index / 8) as usize] & (1 << (index % 8)) != 0
    }

    /// Allocates one item, first-fit with a rotating hint.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] when full.
    pub fn alloc(&mut self) -> Result<u64, FsError> {
        if self.allocated >= self.capacity {
            return Err(FsError::NoSpace);
        }
        for probe in 0..self.capacity {
            let idx = (self.next_hint + probe) % self.capacity;
            if !self.is_set(idx) {
                self.bits[(idx / 8) as usize] |= 1 << (idx % 8);
                self.allocated += 1;
                self.next_hint = (idx + 1) % self.capacity;
                return Ok(idx);
            }
        }
        Err(FsError::NoSpace)
    }

    /// Marks a specific item allocated (used when replaying / reserving).
    ///
    /// Idempotent: setting an already-set bit is a no-op.
    pub fn set(&mut self, index: u64) {
        assert!(index < self.capacity, "bitmap index {index} out of range");
        if !self.is_set(index) {
            self.bits[(index / 8) as usize] |= 1 << (index % 8);
            self.allocated += 1;
        }
    }

    /// Frees an item.
    ///
    /// # Panics
    ///
    /// Panics if the item is not allocated (double free) or out of range.
    pub fn free_item(&mut self, index: u64) {
        assert!(self.is_set(index), "double free of bitmap item {index}");
        self.bits[(index / 8) as usize] &= !(1 << (index % 8));
        self.allocated -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_free_cycle() {
        let mut bm = Bitmap::new(16);
        let a = bm.alloc().unwrap();
        let b = bm.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(bm.allocated(), 2);
        bm.free_item(a);
        assert_eq!(bm.allocated(), 1);
        assert!(!bm.is_set(a));
        assert!(bm.is_set(b));
    }

    #[test]
    fn exhaustion_returns_nospace() {
        let mut bm = Bitmap::new(3);
        for _ in 0..3 {
            bm.alloc().unwrap();
        }
        assert_eq!(bm.alloc(), Err(FsError::NoSpace));
        assert_eq!(bm.free(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut bm = Bitmap::new(4);
        let a = bm.alloc().unwrap();
        bm.free_item(a);
        bm.free_item(a);
    }

    #[test]
    fn persistence_roundtrip() {
        let mut bm = Bitmap::new(100);
        for _ in 0..37 {
            bm.alloc().unwrap();
        }
        bm.free_item(5);
        let restored = Bitmap::from_bytes(100, bm.as_bytes());
        assert_eq!(restored.allocated(), bm.allocated());
        for i in 0..100 {
            assert_eq!(restored.is_set(i), bm.is_set(i), "bit {i}");
        }
    }

    #[test]
    fn set_is_idempotent() {
        let mut bm = Bitmap::new(8);
        bm.set(3);
        bm.set(3);
        assert_eq!(bm.allocated(), 1);
    }

    proptest! {
        /// Alloc never hands out the same item twice without a free.
        #[test]
        fn unique_allocations(n in 1u64..200) {
            let mut bm = Bitmap::new(200);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n {
                let idx = bm.alloc().unwrap();
                prop_assert!(seen.insert(idx));
                prop_assert!(idx < 200);
            }
            prop_assert_eq!(bm.allocated(), n);
        }
    }
}
