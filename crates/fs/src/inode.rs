//! Inodes.
//!
//! Fixed 256-byte on-disk inodes with 12 direct block pointers and one
//! single-indirect pointer, ext2/3/4 style. Maximum file size is
//! `12·4 KiB + 512·4 KiB = 2 MiB` — ample for the paper's workloads while
//! keeping the code auditable.

use crate::error::FsError;
use crate::layout::{Reader, Writer, FS_BLOCK_SIZE, INODE_DISK_SIZE};
use serde::{Deserialize, Serialize};

/// Direct block pointers per inode.
pub const DIRECT_POINTERS: usize = 12;
/// Block pointers held by the single-indirect block.
pub const INDIRECT_POINTERS: usize = FS_BLOCK_SIZE / 8;
/// Maximum file size in bytes.
pub const MAX_FILE_SIZE: u64 = (DIRECT_POINTERS + INDIRECT_POINTERS) as u64 * FS_BLOCK_SIZE as u64;
/// Sentinel for an unallocated block pointer.
pub const NO_BLOCK: u64 = 0;

/// What an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InodeKind {
    /// Unused inode slot.
    Free,
    /// A regular file.
    File,
    /// A directory.
    Directory,
}

impl InodeKind {
    fn to_u32(self) -> u32 {
        match self {
            InodeKind::Free => 0,
            InodeKind::File => 1,
            InodeKind::Directory => 2,
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        match v {
            0 => Some(InodeKind::Free),
            1 => Some(InodeKind::File),
            2 => Some(InodeKind::Directory),
            _ => None,
        }
    }
}

/// An inode: kind, size, link count, and block pointers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inode {
    /// File or directory (or free slot).
    pub kind: InodeKind,
    /// Size in bytes.
    pub size: u64,
    /// Hard-link count (directories: 1; files: 1 — no hard links yet).
    pub links: u32,
    /// Direct data block pointers (fs block indices, 0 = none).
    pub direct: [u64; DIRECT_POINTERS],
    /// Single-indirect block pointer (0 = none).
    pub indirect: u64,
}

impl Inode {
    /// An empty inode of the given kind.
    pub fn empty(kind: InodeKind) -> Self {
        Inode {
            kind,
            size: 0,
            links: if kind == InodeKind::Free { 0 } else { 1 },
            direct: [NO_BLOCK; DIRECT_POINTERS],
            indirect: NO_BLOCK,
        }
    }

    /// Number of data blocks needed to hold `size` bytes.
    pub fn blocks_for(size: u64) -> u64 {
        size.div_ceil(FS_BLOCK_SIZE as u64)
    }

    /// Serializes into the fixed on-disk representation.
    pub fn to_bytes(&self) -> [u8; INODE_DISK_SIZE] {
        let mut buf = [0u8; INODE_DISK_SIZE];
        let mut w = Writer::new(&mut buf);
        w.u32(self.kind.to_u32());
        w.u32(self.links);
        w.u64(self.size);
        for &b in &self.direct {
            w.u64(b);
        }
        w.u64(self.indirect);
        buf
    }

    /// Parses the on-disk representation.
    ///
    /// # Errors
    ///
    /// [`FsError::BadSuperblock`] for a corrupt inode image.
    pub fn from_bytes(buf: &[u8]) -> Result<Inode, FsError> {
        if buf.len() < INODE_DISK_SIZE {
            return Err(FsError::BadSuperblock);
        }
        let mut r = Reader::new(buf);
        let parse = |r: &mut Reader| -> Option<(InodeKind, u32, u64, [u64; DIRECT_POINTERS], u64)> {
            let kind = InodeKind::from_u32(r.u32()?)?;
            let links = r.u32()?;
            let size = r.u64()?;
            let mut direct = [NO_BLOCK; DIRECT_POINTERS];
            for d in &mut direct {
                *d = r.u64()?;
            }
            Some((kind, links, size, direct, r.u64()?))
        };
        let (kind, links, size, direct, indirect) = parse(&mut r).ok_or(FsError::BadSuperblock)?;
        Ok(Inode {
            kind,
            size,
            links,
            direct,
            indirect,
        })
    }

    /// Whether byte offset `offset` is addressable by this inode layout.
    pub fn offset_in_range(offset: u64) -> bool {
        offset <= MAX_FILE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_file_size_is_about_2mib() {
        assert_eq!(MAX_FILE_SIZE, (12 + 512) * 4096);
    }

    #[test]
    fn roundtrip() {
        let mut ino = Inode::empty(InodeKind::File);
        ino.size = 123_456;
        ino.direct[0] = 7_000;
        ino.direct[11] = 7_011;
        ino.indirect = 9_999;
        let parsed = Inode::from_bytes(&ino.to_bytes()).unwrap();
        assert_eq!(parsed, ino);
    }

    #[test]
    fn empty_inodes() {
        let f = Inode::empty(InodeKind::Free);
        assert_eq!(f.links, 0);
        let d = Inode::empty(InodeKind::Directory);
        assert_eq!(d.links, 1);
        assert_eq!(d.size, 0);
        assert!(d.direct.iter().all(|&b| b == NO_BLOCK));
    }

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(Inode::blocks_for(0), 0);
        assert_eq!(Inode::blocks_for(1), 1);
        assert_eq!(Inode::blocks_for(4096), 1);
        assert_eq!(Inode::blocks_for(4097), 2);
    }

    #[test]
    fn corrupt_inode_rejected() {
        let mut buf = [0u8; INODE_DISK_SIZE];
        buf[0] = 99; // invalid kind
        assert!(Inode::from_bytes(&buf).is_err());
        assert!(Inode::from_bytes(&[0u8; 3]).is_err());
    }
}
