//! Directory entry encoding.
//!
//! A directory's data is a flat sequence of variable-length entries:
//! `| ino: u64 | name_len: u32 | name bytes |`. Names are UTF-8, 1–255
//! bytes, and may not contain `/` or NUL.

use crate::error::FsError;
use crate::layout::{Reader, Writer};
use serde::{Deserialize, Serialize};

/// Maximum file-name length in bytes.
pub const MAX_NAME_LEN: usize = 255;

/// One directory entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirEntry {
    /// Target inode number.
    pub ino: u64,
    /// Entry name (single path component).
    pub name: String,
}

/// Validates a single path component.
///
/// # Errors
///
/// [`FsError::InvalidPath`] for empty, oversized, or malformed names.
pub fn validate_name(name: &str) -> Result<(), FsError> {
    if name.is_empty()
        || name.len() > MAX_NAME_LEN
        || name.contains('/')
        || name.contains('\0')
        || name == "."
        || name == ".."
    {
        return Err(FsError::InvalidPath);
    }
    Ok(())
}

/// Splits an absolute path into validated components.
///
/// # Errors
///
/// [`FsError::InvalidPath`] unless the path starts with `/` and every
/// component validates. The root path `/` yields an empty vector.
pub fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
    let Some(rest) = path.strip_prefix('/') else {
        return Err(FsError::InvalidPath);
    };
    let mut parts = Vec::new();
    for part in rest.split('/') {
        if part.is_empty() {
            continue; // tolerate duplicate or trailing slashes
        }
        validate_name(part)?;
        parts.push(part);
    }
    Ok(parts)
}

/// Serializes directory entries to the directory-file byte format.
pub fn encode_entries(entries: &[DirEntry]) -> Vec<u8> {
    let total: usize = entries.iter().map(|e| 12 + e.name.len()).sum();
    let mut buf = vec![0u8; total];
    let mut w = Writer::new(&mut buf);
    for e in entries {
        w.u64(e.ino);
        w.u32(e.name.len() as u32);
        w.bytes(e.name.as_bytes());
    }
    buf
}

/// Parses directory entries from directory-file bytes.
///
/// # Errors
///
/// [`FsError::BadSuperblock`] on a truncated or malformed entry stream.
pub fn decode_entries(buf: &[u8]) -> Result<Vec<DirEntry>, FsError> {
    let mut entries = Vec::new();
    let mut r = Reader::new(buf);
    while r.position() < buf.len() {
        let ino = r.u64().ok_or(FsError::BadSuperblock)?;
        let len = r.u32().ok_or(FsError::BadSuperblock)? as usize;
        if len == 0 || len > MAX_NAME_LEN {
            return Err(FsError::BadSuperblock);
        }
        let raw_name = r.bytes(len).ok_or(FsError::BadSuperblock)?;
        let name = std::str::from_utf8(raw_name)
            .map_err(|_| FsError::BadSuperblock)?
            .to_string();
        entries.push(DirEntry { ino, name });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn name_validation() {
        assert!(validate_name("log").is_ok());
        assert!(validate_name(&"x".repeat(255)).is_ok());
        assert_eq!(validate_name(""), Err(FsError::InvalidPath));
        assert_eq!(validate_name(&"x".repeat(256)), Err(FsError::InvalidPath));
        assert_eq!(validate_name("a/b"), Err(FsError::InvalidPath));
        assert_eq!(validate_name("a\0b"), Err(FsError::InvalidPath));
        assert_eq!(validate_name("."), Err(FsError::InvalidPath));
        assert_eq!(validate_name(".."), Err(FsError::InvalidPath));
    }

    #[test]
    fn path_splitting() {
        assert_eq!(split_path("/").unwrap(), Vec::<&str>::new());
        assert_eq!(split_path("/var/log").unwrap(), vec!["var", "log"]);
        assert_eq!(split_path("/var//log/").unwrap(), vec!["var", "log"]);
        assert_eq!(split_path("relative"), Err(FsError::InvalidPath));
        assert_eq!(split_path("/bad\0name"), Err(FsError::InvalidPath));
    }

    #[test]
    fn entries_roundtrip() {
        let entries = vec![
            DirEntry {
                ino: 2,
                name: "var".into(),
            },
            DirEntry {
                ino: 77,
                name: "журнал".into(),
            },
            DirEntry {
                ino: 3,
                name: "x".repeat(255),
            },
        ];
        let decoded = decode_entries(&encode_entries(&entries)).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn empty_directory() {
        assert_eq!(decode_entries(&[]).unwrap(), vec![]);
        assert!(encode_entries(&[]).is_empty());
    }

    #[test]
    fn truncated_entries_rejected() {
        let entries = vec![DirEntry {
            ino: 2,
            name: "var".into(),
        }];
        let buf = encode_entries(&entries);
        assert!(decode_entries(&buf[..buf.len() - 1]).is_err());
        assert!(decode_entries(&buf[..4]).is_err());
    }

    proptest! {
        /// Any list of valid names round-trips.
        #[test]
        fn roundtrip_arbitrary(names in proptest::collection::vec("[a-zA-Z0-9_.-]{1,40}", 0..20)) {
            let entries: Vec<DirEntry> = names
                .into_iter()
                .enumerate()
                .filter(|(_, n)| n != "." && n != "..")
                .map(|(i, name)| DirEntry { ino: i as u64 + 2, name })
                .collect();
            let decoded = decode_entries(&encode_entries(&entries)).unwrap();
            prop_assert_eq!(decoded, entries);
        }
    }
}
